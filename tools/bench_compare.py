#!/usr/bin/env python
"""Benchmark baseline harness: pinned micro/macro suite + regression gate.

Runs a fixed suite of micro benchmarks (seal/open throughput, HMAC,
onion build+peel, serialization) and macro benchmarks (a Figure-6 leg,
an N-node overlay build, one Figure-2 Monte-Carlo rep), then records
``{git sha, timestamp, median ns/op, ops/s}`` per benchmark in
``BENCH_core.json`` and compares against the baseline stored in the
same file.

The committed ``BENCH_core.json`` is the repo's performance
trajectory: ``baseline`` pins the numbers a change is judged against,
``current`` holds the latest run, and ``speedup`` is
``baseline.median_ns / current.median_ns`` per benchmark (>1 means
faster than the baseline).

Usage::

    python tools/bench_compare.py                  # run, compare, update 'current'
    python tools/bench_compare.py --quick          # micro suite only, loose 2x gate
    python tools/bench_compare.py --write-baseline # (re)pin the baseline to this run
    python tools/bench_compare.py --check-only     # compare without rewriting the file

Exit codes: 0 ok, 1 regression beyond ``--threshold``, 2 baseline
missing (CI treats that as a failure so the trajectory cannot silently
disappear).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import statistics
import subprocess
import sys
import time
import tracemalloc

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUT = REPO_ROOT / "BENCH_core.json"


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def time_op(fn, *, min_time_s: float = 0.15, repeats: int = 5) -> float:
    """Median ns/op over ``repeats`` calibrated batches of ``fn``."""
    # Calibrate the batch size so one batch takes >= min_time_s / repeats.
    n = 1
    while True:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time_s / repeats or n >= 1 << 20:
            break
        n = max(n * 2, int(n * (min_time_s / repeats) / max(elapsed, 1e-9)))
    samples = [elapsed / n]
    for _ in range(repeats - 1):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        samples.append((time.perf_counter() - start) / n)
    return statistics.median(samples) * 1e9


def measure_bytes(fn) -> int:
    """Peak Python-heap bytes of one ``fn()`` call (``tracemalloc``).

    NumPy routes array allocations through the ``PyDataMem`` hooks, so
    this sees scratch arrays and temporaries too.  Measured on its own
    (untimed) call — tracemalloc's bookkeeping would distort ns/op.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def peak_rss_bytes() -> int | None:
    """The process's high-water RSS in bytes (Linux: ru_maxrss KiB)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    return rss * 1024 if sys.platform.startswith("linux") else rss


# ----------------------------------------------------------------------
# the pinned suite
# ----------------------------------------------------------------------
def bench_crypto_seal_1k():
    from repro.crypto.symmetric import SymmetricKey

    key = SymmetricKey(b"bench-key-0123456789abcdef")
    payload = bytes(range(256)) * 4  # 1024 B
    nonce = b"\x07" * 8
    return lambda: key.seal(payload, nonce=nonce)


def bench_crypto_open_1k():
    from repro.crypto.symmetric import SymmetricKey

    key = SymmetricKey(b"bench-key-0123456789abcdef")
    sealed = key.seal(bytes(range(256)) * 4, nonce=b"\x07" * 8)
    return lambda: key.open(sealed)


def bench_crypto_seal_64():
    from repro.crypto.symmetric import SymmetricKey

    key = SymmetricKey(b"bench-key-0123456789abcdef")
    payload = b"m" * 64
    nonce = b"\x07" * 8
    return lambda: key.seal(payload, nonce=nonce)


def bench_crypto_hmac_1k():
    from repro.crypto.symmetric import _hmac_sha256

    msg = b"h" * 1024
    return lambda: _hmac_sha256(b"bench-mac-key", msg)


def bench_onion_build_l5():
    from repro.crypto.onion import OnionLayer, build_onion
    from repro.crypto.symmetric import SymmetricKey

    layers = [
        OnionLayer(1000 + i, SymmetricKey(bytes([i + 1]) * 16))
        for i in range(5)
    ]
    payload = b"p" * 256
    return lambda: build_onion(layers, 77, payload)


def bench_onion_peel_l5():
    from repro.crypto.onion import OnionLayer, build_onion, peel_layer
    from repro.crypto.symmetric import SymmetricKey

    keys = [SymmetricKey(bytes([i + 1]) * 16) for i in range(5)]
    layers = [OnionLayer(1000 + i, keys[i]) for i in range(5)]
    blob = build_onion(layers, 77, b"p" * 256)

    def peel_all():
        b = blob
        for k in keys:
            b = peel_layer(k, b).inner
        return b

    return peel_all


def bench_serialize_roundtrip():
    from repro.util.serialize import pack_fields, unpack_fields

    fields = [b"R", b"\x01" * 16, b"10.0.0.1", b"inner" * 64]
    blob = pack_fields(*fields)
    return lambda: unpack_fields(blob, count=4)


def bench_fig6_leg():
    from repro.experiments.config import Fig6Config
    from repro.experiments.fig6_latency import run_fig6

    config = Fig6Config(
        network_sizes=(100,), tunnel_lengths=(3,),
        transfers_per_size=5, num_seeds=1,
    )
    return lambda: run_fig6(config)


def bench_pastry_join_200():
    from repro.pastry.network import PastryNetwork
    from repro.util.ids import random_id
    from repro.util.rng import make_pyrandom

    rng = make_pyrandom(2004, "bench-join")
    ids = set()
    while len(ids) < 200:
        ids.add(random_id(rng))
    return lambda: PastryNetwork.build(ids)


def bench_fig2_rep():
    from repro.experiments.config import Fig2Config
    from repro.experiments.fig2_failures import run_fig2

    config = Fig2Config(
        num_nodes=1_000, num_tunnels=500, num_seeds=1,
        failure_fractions=(0.1, 0.3, 0.5),
    )
    return lambda: run_fig2(config)


def _bench_ids_1000() -> set[int]:
    from repro.util.ids import random_id
    from repro.util.rng import make_pyrandom

    rng = make_pyrandom(2004, "bench-bootstrap")
    ids: set[int] = set()
    while len(ids) < 1000:
        ids.add(random_id(rng))
    return ids


def bench_pastry_bootstrap_1000():
    from repro.pastry.network import PastryNetwork

    ids = _bench_ids_1000()
    return lambda: PastryNetwork.build(ids)


def bench_system_fork():
    from repro.core.system import TapSystem

    snap = TapSystem.bootstrap(1000, seed=2004).snapshot()

    def fork_and_route():
        system = snap.fork(seed=7)
        ids = system.network.alive_ids
        n = len(ids)
        # A few routes so the copy-on-write fork pays for the nodes a
        # trial actually touches, not just the O(1) container setup.
        for i in (0, n // 3, n // 2, n - 1):
            system.network.route(ids[i], ids[(i * 13 + 7) % n])
        return system

    return fork_and_route


def bench_pastry_row_entries():
    from repro.pastry.network import PastryNetwork

    ids = _bench_ids_1000()
    net = PastryNetwork.build(ids)
    table = net.nodes[min(ids)].routing_table
    return lambda: [table.row_entries(r) for r in range(4)]


MICRO = {
    "crypto.seal_1k": bench_crypto_seal_1k,
    "crypto.open_1k": bench_crypto_open_1k,
    "crypto.seal_64": bench_crypto_seal_64,
    "crypto.hmac_1k": bench_crypto_hmac_1k,
    "onion.build_l5": bench_onion_build_l5,
    "onion.peel_l5": bench_onion_peel_l5,
    "serialize.unpack4": bench_serialize_roundtrip,
}

#: Overlay construction/fork benchmarks: the ``system.fork`` /
#: ``pastry.bootstrap_1000`` pair is the fork-per-rep payoff the
#: snapshot subsystem exists for, gated in CI via the quick suite.
SNAPSHOT = {
    "pastry.bootstrap_1000": bench_pastry_bootstrap_1000,
    "system.fork": bench_system_fork,
    "pastry.row_entries": bench_pastry_row_entries,
}

MACRO = {
    "fig6.leg": bench_fig6_leg,
    "pastry.join_200": bench_pastry_join_200,
    "fig2.rep": bench_fig2_rep,
}


def bench_pastry_bootstrap_100k():
    from repro.perf.compact import CompactOverlay

    return lambda: CompactOverlay.random(100_000, seed=2004)


def bench_compact_churn_100k():
    import numpy as np

    from repro.perf.compact import CompactOverlay
    from repro.util.rng import SeedSequenceFactory

    snap = CompactOverlay.random(100_000, seed=2004).snapshot()
    rng = SeedSequenceFactory(2004).numpy("bench-churn")
    u64_max = np.iinfo(np.uint64).max
    key_hi = rng.integers(0, u64_max, size=2_000, dtype=np.uint64)
    key_lo = rng.integers(0, u64_max, size=2_000, dtype=np.uint64)
    victims = rng.choice(100_000, size=1_000, replace=False)

    def churn_round():
        overlay = snap.restore()
        overlay.fail_positions(victims)
        return overlay.replica_positions(key_hi, key_lo, 3)

    return churn_round


def bench_compact_churn_100k_telemetry():
    """The churn round again, with the sampled telemetry attached.

    Mirrors what one scale-churn round pays when a MetricsRegistry is
    threaded through: the overlay's membership instrumentation, the
    per-round counters/gauges, and a 256-value histogram sample.
    Gated against ``compact.churn_100k`` from the *same run* via
    :data:`OVERHEAD_PAIRS` so machine noise cancels.
    """
    import numpy as np

    from repro.obs import MetricsRegistry
    from repro.perf.compact import CompactOverlay
    from repro.util.rng import SeedSequenceFactory

    snap = CompactOverlay.random(100_000, seed=2004).snapshot()
    rng = SeedSequenceFactory(2004).numpy("bench-churn")
    u64_max = np.iinfo(np.uint64).max
    key_hi = rng.integers(0, u64_max, size=2_000, dtype=np.uint64)
    key_lo = rng.integers(0, u64_max, size=2_000, dtype=np.uint64)
    victims = rng.choice(100_000, size=1_000, replace=False)
    tel = SeedSequenceFactory(2004).numpy("bench-telemetry")
    sample_idx = np.sort(tel.choice(2_000, size=256, replace=False))

    def churn_round():
        metrics = MetricsRegistry()
        overlay = snap.restore()
        overlay.instrument(metrics)
        overlay.fail_positions(victims)
        positions = overlay.replica_positions(key_hi, key_lo, 3)
        metrics.counter("scale.churn.rounds").inc()
        metrics.counter("scale.churn.failed_nodes").inc(len(victims))
        metrics.gauge("scale.alive_fraction").set(overlay.num_alive / 100_000)
        metrics.histogram("scale.replica.overlap").observe_many(
            positions[sample_idx, 0].tolist()
        )
        return positions

    return churn_round


#: 10^5-node compact-engine benchmarks: the array bootstrap and a full
#: restore + fail-1% + 2k-replica-query round — the per-trial cost of
#: the scale-churn experiment, gated in CI via the quick suite.
SCALE = {
    "pastry.bootstrap_100k": bench_pastry_bootstrap_100k,
    "compact.churn_100k": bench_compact_churn_100k,
    "compact.churn_100k_telemetry": bench_compact_churn_100k_telemetry,
}


def _route_setup():
    import numpy as np

    from repro.perf.compact import CompactOverlay
    from repro.util.rng import SeedSequenceFactory

    overlay = CompactOverlay.random(100_000, seed=2004)
    rng = SeedSequenceFactory(2004).numpy("bench-route")
    u64_max = np.iinfo(np.uint64).max
    alive = np.flatnonzero(overlay.alive)
    src = rng.choice(alive, size=512)
    key_hi = rng.integers(0, u64_max, size=512, dtype=np.uint64)
    key_lo = rng.integers(0, u64_max, size=512, dtype=np.uint64)
    return overlay, src, key_hi, key_lo, rng


def bench_compact_route_100k():
    """Scalar baseline: 16 hop-loop routes per call (one op = 16 routes)."""
    overlay, src, key_hi, key_lo, _ = _route_setup()
    pairs = [
        (
            (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]]),
            (int(key_hi[i]) << 64) | int(key_lo[i]),
        )
        for i in range(ROUTE_UNITS["compact.route_100k"])
    ]
    return lambda: [overlay.route(s, k) for s, k in pairs]


def bench_compact_route_many_100k():
    """Batched plane: 512 routes advanced in lockstep per call."""
    overlay, src, key_hi, key_lo, _ = _route_setup()
    return lambda: overlay.route_many(src, key_hi, key_lo)


def bench_compact_tunnel_batch_100k():
    """128 three-hop tunnels (4 legs each) built + routed per call."""
    import numpy as np

    overlay, src, key_hi, key_lo, rng = _route_setup()
    u64_max = np.iinfo(np.uint64).max
    tunnels = 128
    hop_hi = rng.integers(0, u64_max, size=(tunnels, 3), dtype=np.uint64)
    hop_lo = rng.integers(0, u64_max, size=(tunnels, 3), dtype=np.uint64)
    return lambda: overlay.route_tunnels(
        src[:tunnels], hop_hi, hop_lo, key_hi[:tunnels], key_lo[:tunnels]
    )


#: batched packet-plane benchmarks at 10^5 nodes; one *op* is a whole
#: call, so ROUTE_UNITS records how many end-to-end routes each call
#: performs (tunnel legs count per-leg routes)
ROUTE = {
    "compact.route_100k": bench_compact_route_100k,
    "compact.route_many_100k": bench_compact_route_many_100k,
    "compact.tunnel_batch_100k": bench_compact_tunnel_batch_100k,
}


def bench_pastry_bootstrap_1m():
    from repro.perf.compact import CompactOverlay

    return lambda: CompactOverlay.random(1_000_000, seed=2004)


def bench_compact_churn_1m():
    """One scale-churn-style round at 10^6: restore the base snapshot,
    fail 10k nodes, merge-insert 5k joiners, query 2k replica sets."""
    import numpy as np

    from repro.perf.compact import CompactOverlay
    from repro.util.rng import SeedSequenceFactory

    snap = CompactOverlay.random(1_000_000, seed=2004).snapshot()
    rng = SeedSequenceFactory(2004).numpy("bench-churn-1m")
    u64_max = np.iinfo(np.uint64).max
    key_hi = rng.integers(0, u64_max, size=2_000, dtype=np.uint64)
    key_lo = rng.integers(0, u64_max, size=2_000, dtype=np.uint64)
    victims = rng.choice(1_000_000, size=10_000, replace=False)
    join_hi = rng.integers(0, u64_max, size=5_000, dtype=np.uint64)
    join_lo = rng.integers(0, u64_max, size=5_000, dtype=np.uint64)
    joiners = [
        (int(h) << 64) | int(l)
        for h, l in zip(join_hi.tolist(), join_lo.tolist())
    ]

    def churn_round():
        overlay = snap.restore()
        overlay.fail_positions(victims)
        overlay.join(joiners)
        return overlay.replica_positions(key_hi, key_lo, 3)

    return churn_round


def _route_setup_1m():
    import numpy as np

    from repro.perf.compact import CompactOverlay
    from repro.util.rng import SeedSequenceFactory

    overlay = CompactOverlay.random(1_000_000, seed=2004)
    rng = SeedSequenceFactory(2004).numpy("bench-route-1m")
    u64_max = np.iinfo(np.uint64).max
    alive = overlay.alive_positions()
    src = rng.choice(alive, size=4096)
    key_hi = rng.integers(0, u64_max, size=4096, dtype=np.uint64)
    key_lo = rng.integers(0, u64_max, size=4096, dtype=np.uint64)
    return overlay, src, key_hi, key_lo


def bench_route_throughput_1m():
    """4096 chunked routes per call at 10^6 nodes; setup proves the
    chunked batch is digest-identical to the unchunked one."""
    import numpy as np

    overlay, src, key_hi, key_lo = _route_setup_1m()
    flat = overlay.route_many(src[:512], key_hi[:512], key_lo[:512])
    chunked = overlay.route_many(src[:512], key_hi[:512], key_lo[:512],
                                 chunk_size=97)
    assert (
        np.array_equal(flat.dest_pos, chunked.dest_pos)
        and np.array_equal(flat.hops, chunked.hops)
        and np.array_equal(flat.success, chunked.success)
    ), "chunked route_many diverged from unchunked at 10^6"
    return lambda: overlay.route_many(src, key_hi, key_lo, chunk_size=1_024)


def bench_compact_route_1m():
    """Scalar baseline at 10^6: 16 hop-loop routes per call."""
    overlay, src, key_hi, key_lo = _route_setup_1m()
    pairs = [
        (
            (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]]),
            (int(key_hi[i]) << 64) | int(key_lo[i]),
        )
        for i in range(ROUTE_UNITS["compact.route_1m"])
    ]
    return lambda: [overlay.route(s, k) for s, k in pairs]


#: the million-node group: opt-in via TAP_BENCH_SCALE_1M=1 (each setup
#: bootstraps a 10^6 ring) and skipped loudly on low-memory machines
SCALE_1M = {
    "pastry.bootstrap_1m": bench_pastry_bootstrap_1m,
    "compact.churn_1m": bench_compact_churn_1m,
    "route.throughput_1m": bench_route_throughput_1m,
    "compact.route_1m": bench_compact_route_1m,
}

#: peak-RSS ceiling for the 10^6 operating point (acceptance gate)
SCALE_1M_MAX_RSS = 2 * 1024**3

ROUTE_UNITS = {
    "compact.route_100k": 16,
    "compact.route_many_100k": 512,
    "compact.tunnel_batch_100k": 128 * 4,
    "route.throughput_1m": 4096,
    "compact.route_1m": 16,
}

#: batched -> (scalar, min per-route speedup): same-run relative gate,
#: normalised by ROUTE_UNITS — the vectorised plane must stay at least
#: this many times faster per route than the scalar hop loop
BATCH_PAIRS = {
    "compact.route_many_100k": ("compact.route_100k", 20.0),
    "route.throughput_1m": ("compact.route_1m", 15.0),
}

#: groups whose results carry a ``bytes_per_op`` column (tracemalloc
#: peak of one call); compared warn-only against the baseline
BYTES_BENCHMARKS = set(SCALE) | set(ROUTE) | set(SCALE_1M)


def scale_1m_status() -> tuple[bool, str]:
    """Whether the SCALE-1M group should run, and why not if not.

    Opt-in via ``TAP_BENCH_SCALE_1M=1``; even then, skipped (loudly,
    never silently) when the machine advertises under 4 GiB available
    — the group bootstraps several 10^6 rings back to back.
    """
    if os.environ.get("TAP_BENCH_SCALE_1M", "") not in ("1", "true", "yes"):
        return False, "TAP_BENCH_SCALE_1M not set"
    min_bytes = 4 * 1024**3
    try:
        meminfo = pathlib.Path("/proc/meminfo").read_text()
        for line in meminfo.splitlines():
            if line.startswith("MemAvailable:"):
                available = int(line.split()[1]) * 1024
                if available < min_bytes:
                    return False, (
                        f"only {available / 1024**3:.1f} GiB available "
                        f"(< {min_bytes / 1024**3:.0f} GiB)"
                    )
                break
    except OSError:
        pass  # no /proc (macOS): trust the env knob
    return True, ""

#: instrumented -> (bare, max ratio): same-run pairs gated on relative
#: cost, independent of the recorded baseline (noise cancels because
#: both members run back to back on the same machine state)
OVERHEAD_PAIRS = {
    "compact.churn_100k_telemetry": ("compact.churn_100k", 1.05),
}


def run_suite(quick: bool, only: set[str] | None = None) -> dict[str, dict]:
    suite = (
        {**MICRO, **SNAPSHOT, **SCALE, **ROUTE}
        if quick
        else {**MICRO, **SNAPSHOT, **SCALE, **ROUTE, **MACRO}
    )
    enabled, reason = scale_1m_status()
    if enabled:
        suite.update(SCALE_1M)
    else:
        # never a silent skip: the trajectory reader must be able to
        # tell "not run" from "mysteriously missing"
        print(f"  scale-1m group SKIPPED: {reason}")
    if only is not None:
        suite = {name: fn for name, fn in suite.items() if name in only}
    results: dict[str, dict] = {}
    for name, setup in suite.items():
        fn = setup()
        fn()  # warm caches / JIT-less sanity check
        median_ns = time_op(fn)
        results[name] = {
            "median_ns": round(median_ns, 1),
            "ops_per_s": round(1e9 / median_ns, 2),
        }
        if name in BYTES_BENCHMARKS:
            results[name]["bytes_per_op"] = measure_bytes(fn)
        if name in SCALE_1M:
            rss = peak_rss_bytes()
            if rss is not None:
                results[name]["peak_rss_bytes"] = rss
        extra = ""
        if "bytes_per_op" in results[name]:
            extra = f"  {results[name]['bytes_per_op'] / 1024**2:8.1f} MiB/op"
        print(f"  {name:24s} {median_ns:14,.0f} ns/op "
              f"({results[name]['ops_per_s']:12,.1f} ops/s){extra}")
    if not quick and only is None:
        results.update(wallclock_suite())
    return results


def scale_1m_failures(results: dict[str, dict]) -> list[str]:
    """Same-run gate: the 10^6 operating point must fit the memory
    budget (``SCALE_1M_MAX_RSS`` peak RSS, acceptance criterion)."""
    failures: list[str] = []
    for name in ("pastry.bootstrap_1m", "compact.churn_1m"):
        rss = results.get(name, {}).get("peak_rss_bytes")
        if rss is None:
            continue
        verdict = "ok" if rss <= SCALE_1M_MAX_RSS else "FAIL"
        print(f"  scale-1m rss {name}: {rss / 1024**3:.2f} GiB "
              f"(max {SCALE_1M_MAX_RSS / 1024**3:.0f} GiB) {verdict}")
        if rss > SCALE_1M_MAX_RSS:
            failures.append(
                f"{name}: peak RSS {rss / 1024**3:.2f} GiB over the "
                f"{SCALE_1M_MAX_RSS / 1024**3:.0f} GiB million-node budget"
            )
    return failures


def bytes_regressions(baseline: dict, current: dict,
                      max_ratio: float = 1.25) -> list[str]:
    """Warn-only memory trajectory: ``bytes_per_op`` vs baseline.

    Returns the offending names (for the caller to print); never fails
    the gate — allocation footprints move with numpy versions and the
    point is visibility, not flakiness.
    """
    warnings: list[str] = []
    base_results = baseline.get("results", {})
    for name, cur in current.get("results", {}).items():
        cur_bytes = cur.get("bytes_per_op")
        base_bytes = base_results.get(name, {}).get("bytes_per_op")
        if not cur_bytes or not base_bytes:
            continue
        if cur_bytes > base_bytes * max_ratio:
            warnings.append(
                f"{name}: {cur_bytes / 1024**2:.1f} MiB/op vs baseline "
                f"{base_bytes / 1024**2:.1f} MiB/op "
                f"(x{cur_bytes / base_bytes:.2f}, warn at x{max_ratio:.2f})"
            )
    return warnings


def overhead_failures(results: dict[str, dict]) -> list[str]:
    """Same-run pair gate: instrumented vs bare, per OVERHEAD_PAIRS."""
    failures: list[str] = []
    for inst, (bare, max_ratio) in OVERHEAD_PAIRS.items():
        if inst not in results or bare not in results:
            continue
        ratio = results[inst]["median_ns"] / results[bare]["median_ns"]
        verdict = "ok" if ratio <= max_ratio else "FAIL"
        print(f"  overhead {inst} / {bare}: x{ratio:.3f} "
              f"(max x{max_ratio:.2f}) {verdict}")
        if ratio > max_ratio:
            failures.append(
                f"{inst}: x{ratio:.3f} over {bare}, "
                f"telemetry overhead gate is x{max_ratio:.2f}"
            )
    return failures


def batch_speedup_failures(results: dict[str, dict]) -> list[str]:
    """Same-run pair gate: batched vs scalar per-route cost.

    Normalised by :data:`ROUTE_UNITS` (routes per call) so the two
    members compare per route regardless of their batch sizes; like
    :func:`overhead_failures`, both sides come from this run, so
    machine noise cancels and no baseline is needed.
    """
    failures: list[str] = []
    for fast, (slow, min_ratio) in BATCH_PAIRS.items():
        if fast not in results or slow not in results:
            continue
        per_fast = results[fast]["median_ns"] / ROUTE_UNITS[fast]
        per_slow = results[slow]["median_ns"] / ROUTE_UNITS[slow]
        ratio = per_slow / per_fast
        verdict = "ok" if ratio >= min_ratio else "FAIL"
        print(f"  batch speedup {fast} vs {slow}: x{ratio:.1f}/route "
              f"(min x{min_ratio:.0f}) {verdict}")
        if ratio < min_ratio:
            failures.append(
                f"{fast}: only x{ratio:.1f} per route over {slow}, "
                f"batch-speedup gate is x{min_ratio:.0f}"
            )
    return failures


def wallclock_suite() -> dict[str, dict]:
    """Serial vs parallel wall-clock of one experiment (informational).

    Recorded as seconds (``median_ns`` is the whole-run time) so the
    parallel-executor payoff is part of the tracked trajectory.  Skipped
    silently on code that predates the ``workers`` parameter.
    """
    import inspect

    from repro.experiments.config import Fig6Config
    from repro.experiments.fig6_latency import run_fig6

    if "workers" not in inspect.signature(run_fig6).parameters:
        return {}
    config = Fig6Config(
        network_sizes=(100, 200), tunnel_lengths=(3,),
        transfers_per_size=10, num_seeds=4,
    )
    out: dict[str, dict] = {}
    for label, workers in (("fig6.wall_serial", 1), ("fig6.wall_workers4", 4)):
        start = time.perf_counter()
        run_fig6(config, workers=workers)
        elapsed = time.perf_counter() - start
        out[label] = {
            "median_ns": round(elapsed * 1e9, 1),
            "ops_per_s": round(1.0 / elapsed, 4),
        }
        print(f"  {label:24s} {elapsed:14.3f} s/run (workers={workers})")
    return out


# ----------------------------------------------------------------------
# baseline file plumbing
# ----------------------------------------------------------------------
def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def stamp(results: dict, label: str) -> dict:
    return {
        "label": label,
        "git_sha": git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        # Wall-clock entries for --workers N only mean something when N
        # cores exist; record how many this run actually had.
        "cpus": os.cpu_count(),
        # the whole run's high-water RSS — the context for every
        # per-benchmark peak_rss_bytes entry
        "peak_rss_bytes": peak_rss_bytes(),
        "results": results,
    }


def compare(
    baseline: dict,
    current: dict,
    threshold: float,
    previous_speedup: dict | None = None,
    allow_new: bool = False,
) -> tuple[dict, list[str]]:
    """Per-benchmark speedups plus the list of gate failures.

    A benchmark present in the baseline but absent from this run (a
    ``--quick`` run skips the MACRO group, a renamed benchmark drops
    out entirely) is never silently dropped from the report: it warns
    loudly on stderr and carries the previously recorded speedup
    entry forward, explicitly marked stale.

    The reverse — a benchmark this run emits that the baseline has
    never seen — **fails** the gate unless ``allow_new``: a new entry
    joining the trajectory with no baseline number is an untracked
    claim, so it must be adopted deliberately, not slipped in.
    """
    speedup: dict[str, float] = {}
    failures: list[str] = []
    base_cpus = baseline.get("cpus")
    cur_cpus = current.get("cpus")
    if base_cpus is not None and cur_cpus is not None and base_cpus != cur_cpus:
        print(
            f"warning: baseline ran on {base_cpus} cpus, this run on "
            f"{cur_cpus} — wall-clock comparisons are not like-for-like",
            file=sys.stderr,
        )
    base_results = baseline["results"]
    new = sorted(set(current["results"]) - set(base_results))
    if new:
        if allow_new:
            print(
                f"note: adopting {len(new)} benchmark(s) new to the "
                f"baseline: {', '.join(new)}",
                file=sys.stderr,
            )
            for name in new:
                speedup[name] = 1.0
        else:
            failures.append(
                f"benchmark(s) absent from baseline: {', '.join(new)} — "
                f"rerun with --allow-new to adopt them deliberately"
            )
    for name, cur in current["results"].items():
        base = base_results.get(name)
        if base is None:
            continue
        ratio = base["median_ns"] / cur["median_ns"]
        speedup[name] = round(ratio, 3)
        if cur["median_ns"] > base["median_ns"] * threshold:
            failures.append(
                f"{name}: {cur['median_ns']:,.0f} ns/op vs baseline "
                f"{base['median_ns']:,.0f} ns/op "
                f"(x{1 / ratio:.2f} slower, threshold x{threshold:.2f})"
            )
    missing = sorted(set(base_results) - set(current["results"]))
    if missing:
        print(
            f"warning: {len(missing)} baseline benchmark(s) not measured "
            f"in this run: {', '.join(missing)} — their trajectory "
            f"entries are carried forward, not refreshed",
            file=sys.stderr,
        )
        for name in missing:
            prev = (previous_speedup or {}).get(name)
            if prev is not None:
                speedup[name] = prev
    return speedup, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="benchmark record file (default BENCH_core.json)")
    parser.add_argument("--quick", action="store_true",
                        help="micro suite only (CI smoke; default gate x2)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail if median ns/op exceeds baseline*X "
                             "(default 1.5, or 2.0 with --quick)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="pin this run as the new baseline")
    parser.add_argument("--check-only", action="store_true",
                        help="compare but leave the record file untouched")
    parser.add_argument("--allow-new", action="store_true",
                        help="adopt benchmarks absent from the baseline "
                             "into it (without this, a new benchmark "
                             "name fails the gate)")
    parser.add_argument("--overhead-only", action="store_true",
                        help="run only the OVERHEAD_PAIRS benchmarks and "
                             "gate the instrumented/bare ratio (no "
                             "baseline needed, file untouched)")
    parser.add_argument("--label", default="current",
                        help="label stored with this run")
    args = parser.parse_args(argv)

    threshold = args.threshold
    if threshold is None:
        threshold = 2.0 if args.quick else 1.5

    if args.overhead_only:
        suite = {**MICRO, **SNAPSHOT, **SCALE, **MACRO}
        print(f"bench_compare: telemetry overhead gate at {git_sha()}")
        results: dict[str, dict] = {}
        for inst, (bare, _max) in OVERHEAD_PAIRS.items():
            pair = {}
            for name in (bare, inst):
                fn = suite[name]()
                fn()  # warm
                pair[name] = fn
            # Alternate timing passes and keep each side's best median:
            # one-off process warmup (page faults, allocator growth)
            # then biases neither member of the ratio.
            for _ in range(2):
                for name, fn in pair.items():
                    ns = time_op(fn)
                    cur = results.get(name)
                    if cur is None or ns < cur["median_ns"]:
                        results[name] = {
                            "median_ns": round(ns, 1),
                            "ops_per_s": round(1e9 / ns, 2),
                        }
        for name, res in results.items():
            print(f"  {name:28s} {res['median_ns']:14,.0f} ns/op")
        failures = overhead_failures(results)
        if failures:
            print("\nTELEMETRY OVERHEAD GATE FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("\ntelemetry overhead gate ok")
        return 0

    print(f"bench_compare: running {'micro' if args.quick else 'full'} suite "
          f"at {git_sha()}")
    results = run_suite(args.quick)
    current = stamp(results, args.label)

    record: dict = {}
    if args.out.exists():
        record = json.loads(args.out.read_text())

    if args.write_baseline:
        record = {
            "schema": 1,
            "baseline": stamp(results, args.label or "baseline"),
            "current": current,
            "speedup": {name: 1.0 for name in results},
        }
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"pinned new baseline ({len(results)} benchmarks) -> {args.out}")
        return 0

    baseline = record.get("baseline")
    if baseline is None:
        print(f"error: no baseline recorded in {args.out}; "
              f"run with --write-baseline first", file=sys.stderr)
        return 2

    speedup, failures = compare(baseline, current, threshold,
                                previous_speedup=record.get("speedup"),
                                allow_new=args.allow_new)
    failures.extend(overhead_failures(results))
    failures.extend(batch_speedup_failures(results))
    failures.extend(scale_1m_failures(results))
    for warning in bytes_regressions(baseline, current):
        print(f"warning: bytes_per_op regression: {warning}",
              file=sys.stderr)
    print(f"\nvs baseline '{baseline['label']}' @ {baseline['git_sha']}:")
    for name in sorted(speedup):
        stale = "" if name in results else "  (carried, not measured this run)"
        print(f"  {name:24s} x{speedup[name]:.2f} "
              f"{'faster' if speedup[name] >= 1 else 'slower'}{stale}")

    if not args.check_only:
        if args.allow_new:
            # adopt new entries into the baseline so future runs gate
            # against this run's numbers
            for name in set(current["results"]) - set(baseline["results"]):
                baseline["results"][name] = current["results"][name]
        record.update({
            "schema": 1,
            "current": current,
            "speedup": speedup,
        })
        record.setdefault("baseline", baseline)
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"updated {args.out}")

    if failures:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nregression gate ok (threshold x{threshold:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
