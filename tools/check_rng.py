#!/usr/bin/env python
"""Lint: forbid ambient randomness in the reproduction's library code.

Every stochastic draw must come from an explicit ``random.Random``
instance derived from :class:`repro.util.rng.SeedSequenceFactory` —
that is what makes experiments and chaos runs replay bit-identically.
This checker walks the AST of every Python file under the given roots
and flags:

* calls on the *module-level* ``random`` API (``random.random()``,
  ``random.choice(...)``, ...) — constructing ``random.Random(seed)``
  is fine, that's the seeded instance;
* ``random.seed(...)`` / ``np.random.seed(...)`` — reseeding global
  state is exactly the hidden coupling we ban;
* calls on numpy's global generator (``np.random.rand()``, ...) —
  ``np.random.default_rng(seed)`` with an explicit seed is fine.

Usage::

    python tools/check_rng.py src/repro [more roots...]

Exits 1 if any violation is found, printing ``path:line: message``.
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: module-level constructors that *produce* explicit generators —
#: calling these is the sanctioned way in, not a violation
ALLOWED_FACTORIES = {"Random", "SystemRandom", "default_rng", "Generator"}


def _dotted(node: ast.AST) -> str | None:
    """'random.choice' / 'np.random.rand' for an attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def check_file(path: pathlib.Path) -> list[tuple[int, str]]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None:
            continue
        parts = name.split(".")
        # random.<fn>(...) on the global module
        if parts[0] == "random" and len(parts) == 2:
            fn = parts[1]
            if fn not in ALLOWED_FACTORIES:
                violations.append((
                    node.lineno,
                    f"module-level random.{fn}() — draw from a seeded "
                    f"random.Random (repro.util.rng) instead",
                ))
        # numpy.random.<fn>(...) via any spelling (np/numpy)
        elif len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
            "np", "numpy"
        ):
            fn = parts[-1]
            if fn not in ALLOWED_FACTORIES:
                violations.append((
                    node.lineno,
                    f"numpy global generator {name}() — use "
                    f"default_rng(seed) instead",
                ))
    return violations


def main(argv: list[str]) -> int:
    roots = [pathlib.Path(a) for a in argv] or [pathlib.Path("src/repro")]
    failed = 0
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            checked += 1
            for lineno, message in check_file(path):
                print(f"{path}:{lineno}: {message}")
                failed += 1
    if failed:
        print(f"check_rng: {failed} violation(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"check_rng: ok ({checked} files, no ambient randomness)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
