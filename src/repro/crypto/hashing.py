"""Hashing: id derivation, hopid generation (§3.2), password proofs (§3.4).

The paper derives every identifier from SHA-1 (Pastry/PAST's hash) and
generates node-specific hop identifiers as::

    hopid = H(node_ID, hkey, t)

where ``hkey`` is a secret bit-string and ``t`` a creation time, so
that outsiders cannot link a hopid to its creator by recomputation.
"""

from __future__ import annotations

import hashlib
import hmac
import random

from repro.util.ids import ID_BITS, ID_SPACE

_SEP = b"\x1f"  # unambiguous field separator for hash inputs


def sha1_id(*parts: bytes) -> int:
    """SHA-1 of the separated parts, folded into the 128-bit id space.

    Pastry uses 128-bit ids; SHA-1 yields 160 bits, of which FreePastry
    keeps the top 128.  We do the same.
    """
    h = hashlib.sha1()
    for part in parts:
        h.update(part)
        h.update(_SEP)
    digest = int.from_bytes(h.digest(), "big")
    return digest >> (160 - ID_BITS)


def sha256_bytes(*parts: bytes) -> bytes:
    """SHA-256 over separated parts — keystreams, MACs, PW hashes."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
        h.update(_SEP)
    return h.digest()


def derive_hopid(node_identifier: bytes, hkey: bytes, timestamp: int) -> int:
    """``hopid = H(node_ID, hkey, t)`` per paper §3.2.

    ``node_identifier`` may be the node's IP address, private key or
    public key bytes — anything node-specific.  The secret ``hkey``
    and the creation time ``timestamp`` prevent linking by
    recomputation.
    """
    if not node_identifier:
        raise ValueError("node_identifier must be non-empty")
    if not hkey:
        raise ValueError("hkey must be non-empty")
    if timestamp < 0:
        raise ValueError("timestamp must be non-negative")
    return sha1_id(node_identifier, hkey, str(timestamp).encode())


def hash_password(password: bytes) -> bytes:
    """``H(PW)`` stored inside a THA (only the hash is ever stored)."""
    if not password:
        raise ValueError("password must be non-empty")
    return sha256_bytes(b"tap-pw", password)


def verify_password(password: bytes, stored_hash: bytes) -> bool:
    """Proof-of-ownership check used by the THA delete protocol (§3.4).

    Constant-time and fail-closed: a malformed or bit-rotted
    ``stored_hash`` denies rather than raises, and the comparison
    leaks no prefix-match timing signal.
    """
    if not password or not isinstance(stored_hash, (bytes, bytearray)):
        return False
    return hmac.compare_digest(hash_password(password), bytes(stored_hash))


def random_key(rng: random.Random, nbytes: int = 16) -> bytes:
    """Random symmetric key ``K`` from an explicit generator."""
    return rng.getrandbits(8 * nbytes).to_bytes(nbytes, "big")


def random_password(rng: random.Random, nbytes: int = 16) -> bytes:
    """Random THA password ``PW`` from an explicit generator."""
    return rng.getrandbits(8 * nbytes).to_bytes(nbytes, "big")


def random_id_from(rng: random.Random) -> int:
    """Uniform 128-bit id (convenience mirror of :func:`repro.util.random_id`)."""
    return rng.getrandbits(ID_BITS) % ID_SPACE
