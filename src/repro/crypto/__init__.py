"""Cryptographic substrate built from hash primitives.

TAP assumes three cryptographic capabilities (paper §2–§4):

1. a collision-resistant hash ``H`` for hopid derivation and password
   hashing — :mod:`repro.crypto.hashing`;
2. symmetric encryption for the mix-style layered tunnels (one
   symmetric operation per hop) — :mod:`repro.crypto.symmetric`;
3. a public-key infrastructure for the Onion-Routing bootstrap and the
   initiator's temporary key ``K_I`` — :mod:`repro.crypto.asymmetric`.

Everything is implemented from scratch over :mod:`hashlib` primitives
and Python big integers.  The constructions are *functionally* faithful
(layer counts, message sizes and failure modes match the paper) but are
research simulators, not production cryptography.
"""

from repro.crypto.hashing import (
    sha1_id,
    sha256_bytes,
    derive_hopid,
    hash_password,
    verify_password,
    random_key,
    random_password,
)
from repro.crypto.symmetric import SymmetricKey, CipherError
from repro.crypto.asymmetric import RsaKeyPair, RsaPublicKey, RsaError
from repro.crypto.onion import (
    OnionLayer,
    build_onion,
    peel_layer,
    build_reply_onion,
    FAKE_ONION_MAGIC,
    make_fake_onion,
)

__all__ = [
    "sha1_id",
    "sha256_bytes",
    "derive_hopid",
    "hash_password",
    "verify_password",
    "random_key",
    "random_password",
    "SymmetricKey",
    "CipherError",
    "RsaKeyPair",
    "RsaPublicKey",
    "RsaError",
    "OnionLayer",
    "build_onion",
    "peel_layer",
    "build_reply_onion",
    "FAKE_ONION_MAGIC",
    "make_fake_onion",
]
