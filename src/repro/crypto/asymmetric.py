"""Schoolbook RSA for the bootstrap PKI and temporary initiator keys.

The paper assumes "a public key infrastructure on a P2P system by
assuming each node has a pair of private and public keys" (§3.3), used
for the Onion-Routing bootstrap, and a temporary public key ``K_I``
that the responder uses to wrap the file key (§4).

This is textbook RSA over Python big ints with Miller–Rabin key
generation and a hash-based hybrid mode for arbitrary-length messages
(RSA carries a fresh symmetric key; the payload rides under that key).
Default modulus is 512 bits: simulation-scale security, real key
generation, real algebra.
"""

from __future__ import annotations

import hashlib
import random

from repro.crypto.symmetric import SymmetricKey

_E = 65537
_MR_ROUNDS = 24


class RsaError(ValueError):
    """Raised on malformed ciphertexts/signatures or bad parameters."""


def _is_probable_prime(n: int, rng: random.Random) -> bool:
    """Miller–Rabin with ``_MR_ROUNDS`` random bases (plus small-prime sieve)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """A random prime with the top two bits set (guarantees modulus size)."""
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if candidate % _E == 1:
            continue  # e must be invertible mod p-1
        if _is_probable_prime(candidate, rng):
            return candidate


class RsaPublicKey:
    """The shareable half of a key pair: encrypt and verify."""

    __slots__ = ("n", "e")

    def __init__(self, n: int, e: int = _E):
        if n <= 3 or e <= 1:
            raise RsaError("invalid public key parameters")
        self.n = n
        self.e = e

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        """Canonical encoding (used as a node identifier input)."""
        width = self.modulus_bytes
        return self.n.to_bytes(width, "big") + self.e.to_bytes(4, "big")

    def _encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise RsaError("plaintext integer out of range")
        return pow(m, self.e, self.n)

    def encrypt(self, plaintext: bytes, rng: random.Random) -> bytes:
        """Hybrid encryption: RSA wraps a fresh key, which seals the payload.

        Output: ``wrapped_key(modulus_bytes) || sealed_payload``.
        """
        session_key = rng.getrandbits(128).to_bytes(16, "big")
        # Pad the session key with randomness; a zero leading byte keeps
        # the padded block strictly below the modulus.
        pad_len = self.modulus_bytes - 20
        pad = rng.getrandbits(8 * pad_len).to_bytes(pad_len, "big")
        block = b"\x00\x02" + pad + b"\x00" + session_key
        assert len(block) == self.modulus_bytes - 1
        m = int.from_bytes(block, "big")
        wrapped = self._encrypt_int(m).to_bytes(self.modulus_bytes, "big")
        sealed = SymmetricKey(session_key).seal(plaintext)
        return wrapped + sealed

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Hash-and-verify a signature produced by :meth:`RsaKeyPair.sign`."""
        if len(signature) != self.modulus_bytes:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        digest = int.from_bytes(hashlib.sha256(message).digest(), "big") % self.n
        return recovered == digest

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RsaPublicKey) and (self.n, self.e) == (other.n, other.e)

    def __hash__(self) -> int:
        return hash((self.n, self.e))

    def __repr__(self) -> str:
        return f"RsaPublicKey(n~2^{self.n.bit_length()}, e={self.e})"


class RsaKeyPair:
    """A node's key pair.  ``generate`` is the only constructor users need."""

    __slots__ = ("public", "_d")

    def __init__(self, n: int, e: int, d: int):
        self.public = RsaPublicKey(n, e)
        self._d = d

    @classmethod
    def generate(cls, rng: random.Random, bits: int = 512) -> "RsaKeyPair":
        """Generate a fresh key pair with a ``bits``-bit modulus."""
        if bits < 256:
            raise RsaError("modulus below 256 bits cannot wrap a session key")
        half = bits // 2
        while True:
            p = _random_prime(half, rng)
            q = _random_prime(bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            try:
                d = pow(_E, -1, phi)
            except ValueError:
                continue
            return cls(n, _E, d)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Inverse of :meth:`RsaPublicKey.encrypt`."""
        width = self.public.modulus_bytes
        if len(ciphertext) < width:
            raise RsaError("ciphertext shorter than RSA block")
        wrapped = int.from_bytes(ciphertext[:width], "big")
        if wrapped >= self.public.n:
            raise RsaError("RSA block out of range")
        m = pow(wrapped, self._d, self.public.n)
        session_key = (m & ((1 << 128) - 1)).to_bytes(16, "big")
        try:
            return SymmetricKey(session_key).open(ciphertext[width:])
        except Exception as exc:
            raise RsaError("payload authentication failed") from exc

    def sign(self, message: bytes) -> bytes:
        """Hash-and-sign (no padding — simulation-grade)."""
        digest = int.from_bytes(hashlib.sha256(message).digest(), "big") % self.public.n
        sig = pow(digest, self._d, self.public.n)
        return sig.to_bytes(self.public.modulus_bytes, "big")

    def __repr__(self) -> str:
        return f"RsaKeyPair({self.public!r})"
