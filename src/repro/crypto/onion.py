"""Layered (mix-style) message construction and peeling.

Implements the paper's message formats:

* Forward tunnel (§2, Fig. 1):  ``{h2, {h3, {D, m}K3}K2}K1`` — each hop
  removes one layer, learns only the next hopid (and, with the §5
  optimisation, an IP hint), and the tail learns the destination.
* Reply tunnel (§4): ``{hid1,{hid2,{hid3,{bid, fakeonion}K3}K2}K1}`` —
  every layer, including the last, peels to a (next-id, blob) pair, so
  the tail hop cannot tell ``bid`` (which maps back to the initiator)
  from yet another tunnel hop: the ``fakeonion`` is indistinguishable
  from a further encrypted layer.

Wire format of one decrypted layer::

    RELAY: tag("R") | next_id (16B) | ip_hint (var, may be empty) | inner
    EXIT:  tag("E") | dest_id (16B) | ip_hint (empty)             | payload

encoded with the length-prefixed fields of :mod:`repro.util.serialize`
and sealed with the layer's :class:`~repro.crypto.symmetric.SymmetricKey`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.symmetric import CipherError, SymmetricKey
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields_view,
    unpack_int,
)

TAG_RELAY = b"R"
TAG_EXIT = b"E"

#: Documentation/test label for fabricated trailing onions; never
#: appears inside a fake onion (that would make it distinguishable).
FAKE_ONION_MAGIC = "fakeonion"


@dataclass(frozen=True)
class OnionLayer:
    """One hop's view needed to *build* a layer: its id and key.

    ``ip_hint`` carries the §5 optimisation: the believed IP address of
    the *next* layer's tunnel hop node (empty string = basic mode).
    """

    hop_id: int
    key: SymmetricKey
    ip_hint: str = ""


@dataclass(frozen=True)
class PeeledLayer:
    """Result of removing one layer of encryption at a tunnel hop."""

    is_exit: bool
    next_id: int  # next hopid (relay) or destination id (exit)
    ip_hint: str  # §5 shortcut for the next hop ("" in basic mode)
    inner: bytes  # remaining onion (relay) or application payload (exit)


def _encode_layer(tag: bytes, next_id: int, ip_hint: str, inner: bytes) -> bytes:
    return pack_fields(tag, pack_int(next_id), ip_hint.encode(), inner)


def _decode_layer(plaintext: bytes) -> PeeledLayer:
    # Fields are memoryview slices of the just-decrypted plaintext —
    # only the surviving pieces (hint string, inner blob) are
    # materialised, so a peel never copies the residual onion twice.
    try:
        tag, id_bytes, hint_bytes, inner = unpack_fields_view(plaintext, count=4)
        next_id = unpack_int(id_bytes)
    except SerializationError as exc:
        raise CipherError(f"malformed onion layer: {exc}") from exc
    if tag == TAG_RELAY:
        return PeeledLayer(False, next_id, bytes(hint_bytes).decode(), bytes(inner))
    if tag == TAG_EXIT:
        return PeeledLayer(True, next_id, bytes(hint_bytes).decode(), bytes(inner))
    raise CipherError(f"unknown onion layer tag {bytes(tag)!r}")


def build_onion(layers: list[OnionLayer], destination_id: int, payload: bytes) -> bytes:
    """Construct a forward-tunnel onion ``{h2,{h3,{D, m}K3}K2}K1``.

    ``layers`` are ordered first hop → tail.  The returned blob is what
    the initiator sends to the tunnel hop node of ``layers[0]``; it is
    sealed under ``layers[0].key``.
    """
    if not layers:
        raise ValueError("a tunnel needs at least one hop")
    # Innermost layer: the tail learns the destination and message.
    blob = layers[-1].key.seal(_encode_layer(TAG_EXIT, destination_id, "", payload))
    # Wrap outward.  Layer i carries the id (and optional IP hint) of
    # layer i+1; the hint stored on OnionLayer i+1 describes *its own*
    # node, which is what layer i needs to reveal.
    for i in range(len(layers) - 2, -1, -1):
        nxt = layers[i + 1]
        blob = layers[i].key.seal(_encode_layer(TAG_RELAY, nxt.hop_id, nxt.ip_hint, blob))
    return blob


def build_reply_onion(
    layers: list[OnionLayer],
    bid: int,
    fake_onion: bytes,
) -> tuple[int, bytes]:
    """Construct the reply tunnel ``T_r`` of §4.

    Returns ``(first_hop_id, blob)``: the responder learns the first
    reply hop's id in the clear (it must know where to send), and the
    blob peels one RELAY layer per hop.  The innermost layer reveals
    ``(bid, fake_onion)`` — ``bid`` is an id whose numerically closest
    node is the initiator, and ``fake_onion`` is padding that looks
    like one more encrypted layer, so the tail cannot tell it is last.
    """
    if not layers:
        raise ValueError("a reply tunnel needs at least one hop")
    if not fake_onion:
        raise ValueError("fake_onion must be non-empty (tail distinguishability)")
    blob = layers[-1].key.seal(_encode_layer(TAG_RELAY, bid, "", fake_onion))
    for i in range(len(layers) - 2, -1, -1):
        nxt = layers[i + 1]
        blob = layers[i].key.seal(_encode_layer(TAG_RELAY, nxt.hop_id, nxt.ip_hint, blob))
    return layers[0].hop_id, blob


def peel_layer(key: SymmetricKey, blob: bytes) -> PeeledLayer:
    """Remove one layer of encryption — the per-hop operation."""
    return _decode_layer(key.open(blob))


def make_fake_onion(rng: random.Random, approx_layers: int = 2, payload_size: int = 64) -> bytes:
    """Random bytes sized like ``approx_layers`` residual onion layers.

    Purely random (no structure, no magic marker): a tail hop that
    tries to treat it as a further layer simply fails to decrypt, the
    same observable outcome as a real layer sealed under a key the hop
    does not have.
    """
    size = payload_size
    per_layer = SymmetricKey.overhead() + 4 * 4 + 1 + 16  # seal + framing + tag + id
    size += approx_layers * per_layer
    return rng.getrandbits(8 * size).to_bytes(size, "big")
