"""Authenticated symmetric encryption for tunnel layers.

Construction: a SHA-256-in-counter-mode stream cipher combined with an
encrypt-then-MAC HMAC-SHA256 tag.  HMAC is implemented per RFC 2104
directly over :func:`hashlib.sha256` (no :mod:`hmac` import) — the
reproduction builds its substrates from primitives.

Each TAP tunnel hop performs exactly one ``seal`` or ``open`` per
message, matching the paper's "single symmetric key operation per
message" cost claim (§4).

Hot-path engineering (the wire format is pinned by
``tests/crypto/test_vectors.py`` and unchanged):

* the RFC 2104 inner/outer padded key blocks are absorbed into
  pre-primed SHA-256 states once per :class:`SymmetricKey`; each
  ``seal``/``open`` only ``copy()``s them instead of re-padding and
  re-hashing 64-byte blocks per call;
* the keystream prefix ``SHA256(key || nonce || …)`` is likewise
  primed per key and extended per call, so each 32-byte block costs
  one 8-byte counter absorption;
* the XOR is one whole-buffer big-int operation
  (``int.from_bytes`` / ``to_bytes``) instead of a per-byte generator,
  and ``open`` slices the sealed buffer through :class:`memoryview`
  so nonce/ciphertext/tag extraction copies nothing.
"""

from __future__ import annotations

import hashlib

_BLOCK = 64  # SHA-256 block size in bytes (HMAC padding width)
_TAG_BYTES = 32
_NONCE_BYTES = 8
#: the deterministic nonce counter wraps modulo this (see ``_next_nonce``)
_NONCE_MODULUS = 1 << (8 * _NONCE_BYTES)


class CipherError(ValueError):
    """Raised when decryption fails authentication or framing."""


#: big-endian 8-byte encodings of the first 256 keystream block
#: counters, precomputed so messages up to 8 KiB skip the per-block
#: ``to_bytes`` on the seal/open hot path
_ENCODED_COUNTERS = tuple(i.to_bytes(8, "big") for i in range(256))


def _hmac_sha256(key: bytes, message: bytes) -> bytes:
    """RFC 2104 HMAC over SHA-256, written out from the definition."""
    if len(key) > _BLOCK:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK, b"\x00")
    o_key = bytes(b ^ 0x5C for b in key)
    i_key = bytes(b ^ 0x36 for b in key)
    inner = hashlib.sha256(i_key + message).digest()
    return hashlib.sha256(o_key + inner).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream: ``SHA256(key || nonce || ctr)``."""
    if length <= 0:
        return b""
    prefix = hashlib.sha256(key)
    prefix.update(nonce)
    blocks = []
    for counter in range((length + 31) // 32):
        h = prefix.copy()
        h.update(counter.to_bytes(8, "big"))
        blocks.append(h.digest())
    return b"".join(blocks)[:length]


class SymmetricKey:
    """A symmetric key ``K`` as stored inside a tunnel hop anchor.

    ``seal`` produces ``nonce || ciphertext || tag``; ``open`` verifies
    the tag before returning the plaintext.  The nonce is drawn from a
    per-key deterministic counter unless the caller supplies one, which
    keeps simulations reproducible while never reusing a keystream
    within the first 2**64 seals (see ``_next_nonce``).
    """

    __slots__ = ("key_bytes", "_enc_key", "_mac_key", "_nonce_counter",
                 "_mac_inner", "_mac_outer", "_ks_prefix")

    def __init__(self, key_bytes: bytes):
        if not isinstance(key_bytes, (bytes, bytearray)) or len(key_bytes) < 8:
            raise ValueError("key must be at least 8 bytes")
        self.key_bytes = bytes(key_bytes)
        # Domain-separate the encryption and MAC keys from K.
        self._enc_key = hashlib.sha256(b"enc" + self.key_bytes).digest()
        self._mac_key = hashlib.sha256(b"mac" + self.key_bytes).digest()
        self._nonce_counter = 0
        # RFC 2104 pad blocks, absorbed once per key: _mac_key is 32
        # bytes (< block), so it is zero-padded, never pre-hashed.
        padded = self._mac_key.ljust(_BLOCK, b"\x00")
        self._mac_inner = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
        self._mac_outer = hashlib.sha256(bytes(b ^ 0x5C for b in padded))
        # Keystream prefix state: SHA256(enc_key || …), extended with
        # nonce + counter per block.
        self._ks_prefix = hashlib.sha256(self._enc_key)

    def _next_nonce(self) -> bytes:
        """Advance the deterministic counter and encode it as the nonce.

        The counter wraps modulo ``2**64`` so sealing can never raise
        ``OverflowError`` encoding the nonce.  A wrap reuses keystream
        only after 2**64 seals on one key — far beyond any simulation's
        horizon, and TAP rotates tunnel keys on every reform long
        before that.  ``open`` is counter-free (the nonce travels on
        the wire), so wrapped sealers interoperate with any opener.
        """
        self._nonce_counter = (self._nonce_counter + 1) % _NONCE_MODULUS
        return self._nonce_counter.to_bytes(_NONCE_BYTES, "big")

    def _tag(self, message) -> bytes:
        """HMAC-SHA256 via the pre-primed RFC 2104 pad states."""
        inner = self._mac_inner.copy()
        inner.update(message)
        outer = self._mac_outer.copy()
        outer.update(inner.digest())
        return outer.digest()

    def _stream_xor(self, nonce, data) -> bytes:
        """XOR ``data`` with the per-(key, nonce) keystream, vectorised
        as one whole-buffer big-int operation."""
        length = len(data)
        if not length:
            return b""
        prefix = self._ks_prefix.copy()
        prefix.update(nonce)
        n_blocks = (length + 31) // 32
        counters = (
            _ENCODED_COUNTERS[:n_blocks]
            if n_blocks <= len(_ENCODED_COUNTERS)
            else [i.to_bytes(8, "big") for i in range(n_blocks)]
        )
        copy = prefix.copy
        blocks = []
        append = blocks.append
        for counter in counters:
            h = copy()
            h.update(counter)
            append(h.digest())
        stream = b"".join(blocks)
        return (
            int.from_bytes(data, "big")
            ^ int.from_bytes(memoryview(stream)[:length], "big")
        ).to_bytes(length, "big")

    def seal(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt-then-MAC: returns ``nonce || ct || tag``."""
        if nonce is None:
            nonce = self._next_nonce()
        if len(nonce) != _NONCE_BYTES:
            raise ValueError(f"nonce must be {_NONCE_BYTES} bytes")
        ciphertext = self._stream_xor(nonce, plaintext)
        tag = self._tag(nonce + ciphertext)
        return nonce + ciphertext + tag

    def open(self, sealed) -> bytes:
        """Verify and decrypt a ``seal`` output (bytes or memoryview)."""
        if len(sealed) < _NONCE_BYTES + _TAG_BYTES:
            raise CipherError("sealed message too short")
        view = memoryview(sealed)
        nonce = view[:_NONCE_BYTES]
        ciphertext = view[_NONCE_BYTES:-_TAG_BYTES]
        tag = view[-_TAG_BYTES:]
        body = self._mac_inner.copy()
        body.update(view[:-_TAG_BYTES])
        outer = self._mac_outer.copy()
        outer.update(body.digest())
        if not _constant_time_eq(tag, outer.digest()):
            raise CipherError("authentication tag mismatch")
        return self._stream_xor(nonce, ciphertext)

    @staticmethod
    def overhead() -> int:
        """Bytes added by one layer of ``seal`` (nonce + tag)."""
        return _NONCE_BYTES + _TAG_BYTES

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymmetricKey) and other.key_bytes == self.key_bytes

    def __hash__(self) -> int:
        return hash(self.key_bytes)

    def __getstate__(self) -> bytes:
        # sha256 states are not picklable; rebuild them on unpickle so
        # keys cross process boundaries (the parallel trial executor).
        return self.key_bytes + self._nonce_counter.to_bytes(9, "big")

    def __setstate__(self, state: bytes) -> None:
        self.__init__(state[:-9])
        self._nonce_counter = int.from_bytes(state[-9:], "big")

    def __repr__(self) -> str:
        return f"SymmetricKey({self.key_bytes[:4].hex()}…)"


def _constant_time_eq(a, b) -> bool:
    """Timing-safe comparison (length leak acceptable: tags are fixed-size).

    The whole-buffer big-int XOR examines every byte before the zero
    test, replacing the per-byte accumulator loop on the ``open`` hot
    path.
    """
    if len(a) != len(b):
        return False
    return not int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
