"""Authenticated symmetric encryption for tunnel layers.

Construction: a SHA-256-in-counter-mode stream cipher combined with an
encrypt-then-MAC HMAC-SHA256 tag.  HMAC is implemented per RFC 2104
directly over :func:`hashlib.sha256` (no :mod:`hmac` import) — the
reproduction builds its substrates from primitives.

Each TAP tunnel hop performs exactly one ``seal`` or ``open`` per
message, matching the paper's "single symmetric key operation per
message" cost claim (§4).
"""

from __future__ import annotations

import hashlib

_BLOCK = 64  # SHA-256 block size in bytes (HMAC padding width)
_TAG_BYTES = 32
_NONCE_BYTES = 8


class CipherError(ValueError):
    """Raised when decryption fails authentication or framing."""


def _hmac_sha256(key: bytes, message: bytes) -> bytes:
    """RFC 2104 HMAC over SHA-256, written out from the definition."""
    if len(key) > _BLOCK:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK, b"\x00")
    o_key = bytes(b ^ 0x5C for b in key)
    i_key = bytes(b ^ 0x36 for b in key)
    inner = hashlib.sha256(i_key + message).digest()
    return hashlib.sha256(o_key + inner).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream: ``SHA256(key || nonce || ctr)``."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(
            key + nonce + counter.to_bytes(8, "big")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


class SymmetricKey:
    """A symmetric key ``K`` as stored inside a tunnel hop anchor.

    ``seal`` produces ``nonce || ciphertext || tag``; ``open`` verifies
    the tag before returning the plaintext.  The nonce is drawn from a
    per-key deterministic counter unless the caller supplies one, which
    keeps simulations reproducible while never reusing a keystream.
    """

    __slots__ = ("key_bytes", "_enc_key", "_mac_key", "_nonce_counter")

    def __init__(self, key_bytes: bytes):
        if not isinstance(key_bytes, (bytes, bytearray)) or len(key_bytes) < 8:
            raise ValueError("key must be at least 8 bytes")
        self.key_bytes = bytes(key_bytes)
        # Domain-separate the encryption and MAC keys from K.
        self._enc_key = hashlib.sha256(b"enc" + self.key_bytes).digest()
        self._mac_key = hashlib.sha256(b"mac" + self.key_bytes).digest()
        self._nonce_counter = 0

    def _next_nonce(self) -> bytes:
        self._nonce_counter += 1
        return self._nonce_counter.to_bytes(_NONCE_BYTES, "big")

    def seal(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt-then-MAC: returns ``nonce || ct || tag``."""
        if nonce is None:
            nonce = self._next_nonce()
        if len(nonce) != _NONCE_BYTES:
            raise ValueError(f"nonce must be {_NONCE_BYTES} bytes")
        stream = _keystream(self._enc_key, nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = _hmac_sha256(self._mac_key, nonce + ciphertext)
        return nonce + ciphertext + tag

    def open(self, sealed: bytes) -> bytes:
        """Verify and decrypt a ``seal`` output."""
        if len(sealed) < _NONCE_BYTES + _TAG_BYTES:
            raise CipherError("sealed message too short")
        nonce = sealed[:_NONCE_BYTES]
        ciphertext = sealed[_NONCE_BYTES:-_TAG_BYTES]
        tag = sealed[-_TAG_BYTES:]
        expected = _hmac_sha256(self._mac_key, nonce + ciphertext)
        if not _constant_time_eq(tag, expected):
            raise CipherError("authentication tag mismatch")
        stream = _keystream(self._enc_key, nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))

    @staticmethod
    def overhead() -> int:
        """Bytes added by one layer of ``seal`` (nonce + tag)."""
        return _NONCE_BYTES + _TAG_BYTES

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymmetricKey) and other.key_bytes == self.key_bytes

    def __hash__(self) -> int:
        return hash(self.key_bytes)

    def __repr__(self) -> str:
        return f"SymmetricKey({self.key_bytes[:4].hex()}…)"


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (length leak acceptable: tags are fixed-size)."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
