"""Extension experiment: TAP's balance point among anonymity designs.

The paper's stated motivation is "to strike a balance between
functionality and anonymity in dynamic P2P networks".  This experiment
places TAP on that plane next to the two design families §8 compares
against, under one common configuration (n nodes, fraction p malicious
/ failing):

* **Onion Routing** — a small fixed core of mixes: strong anonymity
  *unless* the entry mix is malicious (it sees the initiator
  directly), and every path dies with any mix on it;
* **Crowds** — every node a jondo, probabilistic forwarding: probable
  innocence against the predecessor attack, but paths are fixed-node
  and break under churn;
* **TAP** — tunnels over replicated DHT anchors: a malicious hop node
  only gains 1/l predecessor confidence, and hops survive failures at
  the replica level.

Metrics per system: degree of anonymity against its canonical internal
adversary, path/tunnel failure probability at the failure fraction,
and mean overlay hops per message (the latency proxy of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.anonymity import (
    degree_of_anonymity,
    predecessor_confidence,
    uniform_with_suspect,
)
from repro.analysis.theory import (
    expected_route_hops,
    tunnel_failure_prob_current,
    tunnel_failure_prob_tap,
)
from repro.baselines.crowds import CrowdsNetwork


@dataclass(frozen=True)
class ComparisonConfig:
    num_nodes: int = 10_000
    malicious_fraction: float = 0.1
    failure_fraction: float = 0.2
    tunnel_length: int = 5
    replication_factor: int = 3
    crowds_pf: float = 0.75
    onion_mixes: int = 5
    onion_path_len: int = 3
    b_bits: int = 4
    seed: int = 2004

    @classmethod
    def fast(cls) -> "ComparisonConfig":
        return cls(num_nodes=1_000)


def run_anonymity_comparison(config: ComparisonConfig = ComparisonConfig()) -> list[dict]:
    n = config.num_nodes
    p = config.malicious_fraction
    f = config.failure_fraction
    l = config.tunnel_length
    rows: list[dict] = []

    # ------------------------------------------------------------- TAP
    # Internal adversary: a malicious tunnel hop node.  Mix homogeneity
    # means it cannot tell whether it is first (§6): its predecessor is
    # the initiator with confidence 1/l; remaining mass uniform.
    tap_dist = uniform_with_suspect(n - 1, predecessor_confidence(l))
    rows.append(
        {
            "figure": "ext-comparison",
            "system": "tap-basic",
            "degree_of_anonymity": degree_of_anonymity(tap_dist),
            "path_failure_prob": tunnel_failure_prob_tap(
                f, l, config.replication_factor, n
            ),
            "mean_hops": (l + 1) * expected_route_hops(n, config.b_bits),
        }
    )
    rows.append(
        {
            "figure": "ext-comparison",
            "system": "tap-opt",
            "degree_of_anonymity": degree_of_anonymity(tap_dist),
            "path_failure_prob": tunnel_failure_prob_tap(
                f, l, config.replication_factor, n
            ),
            "mean_hops": float(l + 1),
        }
    )

    # ---------------------------------------------------------- Crowds
    crowd = CrowdsNetwork(
        list(range(n)),
        p_f=config.crowds_pf,
        collaborators=set(range(round(p * n))),
    )
    crowds_len = crowd.expected_path_length()
    rows.append(
        {
            "figure": "ext-comparison",
            "system": "crowds",
            "degree_of_anonymity": degree_of_anonymity(crowd.suspect_distribution()),
            # a built path is a fixed-node path of its expected length
            "path_failure_prob": tunnel_failure_prob_current(
                f, max(1, round(crowds_len))
            ),
            "mean_hops": crowds_len,
        }
    )

    # --------------------------------------------------- Onion Routing
    # The entry mix sees the initiator directly: with probability p the
    # entry mix is malicious and anonymity is zero; otherwise the core
    # set hides the initiator among all n users.
    p_entry_bad = p  # mixes drawn from the same malicious population
    onion_degree = (1.0 - p_entry_bad) * degree_of_anonymity(
        uniform_with_suspect(n - 1, 1.0 / (n - 1))
    )
    rows.append(
        {
            "figure": "ext-comparison",
            "system": "onion-routing",
            "degree_of_anonymity": onion_degree,
            "path_failure_prob": tunnel_failure_prob_current(
                f, config.onion_path_len
            ),
            "mean_hops": float(config.onion_path_len + 1),
        }
    )
    return rows
