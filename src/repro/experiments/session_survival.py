"""Extension experiment: long-running sessions under churn.

The paper's introduction motivates TAP with long-standing remote-login
sessions: fixed-node tunnels break whenever a relay fails, TAP tunnels
keep working.  This experiment runs request/response sessions while
nodes fail continuously and compares:

* **TAP sessions** (:class:`repro.core.session.TapSession`) — replica
  fail-over keeps the *same* tunnel working; reforms happen only when
  an entire replica set is lost between repairs;
* **fixed-node sessions** — the current-tunneling baseline; every
  relay failure breaks the tunnel and forces a reform before the next
  request can succeed.

Reported: request availability, tunnel reforms per session, and mean
requests survived by a single tunnel (its useful lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fixed_tunnel import form_fixed_tunnel
from repro.core.session import SessionServer, TapSession
from repro.core.system import TapSystem
from repro.experiments.config import ExperimentConfig
from repro.perf import (
    base_snapshot,
    capture_obs,
    effective_workers,
    local_obs,
    merge_obs,
    run_trials,
)
from repro.perf.parallel import shared_payload
from repro.util.rng import SeedSequenceFactory


def _base_token(config: SessionSurvivalConfig) -> tuple:
    return ("sessions-base", config.seed, config.num_nodes)


def _base_build(config: SessionSurvivalConfig):
    return TapSystem.bootstrap(config.num_nodes, seed=config.seed).snapshot()


@dataclass(frozen=True)
class SessionSurvivalConfig(ExperimentConfig):
    num_nodes: int = 300
    sessions: int = 6
    requests_per_session: int = 12
    tunnel_length: int = 3
    #: nodes killed (with repair) between consecutive requests
    failures_per_request: tuple[int, ...] = (0, 1, 3)
    seed: int = 2004

    @classmethod
    def fast(cls) -> "SessionSurvivalConfig":
        return cls(num_nodes=200, sessions=4, requests_per_session=8,
                   failures_per_request=(0, 2))


class _FixedSession:
    """Current-tunneling baseline session with reform-on-failure."""

    def __init__(self, system: TapSystem, protected: set[int], length: int, rng):
        self.system = system
        self.protected = protected
        self.length = length
        self.rng = rng
        self.reforms = 0
        self.lifetimes: list[int] = []
        self._current_life = 0
        self._form()

    def _form(self) -> None:
        pool = [n for n in self.system.network.alive_ids if n not in self.protected]
        self.tunnel = form_fixed_tunnel(pool, self.length, self.rng, with_keys=False)

    def request(self) -> bool:
        """One request: succeeds iff all relays alive; reform after a
        failure so the *next* request can succeed."""
        if self.tunnel.functions(self.system.network.is_alive):
            self._current_life += 1
            return True
        self.lifetimes.append(self._current_life)
        self._current_life = 0
        self.reforms += 1
        self._form()
        return False

    def finish(self) -> None:
        self.lifetimes.append(self._current_life)


def _survival_level(
    config: SessionSurvivalConfig,
    churn: int,
    metrics,
    audit: bool,
    tracer,
    event_trace,
) -> dict:
    """One churn level on a fork of the shared base overlay, with its
    own labelled rng streams (seed ``config.seed + churn``)."""
    seeds = SeedSequenceFactory(config.seed)
    token = _base_token(config)
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        snap = base_snapshot(token, lambda: _base_build(config))
    system = snap.fork(
        config.seed + churn,
        metrics=metrics, event_trace=event_trace, tracer=tracer,
    )
    if audit:
        system.enable_auditing(strict=True)
    rng = seeds.pyrandom("session-churn", churn)

    # Set up TAP sessions and fixed baseline sessions on the same
    # overlay, then churn it under both simultaneously.
    tap_sessions: list[TapSession] = []
    protected: set[int] = set()
    for i in range(config.sessions):
        initiator = system.tap_node(system.random_node_id(("sess-init", churn, i)))
        server = SessionServer(
            system.random_node_id(("sess-server", churn, i)),
            handler=lambda req: b"ok:" + req,
        )
        protected.update({initiator.node_id, server.node_id})
        system.deploy_thas(initiator, count=config.tunnel_length * 3)
        tap_sessions.append(
            TapSession(system, initiator, server, config.tunnel_length)
        )
    fixed_sessions = [
        _FixedSession(system, protected, config.tunnel_length, rng)
        for _ in range(config.sessions)
    ]

    tap_ok = fixed_ok = total = 0
    for r in range(config.requests_per_session):
        # Churn between requests: kill random unprotected nodes.
        for _ in range(churn):
            candidates = [
                n for n in system.network.alive_ids if n not in protected
            ]
            if len(candidates) <= config.num_nodes // 2:
                break
            system.fail_node(candidates[rng.randrange(len(candidates))])

        for session in tap_sessions:
            total += 1
            if session.request(f"r{r}".encode()) is not None:
                tap_ok += 1
        for fixed in fixed_sessions:
            if fixed.request():
                fixed_ok += 1
    for fixed in fixed_sessions:
        fixed.finish()

    tap_reforms = sum(s.stats.tunnel_reforms for s in tap_sessions)
    fixed_reforms = sum(f.reforms for f in fixed_sessions)
    fixed_lifetimes = [x for f in fixed_sessions for x in f.lifetimes]
    return {
        "figure": "ext-sessions",
        "failures_per_request": churn,
        "tap_availability": tap_ok / total,
        "fixed_availability": fixed_ok / total,
        "tap_reforms": tap_reforms / config.sessions,
        "fixed_reforms": fixed_reforms / config.sessions,
        "fixed_mean_tunnel_life": (
            sum(fixed_lifetimes) / len(fixed_lifetimes)
            if fixed_lifetimes else float(config.requests_per_session)
        ),
    }


def _survival_trial(
    config: SessionSurvivalConfig,
    churn: int,
    want_metrics: bool,
    audit: bool,
    want_tracer: bool,
    want_events: bool,
):
    metrics, tracer, event_trace = local_obs(want_metrics, want_tracer, want_events)
    row = _survival_level(config, churn, metrics, audit, tracer, event_trace)
    return row, capture_obs(metrics, tracer, event_trace)


def run_session_survival(
    config: SessionSurvivalConfig = SessionSurvivalConfig(),
    metrics=None,
    audit: bool = False,
    tracer=None,
    event_trace=None,
    workers: int | None = None,
) -> list[dict]:
    """The churn runner.  ``metrics``/``audit``/``tracer``/
    ``event_trace`` thread :mod:`repro.obs` instrumentation through
    every system built — with a tracer, each session request becomes a
    ``session.request`` span tree covering its tunnel traversals and
    any ``session.reform`` repairs.  Each churn level is independent
    (its own overlay and labelled rng streams), so ``workers`` fans the
    levels out over processes with identical rows and obs."""
    token = _base_token(config)
    bases = {token: base_snapshot(token, lambda: _base_build(config))}
    results = run_trials(
        _survival_trial,
        [
            (config, churn, metrics is not None, audit,
             tracer is not None, event_trace is not None)
            for churn in config.failures_per_request
        ],
        effective_workers(workers, config),
        shared=bases,
    )
    merge_obs(
        [payload for _, payload in results],
        metrics=metrics, tracer=tracer, event_trace=event_trace,
    )
    return [row for row, _ in results]
