"""Figure 2: tunnel failure fraction vs node failure fraction.

Series: "current tunneling" (fixed-node paths), TAP k=3, TAP k=5.
Setup (paper §7.1): 10^4 nodes, 5,000 tunnels of length 5; a fraction
p of nodes fails simultaneously; measure the fraction of tunnels that
no longer function.

* current tunneling: a tunnel dies iff any of its l relay nodes died;
* TAP: a hop dies iff its entire replica set died (the closest
  survivor of a replica set is provably still a member, see
  :meth:`repro.analysis.idspace.IdSpaceModel.any_survivor`).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.idspace import IdSpaceModel
from repro.analysis.theory import (
    tunnel_failure_prob_current,
    tunnel_failure_prob_tap,
)
from repro.experiments.config import Fig2Config
from repro.perf import effective_workers, run_trials
from repro.util.rng import SeedSequenceFactory


def _distinct_relay_matrix(
    n_nodes: int, num_tunnels: int, length: int, rng: np.random.Generator
) -> np.ndarray:
    """(T, l) relay indices, distinct within each tunnel."""
    relays = rng.integers(0, n_nodes, size=(num_tunnels, length))
    for _ in range(64):
        # Resample rows containing duplicates (vanishingly rare for
        # l << sqrt(N); the loop is effectively one pass).
        sorted_rows = np.sort(relays, axis=1)
        dup = (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any(axis=1)
        if not dup.any():
            return relays
        relays[dup] = rng.integers(0, n_nodes, size=(int(dup.sum()), length))
    raise RuntimeError("could not draw distinct relays (length too close to N?)")


def _fig2_trial(config: Fig2Config, rep: int) -> list[tuple[tuple[float, str], float]]:
    """One Monte-Carlo repetition; the unit of parallel fan-out.

    Draws only from the rep's own labelled stream, so the values are
    identical whether this runs inline or in any worker process.
    """
    rng = SeedSequenceFactory(config.seed).numpy("fig2", rep)
    model = IdSpaceModel.random(config.num_nodes, rng)
    total_hops = config.num_tunnels * config.tunnel_length
    hop_keys = IdSpaceModel.draw_unique_ids(total_hops, rng)
    relays = _distinct_relay_matrix(
        config.num_nodes, config.num_tunnels, config.tunnel_length, rng
    )

    out: list[tuple[tuple[float, str], float]] = []
    for p in config.failure_fractions:
        n_failed = round(p * config.num_nodes)
        failed_mask = np.zeros(config.num_nodes, dtype=bool)
        if n_failed:
            failed_mask[
                rng.choice(config.num_nodes, size=n_failed, replace=False)
            ] = True

        cur_failed = failed_mask[relays].any(axis=1).mean()
        out.append(((p, "current"), float(cur_failed)))

        for k in config.replication_factors:
            hop_ok = model.any_survivor(hop_keys, k, failed_mask)
            tunnels_ok = hop_ok.reshape(
                config.num_tunnels, config.tunnel_length
            ).all(axis=1)
            out.append(((p, f"tap-k{k}"), float(1.0 - tunnels_ok.mean())))
    return out


def run_fig2(
    config: Fig2Config = Fig2Config(), workers: int | None = None
) -> list[dict]:
    """Monte-Carlo rows for every (failure fraction, scheme) point."""
    partials = run_trials(
        _fig2_trial,
        [(config, rep) for rep in range(config.num_seeds)],
        effective_workers(workers, config),
    )
    acc: dict[tuple[float, str], list[float]] = {}
    for partial in partials:
        for key, value in partial:
            acc.setdefault(key, []).append(value)

    rows: list[dict] = []
    for (p, scheme), values in sorted(acc.items()):
        if scheme == "current":
            expected = tunnel_failure_prob_current(
                p, config.tunnel_length, config.num_nodes
            )
        else:
            k = int(scheme.split("k")[1])
            expected = tunnel_failure_prob_tap(
                p, config.tunnel_length, k, config.num_nodes
            )
        rows.append(
            {
                "figure": "fig2",
                "failed_fraction": p,
                "scheme": scheme,
                "failed_tunnels": float(np.mean(values)),
                "std": float(np.std(values)),
                "expected": expected,
            }
        )
    return rows
