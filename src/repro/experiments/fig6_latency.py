"""Figure 6: file transfer latency vs network size.

Setup (paper §7.3): networks of 100…10,000 nodes; per-link latency
drawn uniformly (Internet-like), 1.5 Mb/s links; a random initiator
transfers a 2 Mb file to the node numerically closest to a random
fileid three ways:

* ``overt``      — plain Pastry routing (log_16 N overlay hops);
* ``tap-basic``  — through an l-hop tunnel, every tunnel hop located
  by full DHT routing (≈ (l+1)·log_16 N overlay hops);
* ``tap-opt``    — §5 IP hints give a direct link to every hop node
  (l+2 physical hops; falls back to DHT routing only when stale —
  never, in this churn-free scenario).

The underlying node paths come from real Pastry routing over the
built overlay; transfer times from the store-and-forward model (each
relay receives the full message before forwarding — the paper's
whole-message Java emulation).  We do not expect the paper's absolute
seconds (its latency distribution is only loosely specified); the
ordering, ratios, and growth with l and N are the reproduced shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import expected_route_hops
from repro.experiments.config import Fig6Config
from repro.pastry.network import PastryNetwork
from repro.perf import (
    base_snapshot,
    capture_obs,
    effective_workers,
    local_obs,
    merge_obs,
    run_trials,
)
from repro.perf.parallel import shared_payload
from repro.simnet.topology import Topology
from repro.simnet.transport import TransferModel, path_transfer_time
from repro.util.ids import random_id
from repro.util.rng import SeedSequenceFactory


def _stitch(*segments: list[int]) -> list[int]:
    """Concatenate routing segments, dropping duplicated junctions."""
    path: list[int] = []
    for seg in segments:
        if path and seg and path[-1] == seg[0]:
            seg = seg[1:]
        path.extend(seg)
    return path


def _tunnel_paths(
    network: PastryNetwork,
    initiator: int,
    destination_key: int,
    hop_keys: list[int],
) -> tuple[list[int], list[int], list[tuple[str, list[int]]], list[tuple[str, list[int]]]]:
    """Paths *and* per-leg decomposition through the same tunnel hops.

    Returns ``(basic_path, optimised_path, basic_legs, opt_legs)``;
    legs are ``(span_name, leg_path)`` pairs whose link sets partition
    the stitched path — so per-leg transfer times sum exactly to the
    full-path transfer time under the additive store-and-forward model
    (the invariant the span export relies on).
    """
    roots = [network.closest_alive(h) for h in hop_keys]

    basic_segments = []
    current = initiator
    for hop_key, root in zip(hop_keys, roots):
        seg = network.route(current, hop_key)
        assert seg.success and seg.destination == root
        basic_segments.append(seg.path)
        current = root
    exit_seg = network.route(current, destination_key)
    assert exit_seg.success
    basic = _stitch(*basic_segments, exit_seg.path)
    basic_legs = [("dht.route", seg) for seg in basic_segments]
    basic_legs.append(("exit.route", exit_seg.path))

    waypoints = [initiator, *roots, exit_seg.destination]
    opt_legs: list[tuple[str, list[int]]] = []
    for i, (a, b) in enumerate(zip(waypoints, waypoints[1:])):
        if a == b:
            continue  # co-located waypoints cost no link
        name = "exit.direct" if i == len(waypoints) - 2 else "hint.direct"
        opt_legs.append((name, [a, b]))
    optimised = _stitch(*[leg for _, leg in opt_legs]) or [initiator]
    return basic, optimised, basic_legs, opt_legs


def _fig6_topology(config: Fig6Config, n_nodes: int) -> Topology:
    """The per-size latency model, shared by the base overlay build
    (PNS) and every repetition's transfer-time computation."""
    return Topology(
        seed=SeedSequenceFactory(config.seed).child("fig6-topo", n_nodes),
        min_latency_s=config.min_latency_s,
        max_latency_s=config.max_latency_s,
        bandwidth_bps=config.bandwidth_bps,
    )


def _fig6_base_token(config: Fig6Config, n_nodes: int) -> tuple:
    return (
        "fig6-base", config.seed, config.b_bits, config.pns, n_nodes,
        config.min_latency_s, config.max_latency_s, config.bandwidth_bps,
    )


def _fig6_base_build(config: Fig6Config, n_nodes: int):
    """Bootstrap the per-size base overlay and capture its snapshot.

    One overlay per ``(config, n_nodes)``: repetitions vary the
    initiators/fileids/tunnels they sample, not the substrate — so the
    N-node construction (and the PNS candidate ranking in particular)
    is paid once, and every rep forks the snapshot.
    """
    seeds = SeedSequenceFactory(config.seed)
    rng = seeds.pyrandom("fig6-base", n_nodes)
    ids = set()
    while len(ids) < n_nodes:
        ids.add(random_id(rng))
    topology = _fig6_topology(config, n_nodes)
    network = PastryNetwork.build(
        ids,
        b_bits=config.b_bits,
        proximity=topology.latency if config.pns else None,
    )
    return network.snapshot()


def _fig6_leg(
    config: Fig6Config,
    rep: int,
    n_nodes: int,
    metrics,
    audit: bool,
    tracer,
    event_trace,
) -> list[tuple[tuple[int, str], float]]:
    """All transfers of one (repetition, network size) cell.

    The rng streams are labelled by ``(rep, n_nodes)``, so each cell
    is a self-contained trial — the unit the parallel executor fans
    out.  Observability objects are whatever the caller hands in (the
    parent's in a serial run, worker-local ones under fan-out).

    The overlay is a fork of the per-size base snapshot: taken from
    the ``run_trials(shared=...)`` payload when fanned out, else from
    the process-local :func:`base_snapshot` cache — both hold the same
    deterministic build, so rows are identical either way.
    """
    seeds = SeedSequenceFactory(config.seed)
    acc: list[tuple[tuple[int, str], float]] = []

    rng = seeds.pyrandom("fig6", rep, n_nodes)
    topology = _fig6_topology(config, n_nodes)
    token = _fig6_base_token(config, n_nodes)
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        snap = base_snapshot(token, lambda: _fig6_base_build(config, n_nodes))
    network = snap.restore(metrics=metrics)
    if audit:
        from repro.obs.audit import InvariantAuditor

        InvariantAuditor(network, metrics=metrics).assert_clean(
            f"fig6 build n={n_nodes} rep={rep}"
        )
    alive = network.alive_ids

    def record(
        scheme: str,
        path: list[int],
        legs: list[tuple[str, list[int]]] | None = None,
    ) -> None:
        t = path_transfer_time(
            topology, path, config.file_bits,
            TransferModel.STORE_AND_FORWARD,
        )
        acc.append(((n_nodes, scheme), t))
        if tracer:
            root = tracer.start_trace(
                "tap.request", observer="initiator",
                scheme=scheme, num_nodes=n_nodes,
                initiator=path[0] if path else None,
            )
            cursor = 0.0
            for name, leg_path in (legs or [("dht.route", path)]):
                dt = path_transfer_time(
                    topology, leg_path, config.file_bits,
                    TransferModel.STORE_AND_FORWARD,
                )
                tracer.add_span(
                    name, parent=root,
                    sim_start=cursor, sim_end=cursor + dt,
                    observer="hop",
                    src=leg_path[0], dst=leg_path[-1],
                    links=max(0, len(leg_path) - 1),
                )
                cursor += dt
            # children partition the path's links, so their
            # durations sum exactly to the end-to-end time
            root.set_sim(0.0, cursor)
            tracer.finish(
                root,
                links=max(0, len(path) - 1),
                transfer_time_s=t,
            )
        if event_trace is not None:
            event_trace.record(
                "fig6.transfer", scheme=scheme, num_nodes=n_nodes,
                transfer_time_s=t, links=max(0, len(path) - 1),
            )
        if metrics is not None:
            metrics.histogram(f"fig6.transfer_time_s.{scheme}").observe(t)
            hops = metrics.histogram(f"fig6.underlying_hops.{scheme}")
            hops.observe(max(0, len(path) - 1))
            link = metrics.histogram("fig6.link_latency_s")
            for a, b in zip(path, path[1:]):
                link.observe(topology.latency(a, b))

    for _ in range(config.transfers_per_size):
        initiator = alive[rng.randrange(len(alive))]
        fid = random_id(rng)

        overt = network.route(initiator, fid)
        assert overt.success
        record("overt", overt.path)

        for length in config.tunnel_lengths:
            hop_keys = [random_id(rng) for _ in range(length)]
            basic, optimised, basic_legs, opt_legs = _tunnel_paths(
                network, initiator, fid, hop_keys
            )
            record(f"tap-basic-l{length}", basic, basic_legs)
            record(f"tap-opt-l{length}", optimised, opt_legs)

    return acc


def _fig6_trial(
    config: Fig6Config,
    rep: int,
    n_nodes: int,
    want_metrics: bool,
    audit: bool,
    want_tracer: bool,
    want_events: bool,
):
    """Worker entry point: run one cell against local obs, ship both back."""
    metrics, tracer, event_trace = local_obs(want_metrics, want_tracer, want_events)
    acc = _fig6_leg(config, rep, n_nodes, metrics, audit, tracer, event_trace)
    return acc, capture_obs(metrics, tracer, event_trace)


def run_fig6(
    config: Fig6Config = Fig6Config(),
    metrics=None,
    audit: bool = False,
    tracer=None,
    event_trace=None,
    workers: int | None = None,
) -> list[dict]:
    """Generate the Figure-6 rows.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) additionally
    accumulates per-link latency and per-transfer time histograms —
    the paper's latency data as a first-class artifact.  ``audit``
    runs the :class:`repro.obs.InvariantAuditor` on every overlay
    built, raising on violations.

    ``tracer`` (a :class:`repro.obs.SpanTracer`) records one trace per
    transfer per scheme on the *simulated* clock: a ``tap.request``
    root whose child legs carry their store-and-forward transfer time
    and sum exactly to the root's end-to-end duration.  ``event_trace``
    (an :class:`repro.obs.EventTrace`) records one ``fig6.transfer``
    event per trace.

    ``workers`` fans the (repetition, network size) cells out over
    processes; rows, metrics, spans, and events are identical for any
    worker count (worker-local obs are merged back in cell order).
    """
    # One base overlay per network size, built in the parent and
    # shipped to workers as the shared payload (pickled once per
    # worker); every cell forks it instead of re-building.
    bases = {
        _fig6_base_token(config, n_nodes): base_snapshot(
            _fig6_base_token(config, n_nodes),
            lambda n=n_nodes: _fig6_base_build(config, n),
        )
        for n_nodes in config.network_sizes
    }
    # Every cell instruments against cell-local obs which are merged
    # back in cell order — for workers == 1 too, so even float
    # accumulation grouping (histogram totals) is bit-identical across
    # worker counts, not just the exported rows.
    results = run_trials(
        _fig6_trial,
        [
            (config, rep, n_nodes, metrics is not None, audit,
             tracer is not None, event_trace is not None)
            for rep in range(config.num_seeds)
            for n_nodes in config.network_sizes
        ],
        effective_workers(workers, config),
        shared=bases,
    )
    partials = [items for items, _ in results]
    merge_obs(
        [payload for _, payload in results],
        metrics=metrics, tracer=tracer, event_trace=event_trace,
    )

    acc: dict[tuple[int, str], list[float]] = {}
    for partial in partials:
        for key, value in partial:
            acc.setdefault(key, []).append(value)

    rows: list[dict] = []
    for (n_nodes, scheme), values in sorted(acc.items()):
        rows.append(
            {
                "figure": "fig6",
                "num_nodes": n_nodes,
                "scheme": scheme,
                "transfer_time_s": float(np.mean(values)),
                "std": float(np.std(values)),
                "expected_route_hops": expected_route_hops(n_nodes, config.b_bits),
            }
        )
    return rows
