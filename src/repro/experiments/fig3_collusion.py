"""Figure 3: corrupted tunnel fraction vs malicious node fraction.

Setup (paper §7.2): 10^4 nodes, 5,000 tunnels of length 5, k = 3; a
fraction p of nodes is malicious and colluding.  A THA is disclosed
iff any node of its replica set is malicious; a tunnel is corrupted
(attack case 1, §6) iff *all* of its hops' THAs are disclosed.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.idspace import IdSpaceModel
from repro.analysis.theory import tunnel_corruption_prob
from repro.experiments.config import Fig3Config
from repro.perf import effective_workers, run_trials
from repro.util.rng import SeedSequenceFactory


def corruption_fraction(
    model: IdSpaceModel,
    hop_keys: np.ndarray,
    num_tunnels: int,
    tunnel_length: int,
    k: int,
) -> float:
    """Fraction of tunnels whose every hop's THA is disclosed."""
    disclosed = model.any_malicious_holder(hop_keys, k)
    corrupted = disclosed.reshape(num_tunnels, tunnel_length).all(axis=1)
    return float(corrupted.mean())


def _fig3_trial(config: Fig3Config, rep: int) -> list[tuple[float, float]]:
    """One repetition: ``(malicious fraction, corruption)`` pairs."""
    rng = SeedSequenceFactory(config.seed).numpy("fig3", rep)
    ids = IdSpaceModel.draw_unique_ids(config.num_nodes, rng)
    hop_keys = IdSpaceModel.draw_unique_ids(
        config.num_tunnels * config.tunnel_length, rng
    )
    out: list[tuple[float, float]] = []
    # One model per repetition: only the malicious flags vary across
    # the sweep, so the sorted population (and the replica_indices
    # memo keyed on it) is shared by every p — reassigning the flags
    # through sort_order is exactly what re-constructing would compute.
    model = IdSpaceModel(ids)
    for p in config.malicious_fractions:
        malicious = np.zeros(config.num_nodes, dtype=bool)
        m = round(p * config.num_nodes)
        if m:
            malicious[rng.choice(config.num_nodes, size=m, replace=False)] = True
        model.malicious = malicious[model.sort_order]
        out.append(
            (
                p,
                corruption_fraction(
                    model,
                    hop_keys,
                    config.num_tunnels,
                    config.tunnel_length,
                    config.replication_factor,
                ),
            )
        )
    return out


def run_fig3(
    config: Fig3Config = Fig3Config(), workers: int | None = None
) -> list[dict]:
    partials = run_trials(
        _fig3_trial,
        [(config, rep) for rep in range(config.num_seeds)],
        effective_workers(workers, config),
    )
    acc: dict[float, list[float]] = {}
    for partial in partials:
        for p, value in partial:
            acc.setdefault(p, []).append(value)

    rows: list[dict] = []
    for p, values in sorted(acc.items()):
        rows.append(
            {
                "figure": "fig3",
                "malicious_fraction": p,
                "scheme": f"tap-k{config.replication_factor}",
                "corrupted_tunnels": float(np.mean(values)),
                "std": float(np.std(values)),
                "expected": tunnel_corruption_prob(
                    p,
                    config.tunnel_length,
                    config.replication_factor,
                    config.num_nodes,
                ),
            }
        )
    return rows
