"""Figure 4: corruption vs replication factor (a) and tunnel length (b).

Setup (paper §7.2): p = 0.1 malicious, 10^4 nodes, 5,000 tunnels.

* (a) corruption *increases* with k — each extra replica is one more
  chance for a malicious node to learn the anchor (the
  functionality/anonymity trade-off against Figure 2);
* (b) corruption *decreases* with tunnel length l — the adversary must
  disclose every hop; the paper reports the knee at l = 5.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.idspace import IdSpaceModel
from repro.analysis.theory import tunnel_corruption_prob
from repro.experiments.config import Fig4Config
from repro.experiments.fig3_collusion import corruption_fraction
from repro.perf import effective_workers, run_trials
from repro.util.rng import SeedSequenceFactory


def _fig4a_trial(config: Fig4Config, rep: int) -> list[tuple[int, float]]:
    """One repetition of the k-sweep: ``(k, corruption)`` pairs."""
    rng = SeedSequenceFactory(config.seed).numpy("fig4a", rep)
    model = IdSpaceModel.random(
        config.num_nodes, rng, config.malicious_fraction
    )
    hop_keys = IdSpaceModel.draw_unique_ids(
        config.num_tunnels * config.tunnel_length, rng
    )
    return [
        (
            k,
            corruption_fraction(
                model, hop_keys, config.num_tunnels, config.tunnel_length, k
            ),
        )
        for k in config.replication_factors
    ]


def _fig4b_trial(config: Fig4Config, rep: int) -> list[tuple[int, float]]:
    """One repetition of the l-sweep: ``(length, corruption)`` pairs."""
    rng = SeedSequenceFactory(config.seed).numpy("fig4b", rep)
    model = IdSpaceModel.random(
        config.num_nodes, rng, config.malicious_fraction
    )
    out: list[tuple[int, float]] = []
    for length in config.tunnel_lengths:
        hop_keys = IdSpaceModel.draw_unique_ids(
            config.num_tunnels * length, rng
        )
        out.append(
            (
                length,
                corruption_fraction(
                    model, hop_keys, config.num_tunnels, length,
                    config.replication_factor,
                ),
            )
        )
    return out


def _gather(trial, config: Fig4Config, workers: int | None) -> dict[int, list[float]]:
    partials = run_trials(
        trial,
        [(config, rep) for rep in range(config.num_seeds)],
        effective_workers(workers, config),
    )
    acc: dict[int, list[float]] = {}
    for partial in partials:
        for key, value in partial:
            acc.setdefault(key, []).append(value)
    return acc


def run_fig4a(
    config: Fig4Config = Fig4Config(), workers: int | None = None
) -> list[dict]:
    """Sweep the replication factor k at fixed l."""
    acc = _gather(_fig4a_trial, config, workers)

    return [
        {
            "figure": "fig4a",
            "replication_factor": k,
            "tunnel_length": config.tunnel_length,
            "corrupted_tunnels": float(np.mean(values)),
            "std": float(np.std(values)),
            "expected": tunnel_corruption_prob(
                config.malicious_fraction,
                config.tunnel_length,
                k,
                config.num_nodes,
            ),
        }
        for k, values in sorted(acc.items())
    ]


def run_fig4b(
    config: Fig4Config = Fig4Config(), workers: int | None = None
) -> list[dict]:
    """Sweep the tunnel length l at fixed k."""
    acc = _gather(_fig4b_trial, config, workers)

    return [
        {
            "figure": "fig4b",
            "tunnel_length": length,
            "replication_factor": config.replication_factor,
            "corrupted_tunnels": float(np.mean(values)),
            "std": float(np.std(values)),
            "expected": tunnel_corruption_prob(
                config.malicious_fraction,
                length,
                config.replication_factor,
                config.num_nodes,
            ),
        }
        for length, values in sorted(acc.items())
    ]
