"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify its design knobs:

* :func:`run_tradeoff` — the k/l functionality-vs-anonymity plane:
  for each (k, l), both the tunnel failure rate at a reference failure
  fraction *and* the corruption rate at a reference malicious fraction.
  Figure 2 and Figure 4 are 1-D slices of this surface.
* :func:`run_hint_staleness` — §5's IP hints under churn: how often a
  hint is stale and what the DHT fallback costs in extra hops.
* :func:`run_scatter` — §3.5's prefix-scattered anchor selection vs
  uniform selection: probability that one physical node holds replicas
  of several hops of the same tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.idspace import IdSpaceModel, replica_table
from repro.analysis.theory import tunnel_corruption_prob, tunnel_failure_prob_tap
from repro.experiments.config import ExperimentConfig
from repro.perf import (
    base_snapshot,
    capture_obs,
    effective_workers,
    local_obs,
    merge_obs,
    run_trials,
)
from repro.perf.parallel import shared_payload
from repro.util.rng import SeedSequenceFactory


@dataclass(frozen=True)
class TradeoffConfig(ExperimentConfig):
    num_nodes: int = 10_000
    num_tunnels: int = 2_000
    failure_fraction: float = 0.3
    malicious_fraction: float = 0.1
    replication_factors: tuple[int, ...] = (1, 2, 3, 4, 5, 6)
    tunnel_lengths: tuple[int, ...] = (3, 5, 7)
    seed: int = 2004

    @classmethod
    def fast(cls) -> "TradeoffConfig":
        return cls(num_nodes=1_000, num_tunnels=500,
                   replication_factors=(1, 3, 5), tunnel_lengths=(3, 5))


def _tradeoff_trial(config: TradeoffConfig, length: int) -> list[dict]:
    """One tunnel-length column of the (k, l) plane.

    The population and failure mask replay the shared ``"tradeoff"``
    stream (identical in every trial); the hop anchors come from a
    per-length labelled stream, which is what makes the columns
    independent units of fan-out.
    """
    seeds = SeedSequenceFactory(config.seed)
    rng = seeds.numpy("tradeoff")
    model = IdSpaceModel.random(config.num_nodes, rng, config.malicious_fraction)

    n_failed = round(config.failure_fraction * config.num_nodes)
    failed_mask = np.zeros(config.num_nodes, dtype=bool)
    failed_mask[rng.choice(config.num_nodes, size=n_failed, replace=False)] = True

    hop_rng = seeds.numpy("tradeoff-hops", length)
    hop_keys = IdSpaceModel.draw_unique_ids(config.num_tunnels * length, hop_rng)

    rows: list[dict] = []
    for k in config.replication_factors:
        survivors = model.any_survivor(hop_keys, k, failed_mask)
        functional = survivors.reshape(config.num_tunnels, length).all(axis=1)
        disclosed = model.any_malicious_holder(hop_keys, k)
        corrupted = disclosed.reshape(config.num_tunnels, length).all(axis=1)
        rows.append(
            {
                "figure": "ablation-tradeoff",
                "replication_factor": k,
                "tunnel_length": length,
                "failed_tunnels": float(1.0 - functional.mean()),
                "corrupted_tunnels": float(corrupted.mean()),
                "expected_failed": tunnel_failure_prob_tap(
                    config.failure_fraction, length, k, config.num_nodes
                ),
                "expected_corrupted": tunnel_corruption_prob(
                    config.malicious_fraction, length, k, config.num_nodes
                ),
            }
        )
    return rows


def run_tradeoff(
    config: TradeoffConfig = TradeoffConfig(), workers: int | None = None
) -> list[dict]:
    """Sweep (k, l); report failure and corruption rates side by side."""
    columns = run_trials(
        _tradeoff_trial,
        [(config, length) for length in config.tunnel_lengths],
        effective_workers(workers, config),
    )
    return [row for column in columns for row in column]


@dataclass(frozen=True)
class HintStalenessConfig(ExperimentConfig):
    num_nodes: int = 300
    tunnels: int = 12
    tunnel_length: int = 3
    churn_steps: tuple[int, ...] = (0, 5, 10, 20, 40)
    seed: int = 2004

    @classmethod
    def fast(cls) -> "HintStalenessConfig":
        return cls(num_nodes=150, tunnels=6, churn_steps=(0, 5, 15))


def _hints_base_token(config: HintStalenessConfig) -> tuple:
    return ("hints-base", config.seed, config.num_nodes)


def _hints_base_build(config: HintStalenessConfig):
    from repro.core.system import TapSystem

    return TapSystem.bootstrap(config.num_nodes, seed=config.seed).snapshot()


def _hint_staleness_level(
    config: HintStalenessConfig,
    churn: int,
    metrics,
    audit: bool,
    tracer,
    event_trace,
) -> dict:
    """One churn level: forked system, hinted tunnels, churn, probe."""
    token = _hints_base_token(config)
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        snap = base_snapshot(token, lambda: _hints_base_build(config))
    system = snap.fork(
        config.seed + churn,
        metrics=metrics, event_trace=event_trace, tracer=tracer,
    )
    if audit:
        system.enable_auditing(strict=True)
    rng = system.seeds.pyrandom("hint-churn")
    tunnels = []
    for i in range(config.tunnels):
        owner = system.tap_node(system.random_node_id(("owner", i)))
        system.deploy_thas(owner, count=config.tunnel_length * 2)
        tunnels.append(
            (owner, system.form_tunnel(owner, config.tunnel_length, use_hints=True))
        )
    owners = {owner.node_id for owner, _ in tunnels}
    for _ in range(churn):
        victim = rng.choice([
            nid for nid in system.network.alive_ids if nid not in owners
        ])
        system.fail_node(victim)
        new_id = rng.getrandbits(128)
        while new_id in system.network.nodes:
            new_id = rng.getrandbits(128)
        system.join_node(new_id)

    hop_records = []
    successes = 0
    for owner, tunnel in tunnels:
        trace = system.send(owner, tunnel, 42, b"probe")
        if trace.success:
            successes += 1
        hop_records.extend(trace.records)
    total_hops = len(hop_records)
    return {
        "figure": "ablation-hints",
        "churn_events": churn,
        "hint_failure_rate": sum(r.hint_failed for r in hop_records) / total_hops,
        # timed-out probes (dead/unknown hint) are the only ones
        # charged an extra physical link in underlying_hops
        "hint_timeout_rate": sum(r.hint_timeout for r in hop_records) / total_hops,
        "via_hint_rate": sum(r.via_hint for r in hop_records) / total_hops,
        "mean_underlying_per_hop": float(
            np.mean([max(0, len(r.underlying_path) - 1) for r in hop_records])
        ),
        "tunnel_success_rate": successes / len(tunnels),
    }


def _hint_staleness_trial(
    config: HintStalenessConfig,
    churn: int,
    want_metrics: bool,
    audit: bool,
    want_tracer: bool,
    want_events: bool,
):
    metrics, tracer, event_trace = local_obs(want_metrics, want_tracer, want_events)
    row = _hint_staleness_level(config, churn, metrics, audit, tracer, event_trace)
    return row, capture_obs(metrics, tracer, event_trace)


def run_hint_staleness(
    config: HintStalenessConfig = HintStalenessConfig(),
    metrics=None,
    audit: bool = False,
    tracer=None,
    event_trace=None,
    workers: int | None = None,
) -> list[dict]:
    """Object-level: form hinted tunnels, churn, measure hint failures.

    For each churn level, a fresh TapSystem is built, hinted tunnels
    are formed, the overlay churns (fail+join with repair), and every
    tunnel is exercised.  Reported per level: fraction of hops whose
    hint failed, and mean underlying hops (the latency driver).
    ``metrics``/``audit``/``tracer``/``event_trace`` thread a
    :mod:`repro.obs` registry, post-event invariant audits, and span /
    event tracing through every system built.  ``workers`` fans the
    (independent) churn levels out over processes; rows and obs are
    identical for any worker count.
    """
    token = _hints_base_token(config)
    bases = {token: base_snapshot(token, lambda: _hints_base_build(config))}
    results = run_trials(
        _hint_staleness_trial,
        [
            (config, churn, metrics is not None, audit,
             tracer is not None, event_trace is not None)
            for churn in config.churn_steps
        ],
        effective_workers(workers, config),
        shared=bases,
    )
    merge_obs(
        [payload for _, payload in results],
        metrics=metrics, tracer=tracer, event_trace=event_trace,
    )
    return [row for row, _ in results]


@dataclass(frozen=True)
class ScatterConfig(ExperimentConfig):
    num_nodes: int = 500
    num_tunnels: int = 3_000
    tunnel_length: int = 5
    replication_factor: int = 3
    seed: int = 2004

    @classmethod
    def fast(cls) -> "ScatterConfig":
        return cls(num_tunnels=1_000)


def run_scatter(config: ScatterConfig = ScatterConfig()) -> list[dict]:
    """Prefix-scattered vs uniform hopid selection (§3.5).

    Measures the probability that a single node holds replicas of two
    or more hops of one tunnel — the event scattering minimises.  The
    effect matters on small/medium networks where replica
    neighbourhoods are wide relative to the ring.
    """
    seeds = SeedSequenceFactory(config.seed)
    rng = seeds.numpy("scatter")
    model = IdSpaceModel.random(config.num_nodes, rng)

    l, k, t = config.tunnel_length, config.replication_factor, config.num_tunnels

    def multi_hop_rate(hop_keys: np.ndarray) -> float:
        table = model.replica_indices(hop_keys, k).reshape(t, l * k)
        hits = 0
        for row in table:
            # A node appearing under two *different hops* of the tunnel:
            per_hop = row.reshape(l, k)
            seen: dict[int, int] = {}
            overlap = False
            for hop_idx in range(l):
                for node in per_hop[hop_idx]:
                    prev = seen.get(int(node))
                    if prev is not None and prev != hop_idx:
                        overlap = True
                    seen[int(node)] = hop_idx
            hits += overlap
        return hits / t

    # Uniform selection: independent uniform hopids.
    uniform_keys = IdSpaceModel.draw_unique_ids(t * l, rng)

    # Scattered selection: force distinct top-4-bit prefixes per tunnel.
    prefixes = np.empty((t, l), dtype=np.uint64)
    for i in range(t):
        prefixes[i] = rng.choice(16, size=l, replace=False).astype(np.uint64)
    low = rng.integers(0, 1 << 60, size=(t, l), dtype=np.uint64)
    scattered_keys = (prefixes << np.uint64(60)) | low

    return [
        {
            "figure": "ablation-scatter",
            "selection": "uniform",
            "multi_hop_holder_rate": multi_hop_rate(uniform_keys),
        },
        {
            "figure": "ablation-scatter",
            "selection": "scattered",
            "multi_hop_holder_rate": multi_hop_rate(scattered_keys.reshape(-1)),
        },
    ]
