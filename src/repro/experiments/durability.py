"""Durability experiment: k-replication vs (k,n) erasure coding.

The paper's availability numbers (Figure 2) assume PAST replication
repairs faster than nodes die and that stored bytes never rot.  This
runner drops both assumptions and compares the two storage backends
under one chaos plan:

* the **replicated** arm: :class:`repro.past.ReplicatedStore` with
  ``replication_factor`` full copies and eager on-failure repair —
  the paper's world, plus the satellite repair-accounting counters;
* the **erasure** arm: :class:`repro.past.ErasureStore` holding
  ``(data_shares, total_shares)`` coded shares with hash-tree
  integrity and leases, repairs deferred to a budget-bounded
  :class:`repro.past.RepairCrawler` pass per round, degraded reads
  going through :class:`repro.core.resilience.ShareHolderHealth`
  per-holder breakers.

Both arms replay the **same schedule**: node ids, object keys/values,
crash/revive victims and at-rest fault victims all come from seed
streams derived *without* a backend label, so the only difference
between the arms is the storage strategy.  Per round each arm fetches
every object and records

* ``available`` — the fetch returned *something*;
* ``clean`` — the fetch returned the originally inserted bytes
  (replication serves bit-rot silently, so ``available`` can exceed
  ``clean``; the erasure backend verifies shares against the object
  hash tree and either decodes cleanly or fails);
* ``repair_bytes`` / ``repair_objects`` — repair traffic this round
  (eager for replication, crawler-budgeted for erasure);
* ``crawler_backlog`` — keys the crawler deferred when its per-epoch
  byte budget ran out (always 0 for the replicated arm).

Rows are a pure function of the config — identical for any
``workers`` value, with or without telemetry — and
:func:`summarize_rows` distils the ``durability.*`` indicators the
SLO gate enforces.
"""

from __future__ import annotations

from repro.core.resilience import ShareGatherPolicy, ShareHolderHealth
from repro.experiments.config import DurabilityConfig
from repro.faults.injectors import StorageFaultInjector
from repro.faults.plan import FaultPlan, named_plan
from repro.past.crawler import RepairCrawler
from repro.past.erasure import ErasureStore
from repro.past.replication import ReplicatedStore
from repro.past.storage import StorageError
from repro.pastry.network import PastryNetwork
from repro.perf import capture_obs, effective_workers, local_obs, merge_obs, run_trials
from repro.obs.metrics import MetricsRegistry
from repro.util.rng import SeedSequenceFactory, derive_seed

#: the two arms, in fixed row order
BACKENDS = ("replicated", "erasure")


def _rounds(config: DurabilityConfig, plan: FaultPlan) -> int:
    return config.rounds if config.rounds is not None else plan.rounds_hint


def _build_objects(config: DurabilityConfig, seeds: SeedSequenceFactory):
    """Deterministic (key, value) corpus shared by both arms."""
    rng = seeds.pyrandom("objects")
    objects: dict[int, bytes] = {}
    while len(objects) < config.num_objects:
        key = rng.getrandbits(128)
        if key in objects:
            continue
        objects[key] = rng.getrandbits(8 * config.object_bytes).to_bytes(
            config.object_bytes, "big"
        )
    return objects


def _make_store(config: DurabilityConfig, backend: str,
                network: PastryNetwork, acct: MetricsRegistry):
    if backend == "replicated":
        store = ReplicatedStore(network, config.replication_factor,
                                metrics=acct)
        return store, None, None
    store = ErasureStore(
        network, config.data_shares, config.total_shares,
        lease_term=config.lease_term, eager_repair=False, metrics=acct,
    )
    crawler = RepairCrawler(
        store, seed=derive_seed(config.seed, "durability", "crawler"),
        budget_bytes_per_epoch=config.crawler_budget_bytes,
        renew_before=config.renew_before, metrics=acct,
    )
    health = ShareHolderHealth(ShareGatherPolicy(hedge=1))
    return store, crawler, health


def _fetch_state(store, key: int, expected: bytes, health) -> str:
    """'clean', 'corrupt', or 'unavailable' for one object probe."""
    try:
        if health is not None:
            obj = store.fetch(key, policy=health.policy, health=health)
        else:
            obj = store.fetch(key)
    except (StorageError, KeyError):
        return "unavailable"
    return "clean" if obj.value == expected else "corrupt"


def _durability_trial(
    config: DurabilityConfig,
    rep: int,
    backend: str,
    want_metrics: bool = False,
    want_events: bool = False,
):
    plan = named_plan(config.plan)
    rounds = _rounds(config, plan)
    # No backend label in any stream below: both arms replay the same
    # overlay, corpus, and fault schedule.
    seeds = SeedSequenceFactory(derive_seed(config.seed, "durability", rep))
    id_rng = seeds.pyrandom("ids")
    ids = sorted({id_rng.getrandbits(128) for _ in range(config.num_nodes)})
    network = PastryNetwork.build(ids)

    # The accounting registry always exists — rows are computed from
    # it, so they cannot depend on whether telemetry was requested.
    acct = MetricsRegistry()
    _, _, event_trace = local_obs(False, False, want_events)

    store, crawler, health = _make_store(config, backend, network, acct)
    injector = StorageFaultInjector(seeds=seeds.spawn("storage"),
                                    event_trace=event_trace, metrics=acct)
    victims_rng = seeds.pyrandom("victims")

    objects = _build_objects(config, seeds)
    for key, value in objects.items():
        store.insert(key, value)

    prefix = "past" if backend == "replicated" else "erasure"
    bytes_counter = acct.counter(f"{prefix}.repair.bytes_moved")
    objects_counter = acct.counter(f"{prefix}.repair.objects_moved")
    lost_counter = acct.counter(f"{prefix}.objects.lost")

    rows: list[dict] = []
    pending_revivals: dict[int, list[int]] = {}
    seen_bytes = seen_objects = 0
    for round_idx in range(rounds):
        # -- scheduled crash / revive events ---------------------------
        for node_id in pending_revivals.pop(round_idx, []):
            network.revive(node_id)
            store.on_revive(node_id)
        for event in plan.node_events:
            if event.round != round_idx:
                continue
            pool = sorted(network.alive_ids)
            # keep enough nodes alive to hold a full share/replica set
            count = min(event.count,
                        max(0, len(pool) - config.total_shares - 1))
            if count <= 0:
                continue
            victims = sorted(victims_rng.sample(pool, count))
            for node_id in victims:
                network.fail(node_id)
                if event.repair:
                    store.on_fail(node_id)
            if event.recover_after is not None:
                pending_revivals.setdefault(
                    round_idx + event.recover_after, []
                ).extend(victims)

        # -- at-rest storage faults ------------------------------------
        for event in plan.storage_events:
            if event.round == round_idx:
                injector.apply_event(store, event)

        # -- lease clock + background repair (erasure arm only) --------
        crawl_backlog = 0
        if crawler is not None:
            store.advance_epoch()
            crawl_backlog = crawler.run_pass().keys_deferred

        # -- probe every object ----------------------------------------
        states = {"clean": 0, "corrupt": 0, "unavailable": 0}
        for key, expected in objects.items():
            states[_fetch_state(store, key, expected, health)] += 1
        total = len(objects)
        repair_bytes = bytes_counter.value - seen_bytes
        repair_objects = objects_counter.value - seen_objects
        seen_bytes, seen_objects = bytes_counter.value, objects_counter.value
        rows.append({
            "figure": "durability",
            "rep": rep,
            "backend": backend,
            "round": round_idx,
            "alive": len(network.alive_ids),
            "available": round((states["clean"] + states["corrupt"]) / total, 6),
            "clean": round(states["clean"] / total, 6),
            "corrupt_served": states["corrupt"],
            "objects_lost": lost_counter.value,
            "repair_bytes": repair_bytes,
            "repair_objects": repair_objects,
            "crawler_backlog": crawl_backlog,
        })
        if event_trace is not None:
            event_trace.record(
                "durability.round", rep=rep, backend=backend,
                round=round_idx, clean=rows[-1]["clean"],
                repair_bytes=repair_bytes,
            )

    final = rows[-1]
    rows.append({
        "figure": "durability-final",
        "rep": rep,
        "backend": backend,
        "rounds": rounds,
        "durability": final["clean"],
        "objects_lost": lost_counter.value,
        "total_repair_bytes": bytes_counter.value,
        "max_round_repair_bytes": max(
            r["repair_bytes"] for r in rows if r["figure"] == "durability"
        ),
        "stored_bytes_per_object": (
            config.object_bytes * config.replication_factor
            if backend == "replicated"
            else ((config.object_bytes + config.data_shares - 1)
                  // config.data_shares) * config.total_shares
        ),
    })
    shipped = acct if want_metrics else None
    return rows, capture_obs(shipped, None, event_trace)


def run_durability(
    config: DurabilityConfig = DurabilityConfig(),
    workers: int | None = None,
    metrics=None,
    event_trace=None,
) -> list[dict]:
    """The durability runner; (rep, backend) trials fan out over
    ``workers``.  Rows are identical for any worker count; the
    per-trial accounting registries merge into ``metrics`` in trial
    order, so the merged telemetry is too.
    """
    want_metrics = metrics is not None
    want_events = event_trace is not None
    results = run_trials(
        _durability_trial,
        [
            (config, rep, backend, want_metrics, want_events)
            for rep in range(config.num_seeds)
            for backend in BACKENDS
        ],
        effective_workers(workers, config),
    )
    merge_obs(
        [payload for _, payload in results],
        metrics=metrics,
        event_trace=event_trace,
    )
    return [row for rows, _ in results for row in rows]


def summarize_rows(rows: list[dict]) -> dict:
    """The ``durability.*`` indicators for the run ledger / SLO gate.

    The report plane min-merges dotted summary keys across manifests,
    so every hard-gated key here is "higher is better"; the byte
    ceilings are informational unless only one manifest is present
    (the CI smoke layout).
    """
    out: dict = {}
    for backend in BACKENDS:
        per_round = [r for r in rows
                     if r.get("figure") == "durability"
                     and r["backend"] == backend]
        finals = [r for r in rows
                  if r.get("figure") == "durability-final"
                  and r["backend"] == backend]
        if not per_round:
            continue
        out[f"durability.{backend}.available_min"] = min(
            r["available"] for r in per_round
        )
        out[f"durability.{backend}.clean_min"] = min(
            r["clean"] for r in per_round
        )
        if finals:
            out[f"durability.{backend}.final_clean"] = min(
                r["durability"] for r in finals
            )
            out[f"durability.{backend}.repair_bytes_round_max"] = max(
                r["max_round_repair_bytes"] for r in finals
            )
    erasure_total = sum(
        r["total_repair_bytes"] for r in rows
        if r.get("figure") == "durability-final" and r["backend"] == "erasure"
    )
    replicated_total = sum(
        r["total_repair_bytes"] for r in rows
        if r.get("figure") == "durability-final"
        and r["backend"] == "replicated"
    )
    if replicated_total:
        out["durability.repair_bytes_ratio"] = round(
            erasure_total / replicated_total, 6
        )
    return out
