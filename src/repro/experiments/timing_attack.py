"""Extension experiment: end-to-end timing analysis vs cover traffic.

The paper's §2/§6 position: TAP does not employ cover traffic because
it is "very expensive in terms of bandwidth overhead and it does not
protect from internal attackers", while the case-2 timing attack
(coalition controls first and tail hop nodes) is "very limited".  This
experiment puts numbers on that trade-off using the event-driven
emulation:

* many overlapping tunnel transmissions with varying payload sizes;
* a coalition taps traffic at its nodes and emits correlation claims;
* conditions: no defence / cover traffic at several intensities /
  padding all payloads to a fixed cell size (what a Tor-style design
  would do instead);
* reported per condition: precision, recall, and the total bandwidth —
  the cost axis the paper's argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.timing import (
    TimingAnalysisAdversary,
    TransmissionTruth,
    evaluate_claims,
)
from repro.core.emulation import CONTROL_BITS, TapEmulation
from repro.core.system import TapSystem
from repro.simnet.topology import Topology
from repro.util.rng import SeedSequenceFactory


@dataclass(frozen=True)
class TimingAttackConfig:
    num_nodes: int = 300
    malicious_fraction: float = 0.15
    transmissions: int = 40
    tunnel_length: int = 3
    window_seconds: float = 20.0
    duration_seconds: float = 120.0
    min_size_bits: float = 250_000.0
    max_size_bits: float = 2_000_000.0
    cover_ratios: tuple[float, ...] = (0.0, 1.0, 4.0)
    #: fraction of tunnels for which the coalition controls both the
    #: first and tail hop node (worst-case placement, §6 case 2)
    targeted_fraction: float = 0.5
    seed: int = 2004

    @classmethod
    def fast(cls) -> "TimingAttackConfig":
        return cls(num_nodes=150, transmissions=20, cover_ratios=(0.0, 2.0))


def _run_condition(
    config: TimingAttackConfig,
    cover_ratio: float,
    pad_to_cell: bool,
    label: str,
) -> dict:
    seeds = SeedSequenceFactory(config.seed)
    system = TapSystem.bootstrap(config.num_nodes, seed=config.seed)
    rng = seeds.pyrandom("timing", label)

    emu = TapEmulation.from_system(
        system, topology=Topology(seed=seeds.child("topo", label))
    )

    # Prepare initiators/tunnels up front (control-plane, not timed).
    sessions = []
    for i in range(config.transmissions):
        initiator = system.tap_node(system.random_node_id(("timing-init", label, i)))
        system.deploy_thas(initiator, count=config.tunnel_length * 2)
        # §5 optimised tunnels: direct hop-to-hop sends, so the physical
        # predecessor at the first hop IS the initiator — the regime in
        # which timing analysis is strongest.
        tunnel = system.form_tunnel(initiator, config.tunnel_length, use_hints=True)
        dest_key = rng.getrandbits(128)
        size = rng.uniform(config.min_size_bits, config.max_size_bits)
        if pad_to_cell:
            size = config.max_size_bits
        start = rng.random() * config.duration_seconds
        sessions.append((initiator, tunnel, dest_key, size, start))

    # Worst-case coalition placement (§6 case 2): for a fraction of
    # tunnels the adversary controls both the first and the tail hop
    # node, on top of a uniform background sample.  Initiators stay
    # honest.
    initiator_ids = {s[0].node_id for s in sessions}
    all_ids = [n for n in system.network.alive_ids if n not in initiator_ids]
    coalition = set(
        rng.sample(all_ids, round(config.malicious_fraction * len(all_ids)))
    )
    n_targeted = round(config.targeted_fraction * len(sessions))
    for initiator, tunnel, *_ in sessions[:n_targeted]:
        first = system.network.closest_alive(tunnel.hops[0].hop_id)
        tail = system.network.closest_alive(tunnel.hops[-1].hop_id)
        coalition.update({first, tail} - initiator_ids)

    adversary = TimingAnalysisAdversary(
        coalition, resolve_destination=system.network.closest_alive
    )
    emu.taps.append(adversary.tap)
    emu.content_taps.append(adversary.content_tap)

    truths: list[TransmissionTruth] = []
    traces = []

    def launch(initiator, tunnel, dest_key, size):
        trace = emu.send_through_tunnel(
            initiator, tunnel, dest_key, b"m", size_bits=size
        )
        traces.append((initiator, dest_key, trace))

    for initiator, tunnel, dest_key, size, start in sessions:
        emu.simulator.schedule(start, launch, initiator, tunnel, dest_key, size)

    if cover_ratio > 0:
        n_cover = round(cover_ratio * config.transmissions)
        cover_rng = seeds.pyrandom("cover", label)
        # Cover sized like real traffic (same distribution + header).
        for _ in range(n_cover):
            size = cover_rng.uniform(config.min_size_bits, config.max_size_bits)
            if pad_to_cell:
                size = config.max_size_bits
            emu.inject_cover_traffic(
                cover_rng, messages=1,
                size_bits=size + CONTROL_BITS,
                over_seconds=config.duration_seconds,
            )

    emu.simulator.run()

    for initiator, dest_key, trace in traces:
        if trace.delivered:
            truths.append(
                TransmissionTruth(
                    initiator=initiator.node_id,
                    destination=trace.destination,
                    started_at=trace.started_at,
                    finished_at=trace.finished_at,
                )
            )

    score = evaluate_claims(
        adversary.claims(config.window_seconds), truths
    )
    return {
        "figure": "ext-timing",
        "condition": label,
        "cover_ratio": cover_ratio,
        "padded": pad_to_cell,
        "claims": score["claims"],
        "precision": score["precision"],
        "recall": score["recall"],
        "gbits_sent": emu.net.bits_sent / 1e9,
        "delivered": len(truths),
    }


def run_timing_attack(config: TimingAttackConfig = TimingAttackConfig()) -> list[dict]:
    rows = []
    for ratio in config.cover_ratios:
        label = f"cover-{ratio:g}x" if ratio else "no-defence"
        rows.append(_run_condition(config, ratio, pad_to_cell=False, label=label))
    rows.append(_run_condition(config, 0.0, pad_to_cell=True, label="padded-cells"))
    heaviest = max(config.cover_ratios) or 2.0
    rows.append(
        _run_condition(config, heaviest, pad_to_cell=True, label="padded+cover")
    )
    return rows
