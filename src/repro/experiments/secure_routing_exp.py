"""Extension experiment: secure routing under routing interception.

Sweeps the malicious (intercepting) fraction and reports, per forgery
strategy, what a naive client suffers (silent deception) vs what the
verified redundant lookup of :mod:`repro.extensions.secure_routing`
achieves: deceptions almost eliminated, most attacks converted into
detected failures (alarms), at a small false-alarm cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.extensions.secure_routing import RoutingInterceptor, secure_route
from repro.util.ids import random_id
from repro.util.rng import SeedSequenceFactory


@dataclass(frozen=True)
class SecureRoutingConfig:
    num_nodes: int = 500
    queries: int = 150
    malicious_fractions: tuple[float, ...] = (0.1, 0.2, 0.3)
    redundancy: int = 4
    seed: int = 2004

    @classmethod
    def fast(cls) -> "SecureRoutingConfig":
        return cls(num_nodes=300, queries=80, malicious_fractions=(0.2,))


def run_secure_routing(config: SecureRoutingConfig = SecureRoutingConfig()) -> list[dict]:
    from repro.pastry.network import PastryNetwork

    seeds = SeedSequenceFactory(config.seed)
    id_rng = seeds.pyrandom("ids")
    ids = set()
    while len(ids) < config.num_nodes:
        ids.add(random_id(id_rng))
    network = PastryNetwork.build(ids)

    rows: list[dict] = []
    for p in config.malicious_fractions:
        for forge_honest in (False, True):
            strategy = "honest-set" if forge_honest else "coalition-set"
            rng = seeds.pyrandom("sweep", p, strategy)
            coalition = set(
                rng.sample(network.alive_ids, round(p * config.num_nodes))
            )
            interceptor = RoutingInterceptor(coalition, forge_honest_set=forge_honest)

            naive_deceived = deceived = alarms = false_alarms = trials = 0
            while trials < config.queries:
                src = network.alive_ids[rng.randrange(network.size)]
                key = random_id(rng)
                truth = network.closest_alive(key)
                if interceptor.is_malicious(src) or interceptor.is_malicious(truth):
                    continue
                trials += 1

                naive = interceptor.route(network, src, key)
                naive_was_deceived = naive.destination != truth
                naive_deceived += naive_was_deceived

                secure = secure_route(
                    network, src, key, interceptor,
                    redundancy=config.redundancy,
                    rng=random.Random(key & 0xFFFFFFFF),
                )
                if secure.alarm:
                    alarms += 1
                    if not naive_was_deceived and secure.hijacked_paths == 0:
                        false_alarms += 1
                elif secure.accepted_root != truth:
                    deceived += 1

            rows.append(
                {
                    "figure": "ext-secure-routing",
                    "malicious_fraction": p,
                    "forgery": strategy,
                    "naive_deceived": naive_deceived / trials,
                    "secure_deceived": deceived / trials,
                    "secure_alarms": alarms / trials,
                    "false_alarms": false_alarms / trials,
                }
            )
    return rows
