"""Rendering and sweep utilities for experiment rows.

The experiment modules return tidy rows; this module turns them into
the tables/series the paper plots (and the benchmark harness prints),
plus CSV for external plotting.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence


def series(rows: list[dict], x: str, y: str, scheme_key: str = "scheme") -> dict[str, list[tuple]]:
    """Group rows into per-scheme (x, y) series — one per plotted line."""
    out: dict[str, list[tuple]] = {}
    for row in rows:
        name = str(row.get(scheme_key, "value"))
        out.setdefault(name, []).append((row[x], row[y]))
    for points in out.values():
        points.sort()
    return out


def render_table(
    rows: list[dict],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Fixed-width text table of the given columns (default: all keys)."""
    if not rows:
        return "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    buf = io.StringIO()
    if title:
        buf.write(title + "\n")
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    buf.write(header + "\n")
    buf.write("  ".join("-" * w for w in widths) + "\n")
    for cells in rendered:
        buf.write("  ".join(c.ljust(w) for c, w in zip(cells, widths)) + "\n")
    return buf.getvalue()


def rows_to_csv(rows: list[dict], columns: Sequence[str] | None = None) -> str:
    """Comma-separated rendering (header + rows) for plotting tools."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"


def pivot(rows: list[dict], index: str, column: str, value: str) -> list[dict]:
    """Wide-format rows: one per index value, one column per scheme."""
    table: dict[object, dict] = {}
    for row in rows:
        entry = table.setdefault(row[index], {index: row[index]})
        entry[str(row[column])] = row[value]
    return [table[k] for k in sorted(table)]


def summarize(rows: Iterable[dict], label: str = "") -> str:
    """One-line digest used in benchmark logs."""
    rows = list(rows)
    return f"{label}: {len(rows)} rows" if label else f"{len(rows)} rows"


def metrics_rows(registry) -> list[dict]:
    """Tidy per-instrument rows from a :class:`repro.obs.MetricsRegistry`.

    One row per counter/gauge/histogram with uniform columns, ready
    for :func:`render_table` / :func:`rows_to_csv` — how the CLI's
    ``--metrics-out`` surfaces per-hop latency histograms as CSV.
    """
    return registry.rows()


def render_metrics(registry, title: str = "metrics") -> str:
    """Fixed-width table of every instrument in the registry."""
    return render_table(metrics_rows(registry), title=title)
