"""Scale experiment: fig6-class latency at N=10^5 on the packet plane.

The paper's figure 6 compares end-to-end transfer latency of direct
Pastry routes against TAP tunnels of length 3 and 5, modelling each
underlying link as a U[10, 230] ms draw.  The object-engine runner
(:mod:`repro.experiments.fig6_latency`) tops out around 10^4 nodes
because every route is a scalar hop loop; this runner replays the same
methodology at 100k nodes on the vectorised packet plane
(:mod:`repro.perf.packet`): all transfers of an arm advance as one
batch, tunnels route all legs batched with additive stitched hop
counts, and link latencies are one flat Generator draw folded per
packet with ``np.add.reduceat``.

Per trial (one per ``rep``):

1. restore a private overlay from the shared base
   :class:`~repro.perf.compact.CompactSnapshot`, then apply
   ``churn_rounds`` rounds of fail/join churn so the measured ring is
   not pristine;
2. sample ``num_transfers`` sources and destination keys, route the
   direct arm with :func:`~repro.perf.packet.route_many`, and draw its
   per-hop latencies;
3. per tunnel length ``L``: sample (num_transfers, L) relay keys,
   build every tunnel with :func:`~repro.perf.packet.route_tunnels`,
   and draw latencies over the stitched hop totals;
4. cross-check ``verify_routes`` packets hop-for-hop against the
   scalar ``CompactOverlay.route``.

Each arm emits one row with completion fraction, mean hops, latency
quantiles, and — for tunnel arms — the hop stretch over the direct arm
and the fig6 trend ratio ``mean_tunnel_latency / (mean_direct_latency
× hop_stretch)``, which sits near 1 because link draws are i.i.d.: the
assertion pinned by the bench suite and the scale tests.

Determinism contract: rows are a pure function of the config —
identical for any ``workers`` value and with telemetry on or off
(sampling draws only from a dedicated ``scale-telemetry`` stream).
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.config import ScaleLatencyConfig
from repro.experiments.scale_churn import _fresh_ids, _observe_samples
from repro.perf import (
    base_snapshot,
    capture_obs,
    collect_volatile,
    effective_workers,
    local_obs,
    merge_obs,
    run_trials,
    share_base,
    shared_payload,
)
from repro.perf.compact import CompactOverlay
from repro.perf.packet import latency_sums
from repro.util.rng import SeedSequenceFactory

_U64_MAX = np.iinfo(np.uint64).max


def _base_token(config: ScaleLatencyConfig) -> tuple:
    return ("scale-latency-base", config.seed, config.num_nodes)


def _base_build(config: ScaleLatencyConfig):
    return CompactOverlay.random(config.num_nodes, seed=config.seed).snapshot()


def _quantiles(values: np.ndarray) -> dict:
    if len(values) == 0:
        return {"p10_s": 0.0, "p50_s": 0.0, "p90_s": 0.0, "mean_s": 0.0}
    p10, p50, p90 = np.quantile(values, (0.10, 0.50, 0.90))
    return {
        "p10_s": float(p10),
        "p50_s": float(p50),
        "p90_s": float(p90),
        "mean_s": float(values.mean()),
    }


def _latency_trial(
    config: ScaleLatencyConfig,
    rep: int,
    want_metrics: bool = False,
    want_events: bool = False,
):
    token = _base_token(config)
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        snap = base_snapshot(token, lambda: _base_build(config))
    start = time.perf_counter()
    overlay = snap.restore()
    volatile = {
        "rep": rep,
        "restore_seconds": round(time.perf_counter() - start, 6),
        "attach_seconds": getattr(snap, "attach_seconds", None),
    }
    rng = SeedSequenceFactory(config.seed).numpy("scale-latency", rep)

    metrics, _, event_trace = local_obs(want_metrics, False, want_events)
    tel_rng = None
    if metrics is not None or event_trace is not None:
        tel_rng = SeedSequenceFactory(config.seed).numpy("scale-telemetry", rep)
    if metrics is not None:
        overlay.instrument(metrics)

    for _ in range(config.churn_rounds):
        alive_idx = overlay.alive_positions()
        fails = int(round(config.fail_fraction * len(alive_idx)))
        if fails:
            overlay.fail_positions(
                rng.choice(alive_idx, size=fails, replace=False)
            )
        joins = int(round(config.join_fraction * config.num_nodes))
        if joins:
            overlay.join(_fresh_ids(overlay, rng, joins))

    num = config.num_transfers
    alive_idx = overlay.alive_positions()
    src = rng.choice(alive_idx, size=num)
    key_hi = rng.integers(0, _U64_MAX, size=num, dtype=np.uint64)
    key_lo = rng.integers(0, _U64_MAX, size=num, dtype=np.uint64)

    direct = overlay.route_many(src, key_hi, key_lo,
                                chunk_size=config.chunk_size)
    direct_lat = latency_sums(
        rng, direct.hops, config.min_latency_s, config.max_latency_s,
        chunk_size=config.chunk_size,
    )
    ok = direct.success
    mean_direct_hops = float(direct.hops[ok].mean()) if ok.any() else 0.0
    mean_direct_lat = float(direct_lat[ok].mean()) if ok.any() else 0.0

    rows: list[dict] = [{
        "figure": "scale-latency",
        "rep": rep,
        "arm": "direct",
        "tunnel_length": 0,
        "transfers": num,
        "completion": float(ok.mean()),
        "mean_hops": mean_direct_hops,
        **_quantiles(direct_lat[ok]),
    }]

    tunnel_samples: list[np.ndarray] = []
    for length in config.tunnel_lengths:
        hop_hi = rng.integers(0, _U64_MAX, size=(num, length), dtype=np.uint64)
        hop_lo = rng.integers(0, _U64_MAX, size=(num, length), dtype=np.uint64)
        tunnels = overlay.route_tunnels(src, hop_hi, hop_lo, key_hi, key_lo,
                                        chunk_size=config.chunk_size)
        lat = latency_sums(
            rng, tunnels.hops, config.min_latency_s, config.max_latency_s,
            chunk_size=config.chunk_size,
        )
        tok = tunnels.success
        mean_hops = float(tunnels.hops[tok].mean()) if tok.any() else 0.0
        mean_lat = float(lat[tok].mean()) if tok.any() else 0.0
        hop_stretch = mean_hops / mean_direct_hops if mean_direct_hops else 0.0
        trend = (
            mean_lat / (mean_direct_lat * hop_stretch)
            if mean_direct_lat and hop_stretch else 0.0
        )
        rows.append({
            "figure": "scale-latency",
            "rep": rep,
            "arm": f"tunnel-l{length}",
            "tunnel_length": length,
            "transfers": num,
            "completion": float(tok.mean()),
            "mean_hops": mean_hops,
            **_quantiles(lat[tok]),
            "hop_stretch": hop_stretch,
            "trend_ratio": trend,
        })
        tunnel_samples.append(lat[tok])

    agree = 0
    checks = min(config.verify_routes, num)
    for i in range(checks):
        src_id = (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]])
        key = (int(key_hi[i]) << 64) | int(key_lo[i])
        ref = overlay.route(src_id, key)
        if direct.path(i) == ref.path and bool(direct.success[i]) == ref.success:
            agree += 1
    if checks:
        rows.append({
            "figure": "scale-latency-verify",
            "rep": rep,
            "routes": checks,
            "agree": agree,
        })

    if metrics is not None:
        metrics.counter("scale_latency.transfers").inc(num * (1 + len(config.tunnel_lengths)))
        metrics.gauge("scale_latency.direct_completion").set(float(ok.mean()))
        _observe_samples(
            metrics.histogram("scale_latency.direct_s"),
            direct_lat[ok], tel_rng, config.telemetry_latency_samples,
        )
        for length, sample in zip(config.tunnel_lengths, tunnel_samples):
            _observe_samples(
                metrics.histogram(f"scale_latency.tunnel_l{length}_s"),
                sample, tel_rng, config.telemetry_latency_samples,
            )
    if event_trace is not None:
        for row in rows:
            if row["figure"] == "scale-latency":
                event_trace.record(
                    "scale_latency.arm", rep=rep, arm=row["arm"],
                    completion=round(row["completion"], 6),
                    mean_hops=round(row["mean_hops"], 6),
                    p50_s=round(row["p50_s"], 6),
                )
    return rows, capture_obs(metrics, None, event_trace, volatile=volatile)


def run_scale_latency(
    config: ScaleLatencyConfig = ScaleLatencyConfig(),
    workers: int | None = None,
    metrics=None,
    event_trace=None,
    volatile_out: dict | None = None,
) -> list[dict]:
    """The scale-latency runner; trials fan out over ``workers``.

    Same sharding contract as every runner: the base overlay snapshot
    ships to workers once via the pool initializer (as a shared-memory
    segment when ``config.use_shared_memory``), per-rep seed streams
    make rows identical for any ``workers`` value, and telemetry
    merges in trial order.  ``volatile_out`` receives per-trial
    restore/attach timings for the manifest's volatile section.
    """
    want_metrics = metrics is not None
    want_events = event_trace is not None
    token = _base_token(config)
    bases = {token: base_snapshot(token, lambda: _base_build(config))}
    published = []
    if config.use_shared_memory:
        bases, published = share_base(bases)
    try:
        results = run_trials(
            _latency_trial,
            [
                (config, rep, want_metrics, want_events)
                for rep in range(config.num_seeds)
            ],
            effective_workers(workers, config),
            shared=bases,
        )
    finally:
        for segment in published:
            segment.unlink()
    payloads = [payload for _, payload in results]
    merge_obs(payloads, metrics=metrics, event_trace=event_trace)
    if volatile_out is not None:
        volatile_out["trials"] = collect_volatile(payloads)
        if published:
            volatile_out["shared_memory"] = {
                "segments": len(published),
                "segment_nbytes": sum(s.nbytes for s in published),
            }
    return [row for rows, _ in results for row in rows]


def summarize_rows(rows: list[dict], config=None) -> dict:
    """Headline indicators from scale-latency rows (for the run ledger
    and the ``scale_latency.*`` SLOs — keys are contract).  With a
    ``config`` at N >= 10^6 every indicator is mirrored under
    ``scale_1m.`` for the million-node SLO gate."""
    arms = [r for r in rows if r.get("figure") == "scale-latency"]
    verify = [r for r in rows if r.get("figure") == "scale-latency-verify"]
    tunnels = [r for r in arms if r["tunnel_length"]]
    out: dict = {}
    if arms:
        out["scale_latency.route_completion"] = min(
            r["completion"] for r in arms
        )
    if tunnels:
        out["scale_latency.median_tunnel_latency_s"] = max(
            r["p50_s"] for r in tunnels
        )
        out["scale_latency.hop_stretch"] = max(r["hop_stretch"] for r in tunnels)
        out["scale_latency.trend_ratio"] = sum(
            r["trend_ratio"] for r in tunnels
        ) / len(tunnels)
    if verify:
        routes = sum(r["routes"] for r in verify)
        out["scale_latency.route_agreement"] = (
            sum(r["agree"] for r in verify) / routes if routes else 1.0
        )
    if config is not None and getattr(config, "num_nodes", 0) >= 1_000_000:
        for key in list(out):
            out[key.replace("scale_latency.", "scale_1m.", 1)] = out[key]
    return out
