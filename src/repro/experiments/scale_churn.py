"""Scale experiment: replica-set survival under churn at N=10^5.

The paper's availability statements (figure 2 and the churn sweep of
figure 5) are about which k nodes are closest to which keys; nothing in
them needs per-node objects.  This runner replays that methodology on
the compact array-backed engine (:mod:`repro.perf.compact`) at 100k
nodes — the ROADMAP's production-scale target — with the same
determinism contract as every other runner: rows are a pure function of
the config, identical for any ``workers`` value.

Per trial (one per ``rep``):

1. restore a private overlay from the shared base
   :class:`~repro.perf.compact.CompactSnapshot` (shipped to workers
   once via the ``run_trials(shared=...)`` pool initializer);
2. sample ``num_anchors`` keys and record their original replica sets
   *by id content* (robust across joins, which shift array positions);
3. per churn round: fail ``fail_fraction`` of the alive set, admit
   ``join_fraction * num_nodes`` fresh joiners, then measure the
   fraction of anchors with a surviving original replica and the mean
   overlap between current and original replica sets;
4. sweep *every* anchor key through the vectorised packet plane
   (:meth:`CompactOverlay.route_many`) — completion, root-hit fraction
   and mean hops over the full batch, not a sample;
5. finally, spot-check ``spot_check_routes`` packet-level routes: the
   materialisation bridge restores an object-engine network from the
   churned compact state and every route must agree hop-for-hop with
   the batched router and terminate at the true root.

Telemetry (opt-in, sampled): pass a
:class:`~repro.obs.MetricsRegistry` / :class:`~repro.obs.EventTrace`
and the trial additionally maintains ``compact.*`` membership counters
(via :meth:`CompactOverlay.instrument`), per-round churn counters and
alive-fraction gauges, and *seeded-sample* histograms — anchor-overlap
values and route hop counts drawn on a dedicated
``derive_seed(seed, "scale-telemetry", rep)`` stream.  Because the
sampling never touches the trial's own stream, rows (and their digest)
are identical with telemetry on or off, and worker-local registries
merge in trial order, so serial == parallel holds for the telemetry
too.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.config import ScaleChurnConfig
from repro.perf import (
    base_snapshot,
    capture_obs,
    collect_volatile,
    effective_workers,
    local_obs,
    merge_obs,
    run_trials,
    share_base,
    shared_payload,
)
from repro.perf.compact import CompactOverlay
from repro.util.rng import SeedSequenceFactory

_U64_MAX = np.iinfo(np.uint64).max


def _base_token(config: ScaleChurnConfig) -> tuple:
    return ("scale-churn-base", config.seed, config.num_nodes)


def _base_build(config: ScaleChurnConfig):
    return CompactOverlay.random(config.num_nodes, seed=config.seed).snapshot()


def _fresh_ids(overlay: CompactOverlay, rng: np.random.Generator, count: int) -> list[int]:
    """``count`` uniform ids absent from the overlay (dup redraw)."""
    out: list[int] = []
    seen: set[int] = set()
    while len(out) < count:
        need = count - len(out)
        hi = rng.integers(0, _U64_MAX, size=need, dtype=np.uint64)
        lo = rng.integers(0, _U64_MAX, size=need, dtype=np.uint64)
        for h, l in zip(hi.tolist(), lo.tolist()):
            value = (h << 64) | l
            if value in seen or value in overlay:
                continue
            seen.add(value)
            out.append(value)
    return out


def _observe_samples(histogram, values: np.ndarray, rng, budget: int) -> None:
    """Fold a seeded sample of ``values`` into ``histogram``.

    Sample positions come from the telemetry stream, sorted so the
    fold order (and therefore the retained-sample layout) is a pure
    function of the seed.
    """
    n = len(values)
    if n > budget:
        picks = np.sort(rng.choice(n, size=budget, replace=False))
        values = values[picks]
    histogram.observe_many(values.tolist())


def _churn_trial(
    config: ScaleChurnConfig,
    rep: int,
    want_metrics: bool = False,
    want_events: bool = False,
):
    token = _base_token(config)
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        snap = base_snapshot(token, lambda: _base_build(config))
    # Wall-clock facts about how the base reached this trial — shipped
    # back through the volatile channel, never into rows.
    start = time.perf_counter()
    overlay = snap.restore()
    volatile = {
        "rep": rep,
        "restore_seconds": round(time.perf_counter() - start, 6),
        # the lazy shared-segment map cost in this worker (None when
        # the base arrived as a plain array pickle)
        "attach_seconds": getattr(snap, "attach_seconds", None),
    }
    rng = SeedSequenceFactory(config.seed).numpy("scale-churn", rep)
    k = config.replication_factor

    # Trial-local obs; the telemetry stream is derived under its own
    # label so enabling it cannot perturb the trial's randomness.
    metrics, _, event_trace = local_obs(want_metrics, False, want_events)
    tel_rng = None
    if metrics is not None or event_trace is not None:
        tel_rng = SeedSequenceFactory(config.seed).numpy("scale-telemetry", rep)
    if metrics is not None:
        overlay.instrument(metrics)

    key_hi = rng.integers(0, _U64_MAX, size=config.num_anchors, dtype=np.uint64)
    key_lo = rng.integers(0, _U64_MAX, size=config.num_anchors, dtype=np.uint64)
    original = overlay.replica_positions(key_hi, key_lo, k)
    orig_hi = overlay.hi[original].copy()
    orig_lo = overlay.lo[original].copy()

    rows: list[dict] = []
    for round_idx in range(1, config.churn_rounds + 1):
        alive_idx = overlay.alive_positions()
        fails = int(round(config.fail_fraction * len(alive_idx)))
        if fails:
            overlay.fail_positions(
                rng.choice(alive_idx, size=fails, replace=False)
            )
        joins = int(round(config.join_fraction * config.num_nodes))
        if joins:
            overlay.join(_fresh_ids(overlay, rng, joins))

        survived = overlay.alive_mask(orig_hi, orig_lo).any(axis=1)
        current = overlay.replica_positions(key_hi, key_lo, k)
        cur_hi = overlay.hi[current]
        cur_lo = overlay.lo[current]
        same = (
            (cur_hi[:, :, None] == orig_hi[:, None, :])
            & (cur_lo[:, :, None] == orig_lo[:, None, :])
        )
        overlap = same.any(axis=2).sum(axis=1) / k
        survivor_fraction = float(survived.mean())
        replica_overlap = float(overlap.mean())
        rows.append({
            "figure": "scale-churn",
            "rep": rep,
            "round": round_idx,
            "alive": overlay.num_alive,
            "survivor_fraction": survivor_fraction,
            "replica_overlap": replica_overlap,
        })
        if metrics is not None:
            metrics.counter("scale.churn.rounds").inc()
            metrics.counter("scale.churn.failed_nodes").inc(fails)
            metrics.counter("scale.churn.joined_nodes").inc(joins)
            metrics.gauge("scale.alive_fraction").set(
                overlay.num_alive / config.num_nodes
            )
            metrics.gauge("scale.survivor_fraction").set(survivor_fraction)
            _observe_samples(
                metrics.histogram("scale.replica.overlap"),
                overlap, tel_rng, config.telemetry_anchor_samples,
            )
        if event_trace is not None:
            event_trace.record(
                "scale.round", rep=rep, round=round_idx,
                alive=overlay.num_alive,
                survivor_fraction=round(survivor_fraction, 6),
                replica_overlap=round(replica_overlap, 6),
            )

    if metrics is not None and config.telemetry_route_samples:
        # Seeded-sample route-hop histogram on the churned overlay:
        # sources are the alive owners of fresh telemetry-stream
        # probes, routed as one batch — a pure read of compact state.
        samples = config.telemetry_route_samples
        tkey_hi = tel_rng.integers(0, _U64_MAX, size=samples, dtype=np.uint64)
        tkey_lo = tel_rng.integers(0, _U64_MAX, size=samples, dtype=np.uint64)
        probe_hi = tel_rng.integers(0, _U64_MAX, size=samples, dtype=np.uint64)
        probe_lo = tel_rng.integers(0, _U64_MAX, size=samples, dtype=np.uint64)
        tsrc = overlay.replica_positions(probe_hi, probe_lo, 1)[:, 0]
        batch = overlay.route_many(tsrc, tkey_hi, tkey_lo,
                                   chunk_size=config.chunk_size)
        metrics.histogram("scale.route.hops").observe_many(batch.hops.tolist())

    # Full batched route sweep over the churned ring: every anchor key
    # routed at once on the packet plane; each packet must settle on
    # the key's true root (its k=1 replica position).
    alive_idx = overlay.alive_positions()
    sweep_src = rng.choice(alive_idx, size=config.num_anchors)
    sweep = overlay.route_many(sweep_src, key_hi, key_lo,
                               chunk_size=config.chunk_size)
    roots = overlay.replica_positions(key_hi, key_lo, 1)[:, 0]
    rows.append({
        "figure": "scale-churn-sweep",
        "rep": rep,
        "routes": config.num_anchors,
        "completion": float(sweep.success.mean()),
        "root_hit_fraction": float(
            ((sweep.dest_pos == roots) & sweep.success).mean()
        ),
        "mean_hops": float(sweep.hops.mean()),
    })

    if config.scalar_verify_routes:
        # Sampled scalar verification: re-route the first few sweep
        # packets one at a time through ``CompactOverlay.route`` —
        # the million-node cross-check, where the materialisation
        # bridge (``spot_check_routes``) is out of reach.
        checks = min(config.scalar_verify_routes, config.num_anchors)
        agree = 0
        for i in range(checks):
            src_id = (
                (int(overlay.hi[sweep_src[i]]) << 64)
                | int(overlay.lo[sweep_src[i]])
            )
            key = (int(key_hi[i]) << 64) | int(key_lo[i])
            ref = overlay.route(src_id, key)
            if (
                sweep.path(i) == ref.path
                and bool(sweep.success[i]) == ref.success
                and int(sweep.hops[i]) == ref.hops
            ):
                agree += 1
        rows.append({
            "figure": "scale-churn-verify",
            "rep": rep,
            "routes": checks,
            "agree": agree,
        })

    if config.spot_check_routes:
        # Bridge verification stays sampled (the materialised network
        # routes one packet at a time), but the compact side of the
        # comparison now comes from a single route_many batch.
        network = overlay.to_network_snapshot().restore()
        alive = overlay.alive_ids()
        src_picks = rng.integers(0, len(alive), size=config.spot_check_routes)
        spot_ids = [alive[int(p)] for p in src_picks]
        spot = overlay.route_many(
            overlay.positions_of(spot_ids),
            key_hi[: config.spot_check_routes],
            key_lo[: config.spot_check_routes],
        )
        agree = 0
        hops = 0
        for i in range(config.spot_check_routes):
            key = (int(key_hi[i]) << 64) | int(key_lo[i])
            bridged = network.route(spot_ids[i], key)
            hops += bridged.hops
            if (
                bridged.success
                and bridged.path == spot.path(i)
                and bridged.destination == overlay.closest_alive(key)
            ):
                agree += 1
        rows.append({
            "figure": "scale-churn-spot",
            "rep": rep,
            "routes": config.spot_check_routes,
            "agree": agree,
            "mean_hops": hops / config.spot_check_routes,
        })
    return rows, capture_obs(metrics, None, event_trace, volatile=volatile)


def run_scale_churn(
    config: ScaleChurnConfig = ScaleChurnConfig(),
    workers: int | None = None,
    metrics=None,
    event_trace=None,
    volatile_out: dict | None = None,
) -> list[dict]:
    """The scale-churn runner; trials fan out over ``workers``.

    The base overlay is built once, snapshotted, and shipped to every
    worker through the pool initializer — workers restore from arrays
    (milliseconds at 100k) instead of re-bootstrapping.  With
    ``config.use_shared_memory`` the snapshot travels as a named
    shared-memory segment instead (metadata-only pickle, pages mapped
    on first touch) — at 10^6 nodes that turns a 17 MB per-worker copy
    into a shared mapping.  Pass a ``metrics`` registry /
    ``event_trace`` to collect the sampled telemetry described in the
    module docstring; worker-local copies are merged back in trial
    order, so the merged state is identical for any ``workers`` value.
    ``volatile_out`` (a dict) receives machine-dependent timings —
    per-trial restore and shared-segment attach cost — for the run
    manifest's volatile section.
    """
    want_metrics = metrics is not None
    want_events = event_trace is not None
    token = _base_token(config)
    bases = {token: base_snapshot(token, lambda: _base_build(config))}
    published = []
    if config.use_shared_memory:
        bases, published = share_base(bases)
    try:
        results = run_trials(
            _churn_trial,
            [
                (config, rep, want_metrics, want_events)
                for rep in range(config.num_seeds)
            ],
            effective_workers(workers, config),
            shared=bases,
        )
    finally:
        for segment in published:
            segment.unlink()
    payloads = [payload for _, payload in results]
    merge_obs(payloads, metrics=metrics, event_trace=event_trace)
    if volatile_out is not None:
        volatile_out["trials"] = collect_volatile(payloads)
        if published:
            volatile_out["shared_memory"] = {
                "segments": len(published),
                "segment_nbytes": sum(s.nbytes for s in published),
            }
    return [row for rows, _ in results for row in rows]


def summarize_rows(rows: list[dict], config=None) -> dict:
    """Headline indicators from scale-churn rows (for the run ledger).

    Also the source of the SLO gate's ``scale.*`` indicators, so the
    keys here are contract, not presentation.  When the (optional)
    ``config`` says the run was at N >= 10^6, every indicator is also
    emitted under a ``scale_1m.`` prefix so ``slo.toml`` can gate the
    million-node operating point separately.
    """
    churn = [r for r in rows if r.get("figure") == "scale-churn"]
    sweep = [r for r in rows if r.get("figure") == "scale-churn-sweep"]
    spot = [r for r in rows if r.get("figure") == "scale-churn-spot"]
    verify = [r for r in rows if r.get("figure") == "scale-churn-verify"]
    out: dict = {}
    if churn:
        final_round = max(r["round"] for r in churn)
        finals = [r for r in churn if r["round"] == final_round]
        out["scale.survivor_fraction"] = min(
            r["survivor_fraction"] for r in churn
        )
        out["scale.replica_overlap"] = min(r["replica_overlap"] for r in churn)
        out["scale.final_replica_overlap"] = sum(
            r["replica_overlap"] for r in finals
        ) / len(finals)
    if sweep:
        out["scale.sweep_completion"] = min(r["completion"] for r in sweep)
        out["scale.sweep_root_hit"] = min(
            r["root_hit_fraction"] for r in sweep
        )
        out["scale.sweep_mean_hops"] = sum(
            r["mean_hops"] for r in sweep
        ) / len(sweep)
    if spot:
        routes = sum(r["routes"] for r in spot)
        out["scale.route_agreement"] = (
            sum(r["agree"] for r in spot) / routes if routes else 1.0
        )
    if verify:
        routes = sum(r["routes"] for r in verify)
        out["scale.scalar_agreement"] = (
            sum(r["agree"] for r in verify) / routes if routes else 1.0
        )
    if config is not None and getattr(config, "num_nodes", 0) >= 1_000_000:
        for key in list(out):
            out[key.replace("scale.", "scale_1m.", 1)] = out[key]
    return out
