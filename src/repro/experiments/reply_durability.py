"""Extension experiment: reply-path durability (the §1 email claim).

Send anonymous mails, churn the overlay (nodes leave, replication
repairs), then reply to everything.  TAP reply tunnels resolve hop ids
against the *current* overlay, so they survive as long as replica
repair kept the anchors alive; remailer-style fixed return paths die
with their recorded relays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.theory import tunnel_failure_prob_current
from repro.core.system import TapSystem
from repro.extensions.anonmail import AnonymousMail, FixedReturnPath
from repro.perf import base_snapshot
from repro.util.rng import SeedSequenceFactory


@dataclass(frozen=True)
class ReplyDurabilityConfig:
    num_nodes: int = 300
    mails: int = 10
    tunnel_length: int = 3
    churn_fractions: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5)
    seed: int = 2004

    @classmethod
    def fast(cls) -> "ReplyDurabilityConfig":
        return cls(num_nodes=200, mails=6, churn_fractions=(0.0, 0.3))


def run_reply_durability(
    config: ReplyDurabilityConfig = ReplyDurabilityConfig(),
) -> list[dict]:
    seeds = SeedSequenceFactory(config.seed)
    rows: list[dict] = []

    # One base overlay for the whole sweep; each churn level forks it
    # with its own behavioural seed instead of re-bootstrapping.
    base = base_snapshot(
        ("reply-base", config.seed, config.num_nodes),
        lambda: TapSystem.bootstrap(config.num_nodes, seed=config.seed).snapshot(),
    )

    for churn in config.churn_fractions:
        system = base.fork(config.seed + round(churn * 100))
        mail = AnonymousMail(system)
        rng = seeds.pyrandom("durability", churn)

        # Send phase: TAP mails plus recorded fixed return paths over
        # the same relay population.
        sent = []
        protected = set()
        for i in range(config.mails):
            alice = system.tap_node(system.random_node_id(("mail-from", churn, i)))
            bob = system.random_node_id(("mail-to", churn, i))
            protected.update({alice.node_id, bob})
            system.deploy_thas(alice, count=config.tunnel_length * 2)
            fwd = system.form_tunnel(alice, config.tunnel_length)
            rpl = system.form_reply_tunnel(alice, config.tunnel_length)
            handle = mail.send(alice, bob, f"mail-{i}".encode(), fwd, rpl)
            assert handle.delivered
            fixed = FixedReturnPath.record(
                [n for n in system.network.alive_ids if n not in protected],
                config.tunnel_length,
                rng,
            )
            sent.append((alice, bob, handle, fixed))

        # Churn phase: a fraction of (unprotected) nodes leaves, with
        # replica repair running — ordinary overlay life, not a flash
        # crowd of simultaneous failures.
        candidates = [n for n in system.network.alive_ids if n not in protected]
        for victim in rng.sample(candidates, round(churn * len(candidates))):
            system.fail_node(victim)

        # Reply phase.
        tap_ok = fixed_ok = 0
        for alice, bob, handle, fixed in sent:
            envelope = next(
                e for e in mail.inbox(bob)
                if e.envelope_id == handle.envelope_id
            )
            if mail.reply(bob, envelope, b"re:" + envelope.body).success:
                tap_ok += 1
            if fixed.reply(alice.node_id, b"re", system.network.is_alive):
                fixed_ok += 1

        rows.append(
            {
                "figure": "ext-reply-durability",
                "churn_fraction": churn,
                "tap_reply_success": tap_ok / config.mails,
                "fixed_reply_success": fixed_ok / config.mails,
                "fixed_expected": 1.0
                - tunnel_failure_prob_current(churn, config.tunnel_length),
            }
        )
    return rows
