"""Experiment harness: one module per figure of the paper.

Every module exposes ``run_figN(config) -> list[dict]`` returning tidy
rows (one dict per plotted point, including the matching closed-form
expectation where one exists) plus a module-level default config at
paper scale and a ``fast()`` config for CI-sized runs.  The rows are
rendered into the paper's series by :mod:`repro.experiments.runner`.
"""

from repro.experiments.config import (
    ExperimentConfig,
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
)
from repro.experiments.fig2_failures import run_fig2
from repro.experiments.fig3_collusion import run_fig3
from repro.experiments.fig4_params import run_fig4a, run_fig4b
from repro.experiments.fig5_churn import run_fig5
from repro.experiments.fig6_latency import run_fig6
from repro.experiments.ablation import (
    HintStalenessConfig,
    ScatterConfig,
    TradeoffConfig,
    run_hint_staleness,
    run_scatter,
    run_tradeoff,
)
from repro.experiments.timing_attack import TimingAttackConfig, run_timing_attack
from repro.experiments.secure_routing_exp import (
    SecureRoutingConfig,
    run_secure_routing,
)
from repro.experiments.session_survival import (
    SessionSurvivalConfig,
    run_session_survival,
)
from repro.experiments.anonymity_comparison import (
    ComparisonConfig,
    run_anonymity_comparison,
)
from repro.experiments.reply_durability import (
    ReplyDurabilityConfig,
    run_reply_durability,
)
from repro.experiments.scale_churn import ScaleChurnConfig, run_scale_churn
from repro.experiments.scale_latency import ScaleLatencyConfig, run_scale_latency
from repro.experiments.config import DurabilityConfig
from repro.experiments.durability import run_durability
from repro.experiments.runner import (
    metrics_rows,
    render_metrics,
    render_table,
    rows_to_csv,
    series,
)

__all__ = [
    "ExperimentConfig",
    "Fig2Config",
    "Fig3Config",
    "Fig4Config",
    "Fig5Config",
    "Fig6Config",
    "run_fig2",
    "run_fig3",
    "run_fig4a",
    "run_fig4b",
    "run_fig5",
    "run_fig6",
    "TradeoffConfig",
    "HintStalenessConfig",
    "ScatterConfig",
    "run_tradeoff",
    "run_hint_staleness",
    "run_scatter",
    "TimingAttackConfig",
    "run_timing_attack",
    "SecureRoutingConfig",
    "run_secure_routing",
    "SessionSurvivalConfig",
    "run_session_survival",
    "ComparisonConfig",
    "run_anonymity_comparison",
    "ReplyDurabilityConfig",
    "run_reply_durability",
    "ScaleChurnConfig",
    "run_scale_churn",
    "ScaleLatencyConfig",
    "run_scale_latency",
    "DurabilityConfig",
    "run_durability",
    "metrics_rows",
    "render_metrics",
    "render_table",
    "rows_to_csv",
    "series",
]
