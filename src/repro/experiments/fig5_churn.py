"""Figure 5: corruption over time under churn, refreshed vs unrefreshed.

Setup (paper §7.2): k = 3, p = 0.1 held constant; per time unit 100
benign nodes leave and 100 fresh benign nodes join.  Malicious nodes
never leave and inherit replicas vacated by departures, so their THA
knowledge is *monotone*:

* ``unrefreshed`` — the original 5,000 tunnels are kept; corruption
  accumulates (every unit a few more anchors fall into malicious
  replica sets, permanently);
* ``refreshed`` — 5,000 *new* tunnels (fresh anchors) replace the old
  ones each unit; only current replica sets matter, so the corruption
  rate stays at the static Figure-3 level.

Knowledge bookkeeping: after each churn batch the replica set of every
anchor is recomputed on the current population; an anchor whose set
now contains a malicious node has been handed a replica (the repair
traffic) and is disclosed forever.  This is exactly the aggregate
behaviour of :meth:`repro.past.ReplicatedStore.on_fail`/``on_join``,
which the tests cross-validate at small scale.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.idspace import IdSpaceModel
from repro.analysis.theory import tunnel_corruption_prob
from repro.experiments.config import Fig5Config
from repro.perf import effective_workers, run_trials
from repro.util.rng import SeedSequenceFactory


def _corrupted_fraction(known_hops: np.ndarray, num_tunnels: int, length: int) -> float:
    return float(known_hops.reshape(num_tunnels, length).all(axis=1).mean())


def _fig5_trial(config: Fig5Config, rep: int) -> list[tuple[tuple[int, str], float]]:
    """One churn timeline: ``((time, scheme), corruption)`` points."""
    total_hops = config.num_tunnels * config.tunnel_length
    rng = SeedSequenceFactory(config.seed).numpy("fig5", rep)
    model = IdSpaceModel.random(
        config.num_nodes, rng, config.malicious_fraction
    )
    static_keys = IdSpaceModel.draw_unique_ids(total_hops, rng)
    known = model.any_malicious_holder(static_keys, config.replication_factor)

    out: list[tuple[tuple[int, str], float]] = []
    start = _corrupted_fraction(known, config.num_tunnels, config.tunnel_length)
    out.append(((0, "unrefreshed"), start))
    out.append(((0, "refreshed"), start))

    for t in range(1, config.time_units + 1):
        # Benign leave ...
        benign = model.benign_indices()
        departing = rng.choice(
            benign, size=min(config.churn_per_unit, len(benign)), replace=False
        )
        model.remove_nodes(departing)
        # ... then benign join (p restored each unit).
        model.add_nodes(
            IdSpaceModel.draw_unique_ids(config.churn_per_unit, rng)
        )

        # Unrefreshed: knowledge accumulates monotonically.
        known |= model.any_malicious_holder(
            static_keys, config.replication_factor
        )
        out.append((
            (t, "unrefreshed"),
            _corrupted_fraction(known, config.num_tunnels, config.tunnel_length),
        ))

        # Refreshed: brand-new anchors; only the current state counts.
        fresh_keys = IdSpaceModel.draw_unique_ids(total_hops, rng)
        fresh_known = model.any_malicious_holder(
            fresh_keys, config.replication_factor
        )
        out.append((
            (t, "refreshed"),
            _corrupted_fraction(fresh_known, config.num_tunnels, config.tunnel_length),
        ))
    return out


def run_fig5(
    config: Fig5Config = Fig5Config(), workers: int | None = None
) -> list[dict]:
    partials = run_trials(
        _fig5_trial,
        [(config, rep) for rep in range(config.num_seeds)],
        effective_workers(workers, config),
    )
    per_time: dict[tuple[int, str], list[float]] = {}
    for partial in partials:
        for key, value in partial:
            per_time.setdefault(key, []).append(value)

    static_expectation = tunnel_corruption_prob(
        config.malicious_fraction,
        config.tunnel_length,
        config.replication_factor,
        config.num_nodes,
    )
    rows: list[dict] = []
    for (t, scheme), values in sorted(per_time.items()):
        rows.append(
            {
                "figure": "fig5",
                "time": t,
                "scheme": scheme,
                "corrupted_tunnels": float(np.mean(values)),
                "std": float(np.std(values)),
                "static_expected": static_expectation,
            }
        )
    return rows
