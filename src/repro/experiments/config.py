"""Experiment configurations with the paper's parameters as defaults.

Each config is a frozen dataclass; ``fast()`` returns a scaled-down
variant for CI and quick exploration that preserves every qualitative
shape (who wins, monotonicity, knees) at ~100× less work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _frange(start: float, stop: float, step: float) -> tuple[float, ...]:
    out = []
    x = start
    while x <= stop + 1e-9:
        out.append(round(x, 10))
        x += step
    return tuple(out)


@dataclass(frozen=True)
class ExperimentConfig:
    """Execution knobs shared by every experiment config.

    ``workers`` is the process count for independent trials (Monte-
    Carlo repetitions, sweep points): 1 runs serially, N fans out over
    N processes, negative means "all cores".  Results are *identical*
    for any value — see :mod:`repro.perf` — so it is an execution
    detail, kept keyword-only to stay out of the science parameters.
    """

    workers: int = field(default=1, kw_only=True)


@dataclass(frozen=True)
class Fig2Config(ExperimentConfig):
    """Tunnel failure rate vs simultaneous node failure fraction."""

    num_nodes: int = 10_000
    num_tunnels: int = 5_000
    tunnel_length: int = 5
    failure_fractions: tuple[float, ...] = _frange(0.05, 0.50, 0.05)
    replication_factors: tuple[int, ...] = (3, 5)
    seed: int = 2004
    num_seeds: int = 3

    @classmethod
    def fast(cls) -> "Fig2Config":
        return cls(num_nodes=1_000, num_tunnels=500, num_seeds=2,
                   failure_fractions=_frange(0.1, 0.5, 0.1))


@dataclass(frozen=True)
class Fig3Config(ExperimentConfig):
    """Corrupted tunnel rate vs malicious node fraction (k = 3)."""

    num_nodes: int = 10_000
    num_tunnels: int = 5_000
    tunnel_length: int = 5
    replication_factor: int = 3
    malicious_fractions: tuple[float, ...] = _frange(0.05, 0.30, 0.05)
    seed: int = 2004
    num_seeds: int = 3

    @classmethod
    def fast(cls) -> "Fig3Config":
        return cls(num_nodes=1_000, num_tunnels=500, num_seeds=2,
                   malicious_fractions=_frange(0.1, 0.3, 0.1))


@dataclass(frozen=True)
class Fig4Config(ExperimentConfig):
    """Corruption vs replication factor (a) and tunnel length (b), p = 0.1."""

    num_nodes: int = 10_000
    num_tunnels: int = 5_000
    malicious_fraction: float = 0.1
    tunnel_length: int = 5  # fixed in sweep (a)
    replication_factor: int = 3  # fixed in sweep (b)
    replication_factors: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    tunnel_lengths: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9)
    seed: int = 2004
    num_seeds: int = 3

    @classmethod
    def fast(cls) -> "Fig4Config":
        return cls(num_nodes=1_000, num_tunnels=500, num_seeds=2,
                   replication_factors=(1, 3, 5), tunnel_lengths=(1, 3, 5, 7))


@dataclass(frozen=True)
class Fig5Config(ExperimentConfig):
    """Corruption over time under benign churn, refreshed vs not (k = 3)."""

    num_nodes: int = 10_000
    num_tunnels: int = 5_000
    tunnel_length: int = 5
    replication_factor: int = 3
    malicious_fraction: float = 0.1
    churn_per_unit: int = 100
    time_units: int = 20
    seed: int = 2004
    num_seeds: int = 3

    @classmethod
    def fast(cls) -> "Fig5Config":
        return cls(num_nodes=1_000, num_tunnels=500, churn_per_unit=10,
                   time_units=10, num_seeds=2)


@dataclass(frozen=True)
class Fig6Config(ExperimentConfig):
    """Transfer latency vs network size: overt vs TAP basic/optimised."""

    network_sizes: tuple[int, ...] = (100, 500, 1_000, 2_000, 5_000, 10_000)
    tunnel_lengths: tuple[int, ...] = (3, 5)
    file_bits: float = 2_000_000.0  # the paper's 2 Mb file
    transfers_per_size: int = 50  # paper: 30 sims x 1,000 transfers
    min_latency_s: float = 0.010
    max_latency_s: float = 0.230
    bandwidth_bps: float = 1_500_000.0
    b_bits: int = 4
    #: proximity neighbour selection when building routing tables
    #: (FreePastry's locality feature; shortens physical routes)
    pns: bool = False
    seed: int = 2004
    num_seeds: int = 3

    @classmethod
    def fast(cls) -> "Fig6Config":
        return cls(network_sizes=(100, 500, 1_000), transfers_per_size=20,
                   num_seeds=1)


@dataclass(frozen=True)
class ScaleChurnConfig(ExperimentConfig):
    """Replica-set survival under churn at 10^5 nodes (compact engine).

    Runs on :class:`repro.perf.compact.CompactOverlay` — the whole
    ring as sorted arrays — so the default ``num_nodes`` is 100k,
    three orders of magnitude past what per-node objects sustain.
    Each round fails a fraction of the alive set and admits fresh
    joiners, then measures how many anchor keys still have a member
    of their *original* replica set alive, and how far the current
    replica sets have drifted.  ``spot_check_routes`` packet-level
    routes per trial are run through the materialisation bridge and
    cross-checked against the compact router.
    """

    num_nodes: int = 100_000
    replication_factor: int = 3
    #: sampled keys whose replica sets are tracked across rounds
    num_anchors: int = 2_000
    churn_rounds: int = 5
    fail_fraction: float = 0.01
    join_fraction: float = 0.005
    spot_check_routes: int = 8
    #: telemetry sampling budget (only drawn on when a MetricsRegistry
    #: is threaded through; sampled on its own derived seed stream so
    #: rows are identical with telemetry on or off)
    telemetry_anchor_samples: int = 256
    telemetry_route_samples: int = 4
    #: sampled batched routes re-run through the scalar router per
    #: trial (the million-node stand-in for the bridge spot check,
    #: which would materialise N Python objects)
    scalar_verify_routes: int = 0
    #: packet-plane window size (None = whole batch at once); any
    #: value yields identical rows, larger only costs memory
    chunk_size: int | None = None
    #: ship the base snapshot to workers as a shared-memory segment
    #: (metadata-only pickle) instead of a full array pickle
    use_shared_memory: bool = False
    seed: int = 2004
    num_seeds: int = 2

    @classmethod
    def fast(cls) -> "ScaleChurnConfig":
        return cls(num_nodes=2_000, num_anchors=200, churn_rounds=3,
                   spot_check_routes=4, telemetry_anchor_samples=64,
                   telemetry_route_samples=2)

    @classmethod
    def million(cls) -> "ScaleChurnConfig":
        """The N=10^6 operating point: bridge spot checks off (they
        materialise the ring as objects), sampled scalar verification
        on, routing chunked, base shipped via shared memory."""
        return cls(num_nodes=1_000_000, num_anchors=2_000, churn_rounds=3,
                   spot_check_routes=0, scalar_verify_routes=8,
                   chunk_size=1_024, use_shared_memory=True)


@dataclass(frozen=True)
class ScaleLatencyConfig(ExperimentConfig):
    """Fig6-class direct-vs-tunnel latency at 10^5 nodes (batched plane).

    Runs entirely on the vectorised packet plane
    (:mod:`repro.perf.packet`): after ``churn_rounds`` of fail/join
    churn, every trial routes ``num_transfers`` direct transfers and
    the same number of TAP tunnels per ``tunnel_lengths`` arm as
    whole batches, then folds per-hop U[``min_latency_s``,
    ``max_latency_s``] link draws into per-packet latency sums on the
    trial's seed stream — the paper's figure 6 latency model at a
    network size the scalar router cannot sweep.  ``verify_routes``
    packets per trial are re-routed through the scalar
    ``CompactOverlay.route`` and must agree hop-for-hop.
    """

    num_nodes: int = 100_000
    num_transfers: int = 2_000
    tunnel_lengths: tuple[int, ...] = (3, 5)
    churn_rounds: int = 2
    fail_fraction: float = 0.01
    join_fraction: float = 0.005
    min_latency_s: float = 0.010
    max_latency_s: float = 0.230
    #: per-trial batch-vs-scalar hop-for-hop cross-checks
    verify_routes: int = 4
    #: telemetry sampling budget (drawn on a dedicated stream, so rows
    #: are identical with telemetry on or off)
    telemetry_latency_samples: int = 256
    #: packet-plane window size (None = whole batch at once); any
    #: value yields identical rows, larger only costs memory
    chunk_size: int | None = None
    #: ship the base snapshot to workers as a shared-memory segment
    use_shared_memory: bool = False
    seed: int = 2004
    num_seeds: int = 2

    @classmethod
    def fast(cls) -> "ScaleLatencyConfig":
        return cls(num_nodes=2_000, num_transfers=200, verify_routes=2,
                   telemetry_latency_samples=64)

    @classmethod
    def million(cls) -> "ScaleLatencyConfig":
        """The N=10^6 operating point (chunked, shared-memory base)."""
        return cls(num_nodes=1_000_000, num_transfers=2_000,
                   churn_rounds=1, verify_routes=4,
                   chunk_size=1_024, use_shared_memory=True)


@dataclass(frozen=True)
class DurabilityConfig(ExperimentConfig):
    """k-replication vs (k,n) erasure coding under a chaos plan.

    Both arms replay the *same* membership and at-rest fault schedule
    (same derived seed streams, no backend label) over same-id
    overlays; the replication arm repairs eagerly on failure, the
    erasure arm defers to a budget-bounded
    :class:`repro.past.crawler.RepairCrawler` pass per round.  Rows
    track per-round fetch availability, byte-clean fetch fraction
    (replication serves bit-rot silently; erasure rejects it), objects
    lost, and repair bytes moved.
    """

    num_nodes: int = 400
    num_objects: int = 64
    object_bytes: int = 256
    #: copies the replication baseline keeps (= total_shares, so both
    #: arms occupy the same holder sets and the same fault schedule
    #: hits the same nodes)
    replication_factor: int = 4
    data_shares: int = 2
    total_shares: int = 4
    lease_term: int = 8
    renew_before: int = 2
    #: crawler repair-bandwidth budget per epoch (bytes)
    crawler_budget_bytes: int = 16_384
    #: named fault plan (``repro.faults.NAMED_PLANS``); the storage
    #: plans ("bitrot", "lease-skew") exercise the at-rest faults
    plan: str = "bitrot"
    #: round count (None = the plan's ``rounds_hint``)
    rounds: int | None = None
    seed: int = 2004
    num_seeds: int = 2

    @classmethod
    def fast(cls) -> "DurabilityConfig":
        return cls(num_nodes=160, num_objects=32, object_bytes=128,
                   crawler_budget_bytes=8_192, num_seeds=2)


def scaled(config, **overrides):
    """Return a copy of any config with fields overridden."""
    return replace(config, **overrides)
