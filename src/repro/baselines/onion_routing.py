"""Classic Onion Routing over per-node public keys.

Serves two roles in the reproduction:

* a standalone baseline anonymity system (fixed core-set mixes with
  public-key layers, per Syverson et al.);
* the bootstrap vehicle of §3.3 — TAP nodes use an onion-routing
  session to deploy their first THAs anonymously
  (:mod:`repro.core.deploy` builds the instruction onions; this module
  provides the generic circuit).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.node import TapNode
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


class OnionRoutingError(RuntimeError):
    """Raised when a circuit cannot be built or traversed."""


_EXIT_SENTINEL = 0


@dataclass
class OnionCircuit:
    """A public-key onion circuit over concrete TAP nodes."""

    relays: list[TapNode]

    def __post_init__(self) -> None:
        if not self.relays:
            raise OnionRoutingError("a circuit needs at least one relay")

    @property
    def length(self) -> int:
        return len(self.relays)

    def wrap(self, destination_id: int, payload: bytes, rng: random.Random) -> bytes:
        """Layered RSA encryption, innermost layer for the last relay."""
        blob = pack_fields(pack_int(_EXIT_SENTINEL), pack_int(destination_id), payload)
        blob = self.relays[-1].keypair.public.encrypt(blob, rng)
        for i in range(len(self.relays) - 2, -1, -1):
            nxt = self.relays[i + 1]
            blob = self.relays[i].keypair.public.encrypt(
                pack_fields(pack_int(nxt.node_id), b"", blob), rng
            )
        return blob

    @staticmethod
    def peel(relay: TapNode, blob: bytes) -> tuple[bool, int, bytes]:
        """One relay's decryption.

        Returns ``(is_exit, next_or_destination_id, inner)``.
        """
        plain = relay.keypair.decrypt(blob)
        try:
            first, second, inner = unpack_fields(plain, count=3)
        except SerializationError as exc:
            raise OnionRoutingError(f"malformed onion at {relay.node_id:#x}") from exc
        head = unpack_int(first)
        if head == _EXIT_SENTINEL:
            return True, unpack_int(second), inner
        return False, head, inner

    def traverse(
        self,
        destination_id: int,
        payload: bytes,
        rng: random.Random,
        is_alive,
    ) -> tuple[bool, int | None, bytes | None]:
        """Build and walk the circuit; dead relays abort the session.

        This is the §3.3 failure mode: "if a node on the bootstrapping
        Onion path fails, the deploying process will be aborted".
        """
        blob = self.wrap(destination_id, payload, rng)
        for relay in self.relays:
            if not is_alive(relay.node_id):
                return False, None, None
            is_exit, ident, inner = self.peel(relay, blob)
            if is_exit:
                return True, ident, inner
            blob = inner
        raise OnionRoutingError("circuit ended before an exit layer")
