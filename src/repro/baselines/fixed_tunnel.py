""""Current tunneling": anonymous paths bound to fixed nodes.

This is the baseline of Figure 2 — the tunnel construction of Crowds,
Tarzan and MorphMix as characterised by the paper: a sequence of
concrete relay nodes sharing symmetric keys with the initiator.  The
tunnel functions iff *every* relay is alive; a single failure breaks
it, because the path is defined by IP addresses, not by DHT keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.hashing import random_key
from repro.crypto.onion import OnionLayer, build_onion, peel_layer
from repro.crypto.symmetric import SymmetricKey


@dataclass
class FixedNodeTunnel:
    """A mix path over concrete relay node ids."""

    relay_ids: list[int]
    keys: list[SymmetricKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.relay_ids:
            raise ValueError("a tunnel needs at least one relay")
        if self.keys and len(self.keys) != len(self.relay_ids):
            raise ValueError("keys must parallel relays")

    @property
    def length(self) -> int:
        return len(self.relay_ids)

    def functions(self, is_alive) -> bool:
        """Alive-predicate check: every relay must be up."""
        return all(is_alive(nid) for nid in self.relay_ids)

    def onion_layers(self) -> list[OnionLayer]:
        if not self.keys:
            raise ValueError("tunnel formed without keys")
        # The "hop id" of a fixed tunnel *is* the relay's node id: the
        # address and the identity are welded together — exactly the
        # coupling TAP removes.
        return [OnionLayer(nid, key) for nid, key in zip(self.relay_ids, self.keys)]

    def send(
        self,
        destination_id: int,
        payload: bytes,
        is_alive,
    ) -> tuple[bool, int | None, bytes | None]:
        """Walk the onion relay by relay; any dead relay kills the message.

        Returns (success, destination, delivered_payload).
        """
        blob = build_onion(self.onion_layers(), destination_id, payload)
        for relay_id, key in zip(self.relay_ids, self.keys):
            if not is_alive(relay_id):
                return False, None, None
            peeled = peel_layer(key, blob)
            if peeled.is_exit:
                return True, peeled.next_id, peeled.inner
            blob = peeled.inner
        return False, None, None  # malformed: never reached exit


def form_fixed_tunnel(
    node_ids: list[int],
    length: int,
    rng: random.Random,
    with_keys: bool = True,
) -> FixedNodeTunnel:
    """Sample a uniform fixed-relay tunnel (distinct relays)."""
    if length > len(node_ids):
        raise ValueError(f"cannot pick {length} relays from {len(node_ids)} nodes")
    relays = rng.sample(node_ids, length)
    keys = (
        [SymmetricKey(random_key(rng)) for _ in relays] if with_keys else []
    )
    return FixedNodeTunnel(relays, keys)
