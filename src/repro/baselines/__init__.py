"""Baselines the paper compares against.

* :mod:`repro.baselines.fixed_tunnel` — "current tunneling": a mix
  path bound to l concrete nodes (Crowds/Tarzan/MorphMix style), which
  fails as soon as any relay fails (Figure 2's baseline);
* :mod:`repro.baselines.onion_routing` — classic Onion Routing over
  per-node public keys; also the bootstrap vehicle for THA deployment
  (§3.3).
"""

from repro.baselines.fixed_tunnel import FixedNodeTunnel, form_fixed_tunnel
from repro.baselines.onion_routing import OnionCircuit, OnionRoutingError

__all__ = [
    "FixedNodeTunnel",
    "form_fixed_tunnel",
    "OnionCircuit",
    "OnionRoutingError",
]
