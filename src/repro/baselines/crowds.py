"""Crowds (Reiter & Rubin 1998): probabilistic-forwarding baseline.

The paper positions TAP against the P2P anonymity family it cites —
Crowds being the canonical probabilistic design.  A message hops
between random *jondos*: each holder flips a biased coin and forwards
to a uniformly random member with probability ``p_f``, otherwise
submits to the destination.

Implemented here:

* path sampling (:meth:`CrowdsNetwork.send`) with collaborator
  observation — the first colluding member on the path records its
  predecessor (the predecessor attack);
* the closed-form posterior ``P(predecessor = initiator | observed)``
  = ``1 - p_f (n - c - 1) / n`` and the probable-innocence condition
  ``n >= p_f/(p_f - 1/2) (c + 1)``, both cross-checked against the
  Monte Carlo in the tests;
* a fixed-relay failure model (a Crowds path, once built, breaks like
  any fixed-node path — the property Figure 2 compares against).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np


@dataclass
class CrowdsObservation:
    """What the first collaborator on a path sees."""

    predecessor: int
    position: int  # 1-based index of the collaborator on the path
    is_initiator: bool  # ground truth (scoring only)


@dataclass
class CrowdsNetwork:
    """A crowd of ``members`` with forwarding probability ``p_f``."""

    members: list[int]
    p_f: float = 0.75
    collaborators: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not 0.5 <= self.p_f < 1.0:
            raise ValueError("Crowds requires 1/2 <= p_f < 1")
        if len(self.members) < 2:
            raise ValueError("a crowd needs at least two members")
        unknown = self.collaborators - set(self.members)
        if unknown:
            raise ValueError(f"collaborators not in crowd: {unknown}")

    @property
    def n(self) -> int:
        return len(self.members)

    @property
    def c(self) -> int:
        return len(self.collaborators)

    # ------------------------------------------------------------------
    def send(
        self, initiator: int, rng: random.Random
    ) -> tuple[list[int], CrowdsObservation | None]:
        """Sample one path; return it plus the first collaborator's
        observation (None if no collaborator relays the message)."""
        path = [initiator]
        current = initiator
        observation = None
        while True:
            nxt = self.members[rng.randrange(self.n)]
            path.append(nxt)
            if observation is None and nxt in self.collaborators:
                observation = CrowdsObservation(
                    predecessor=current,
                    position=len(path) - 1,
                    is_initiator=(current == initiator),
                )
            current = nxt
            if rng.random() >= self.p_f:
                return path, observation

    def path_functions(self, path: list[int], is_alive) -> bool:
        """Once built, a Crowds path is a fixed-node path: it breaks if
        any jondo on it fails (Figure 2's 'current tunneling')."""
        return all(is_alive(member) for member in path)

    # ------------------------------------------------------------------
    # closed forms (Reiter & Rubin §5)
    # ------------------------------------------------------------------
    def predecessor_posterior(self) -> float:
        """P(the observed predecessor is the initiator)."""
        return 1.0 - self.p_f * (self.n - self.c - 1) / self.n

    def probable_innocence(self) -> bool:
        """True iff the crowd satisfies probable innocence (P <= 1/2)."""
        return self.n >= self.p_f / (self.p_f - 0.5) * (self.c + 1)

    def suspect_distribution(self) -> np.ndarray:
        """The adversary's initiator distribution after one observation:
        the observed predecessor carries the posterior, the remaining
        honest members split the rest uniformly."""
        p_suspect = self.predecessor_posterior()
        others = self.n - self.c - 1
        if others <= 0:
            return np.array([1.0])
        rest = (1.0 - p_suspect) / others
        return np.array([p_suspect] + [rest] * others)

    def expected_path_length(self) -> float:
        """Mean number of jondos on a path (geometric forwarding)."""
        return 1.0 / (1.0 - self.p_f) + 1.0
