"""Reproduction of *TAP: A Novel Tunneling Approach for Anonymity in
Structured P2P Systems* (Zhu & Hu, ICPP 2004).

The package rebuilds the paper's full stack in Python:

* :mod:`repro.pastry` — the Pastry structured overlay (FreePastry 1.3
  equivalent: prefix routing, leaf sets, join/leave/failure);
* :mod:`repro.past` — PAST storage with k-closest replication;
* :mod:`repro.crypto` — layered (onion) encryption, hashing, RSA;
* :mod:`repro.simnet` — discrete-event network simulator (latency,
  bandwidth, message delivery);
* :mod:`repro.core` — TAP itself: tunnel hop anchors, anonymous
  deployment, fault-tolerant tunnels, reply tunnels, the §5 IP-hint
  optimisation, and anonymous file retrieval;
* :mod:`repro.baselines` — "current tunneling" (fixed-node paths) and
  Onion Routing, the paper's comparison points;
* :mod:`repro.adversary` — failure, collusion, and churn models;
* :mod:`repro.analysis` — vectorised Monte-Carlo id-space model,
  anonymity metrics, and closed-form cross-checks;
* :mod:`repro.experiments` — one module per figure of the paper;
* :mod:`repro.obs` — observability: metrics registry, structured
  event traces, and the invariant auditor.

Entry point for most users::

    from repro import TapSystem
"""

from repro.core.system import TapSystem
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.core.node import TapNode
from repro.obs import EventTrace, InvariantAuditor, MetricsRegistry

__version__ = "1.1.0"

__all__ = [
    "TapSystem",
    "Tunnel",
    "ReplyTunnel",
    "TapNode",
    "MetricsRegistry",
    "EventTrace",
    "InvariantAuditor",
    "__version__",
]
