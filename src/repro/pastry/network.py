"""The Pastry overlay: node registry, routing, join/leave/failure.

The network object plays two roles found in FreePastry's simulator:

* global oracle for *constructing* overlays (omniscient bootstrap and
  leaf-set repair — stand-ins for the maintenance protocol traffic);
* the per-hop *routing* itself, which uses only each node's local
  state (leaf set + routing table), discovering failures hop by hop
  exactly as a real deployment would.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.pastry.bulk import (
    adjacent_prefix_depths,
    leaf_reach,
    leaf_window,
    node_prefix,
    proximity_pools,
    smallest_id_buckets,
)
from repro.pastry.constants import DEFAULT_B_BITS, DEFAULT_LEAF_SET_SIZE
from repro.pastry.node import PastryNode
from repro.util.ids import (
    ID_BITS,
    closest_in_sorted,
    id_digit,
    ring_distance,
    shared_prefix_digits,
)


class RoutingError(RuntimeError):
    """Raised when a route cannot be completed (all candidates dead)."""


@dataclass
class RouteResult:
    """Outcome of routing a key from a source node.

    ``path`` lists the node ids traversed, source first and the node
    that accepted responsibility for the key last.  ``failures``
    counts dead next-hops discovered (and routed around) on the way.
    """

    key: int
    path: list[int]
    success: bool
    failures: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def hops(self) -> int:
        """Number of overlay hops actually taken."""
        return max(0, len(self.path) - 1)

    @property
    def destination(self) -> int:
        return self.path[-1]


class PastryNetwork:
    """Registry + routing fabric for a set of :class:`PastryNode`."""

    #: Safety valve against routing livelock; generous compared to the
    #: ~log_16 N hops a healthy overlay needs.
    MAX_HOPS = 256

    def __init__(
        self,
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
        eager_repair: bool = True,
        metrics=None,
        tracer=None,
    ):
        self.b_bits = b_bits
        self.leaf_set_size = leaf_set_size
        #: Repair neighbours' leaf sets immediately on leave/failure
        #: (stands in for Pastry's leaf-set maintenance protocol).
        self.eager_repair = eager_repair
        self.nodes: dict[int, PastryNode] = {}
        self._sorted_alive: list[int] = []
        #: bumped on every alive-set change; lets derived views (e.g.
        #: :class:`repro.past.ReplicatedStore` replica-set caches) test
        #: staleness with one integer compare instead of subscribing
        self.membership_epoch = 0
        #: reverse reference index ``entry -> {owner ids}``, built
        #: lazily on the first departure repair and maintained by the
        #: ``on_add`` hooks of every leaf set / routing table.  Superset
        #: semantics: owners that have since evicted the entry are
        #: pruned by a membership check at repair time.
        self._referrers: dict[int, set[int]] | None = None
        # Route-decision caches, valid for one membership epoch (same
        # invalidation contract as the store's replica_set memoisation).
        self._route_cache: dict[tuple[int, int], RouteResult] = {}
        self._closest_cache: dict[int, int] = {}
        self._route_cache_epoch = -1
        #: optional :class:`repro.obs.MetricsRegistry`
        self.metrics = metrics
        #: optional :class:`repro.obs.SpanTracer`; ``route`` is the one
        #: creator of ``dht.route`` spans (parented via the stack)
        self.tracer = tracer

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        node_ids: Iterable[int],
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
        eager_repair: bool = True,
        proximity=None,
        proximity_sample: int = 16,
        metrics=None,
        tracer=None,
    ) -> "PastryNetwork":
        """Omniscient bootstrap: correct state for every node at once.

        ``proximity`` enables FreePastry-style proximity neighbour
        selection (PNS): a callable ``(a, b) -> latency`` (e.g.
        :meth:`repro.simnet.Topology.latency`); each routing-table cell
        is then filled with the topologically nearest of up to
        ``proximity_sample`` candidates instead of a deterministic
        default.  Any qualifying candidate yields a *correct* table —
        PNS only changes which one, trading build time for shorter
        physical routes (visible in the Figure-6 latencies).
        """
        net = cls(
            b_bits=b_bits,
            leaf_set_size=leaf_set_size,
            eager_repair=eager_repair,
            metrics=metrics,
            tracer=tracer,
        )
        ids = sorted(set(node_ids))
        if not ids:
            return net
        net._sorted_alive = list(ids)
        for nid in ids:
            net.nodes[nid] = PastryNode(nid, b_bits, leaf_set_size)

        # Leaf sets in one pass: the half closest ids in each ring
        # direction are exactly the index neighbours in sorted order,
        # so the trimmed leaf set can be assigned directly instead of
        # re-ranking after every insertion.  The window/bucket builders
        # live in repro.pastry.bulk, shared with the compact engine.
        n = len(ids)
        reach = leaf_reach(n, leaf_set_size)
        for idx, nid in enumerate(ids):
            net.nodes[nid].leaf_set.bulk_load(leaf_window(ids, idx, reach))

        # Routing tables from prefix buckets: bucket (row, prefix, digit)
        # keeps the smallest qualifying id for determinism.  Nodes that
        # share an r-digit prefix form a contiguous run in sorted order,
        # so each node's deepest populated row is bounded by its shared
        # prefix with its sort neighbours — no need to visit all 32 rows.
        rows = ID_BITS // b_bits
        max_shared = adjacent_prefix_depths(ids, b_bits)
        if proximity is None:
            # Deterministic default: the smallest qualifying id per cell.
            buckets = smallest_id_buckets(ids, max_shared, b_bits)

            def cell_entry(owner: int, key: tuple[int, int, int]) -> int | None:
                return buckets.get(key)

        else:
            # PNS: keep a bounded candidate pool per cell, pick the
            # topologically nearest per owner.
            pools = proximity_pools(ids, max_shared, b_bits, proximity_sample)

            def cell_entry(owner: int, key: tuple[int, int, int]) -> int | None:
                pool = pools.get(key)
                if not pool:
                    return None
                return min(pool, key=lambda cand: (proximity(owner, cand), cand))

        # A bucket (row, prefix, digit) entry shares exactly ``row``
        # digits with every owner of that prefix and differs at digit
        # ``row``, so its cell is (row, digit) by construction — the
        # table is filled directly, skipping per-add prefix arithmetic.
        for idx, nid in enumerate(ids):
            table = net.nodes[nid].routing_table
            for row in range(min(rows, max_shared[idx] + 1)):
                prefix = node_prefix(nid, row, b_bits)
                own_digit = id_digit(nid, row, b_bits)
                for digit in range(1 << b_bits):
                    if digit == own_digit:
                        continue
                    entry = cell_entry(nid, (row, prefix, digit))
                    if entry is not None:
                        table.install_cell(row, digit, entry)
        return net

    # ------------------------------------------------------------------
    # snapshot / fork (repro.perf.snapshot)
    # ------------------------------------------------------------------
    def snapshot(self):
        """Immutable, picklable copy of the whole overlay state.

        Returns a :class:`repro.perf.snapshot.NetworkSnapshot`; restore
        any number of independent networks from it with
        :meth:`~repro.perf.snapshot.NetworkSnapshot.restore`.
        """
        from repro.perf.snapshot import NetworkSnapshot

        return NetworkSnapshot.capture(self)

    def fork(self, metrics=None, tracer=None) -> "PastryNetwork":
        """An independent copy-on-write copy of this overlay.

        Node state is materialised lazily on first access, so forking
        is O(1) in the network size; mutations never touch the parent.
        """
        return self.snapshot().restore(metrics=metrics, tracer=tracer)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def alive_ids(self) -> list[int]:
        """Ascending ids of alive nodes (shared, do not mutate)."""
        return self._sorted_alive

    @property
    def size(self) -> int:
        return len(self._sorted_alive)

    def __iter__(self) -> Iterator[PastryNode]:
        return iter(self.nodes.values())

    def node(self, node_id: int) -> PastryNode:
        return self.nodes[node_id]

    def is_alive(self, node_id: int) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def _mark_alive(self, node_id: int) -> None:
        pos = bisect_left(self._sorted_alive, node_id)
        if pos >= len(self._sorted_alive) or self._sorted_alive[pos] != node_id:
            insort(self._sorted_alive, node_id)
            self.membership_epoch += 1

    def _mark_dead(self, node_id: int) -> None:
        pos = bisect_left(self._sorted_alive, node_id)
        if pos < len(self._sorted_alive) and self._sorted_alive[pos] == node_id:
            del self._sorted_alive[pos]
            self.membership_epoch += 1

    def join(self, node_id: int, bootstrap_id: int | None = None) -> PastryNode:
        """Incremental Pastry join protocol.

        The newcomer routes its own id via ``bootstrap_id`` (default:
        the alive node with the lowest id), copies the leaf set of the
        numerically closest node, takes routing-table rows from the
        nodes along the join route, and announces itself to every node
        it learned about.
        """
        if node_id in self.nodes and self.nodes[node_id].alive:
            raise ValueError(f"node {node_id:#x} already in the overlay")
        newcomer = PastryNode(node_id, self.b_bits, self.leaf_set_size)
        self.nodes[node_id] = newcomer
        self._attach_ref_hooks(newcomer)

        if not self._sorted_alive:  # first node: trivially joined
            self._mark_alive(node_id)
            return newcomer

        if bootstrap_id is None:
            bootstrap_id = self._sorted_alive[0]
        result = self.route(bootstrap_id, node_id)
        if not result.success:
            del self.nodes[node_id]
            raise RoutingError("join route failed; overlay too damaged")

        # Row i of the routing table comes from the i-th node on the
        # join route (it shares at least i digits with the newcomer).
        for depth, hop_id in enumerate(result.path):
            hop = self.nodes[hop_id]
            shared = shared_prefix_digits(hop_id, node_id, self.b_bits)
            for row in range(min(depth, shared) + 1):
                for entry in hop.routing_table.row_entries(row).values():
                    if self.is_alive(entry):
                        newcomer.routing_table.add(entry)
            newcomer.routing_table.add(hop_id)

        closest = self.nodes[result.destination]
        newcomer.leaf_set.add_all(
            m for m in closest.leaf_set.members | {closest.node_id} if self.is_alive(m)
        )

        self._mark_alive(node_id)
        # Announce arrival to everyone the newcomer learned about.
        for other_id in newcomer.known_nodes():
            other = self.nodes.get(other_id)
            if other is not None and other.alive:
                other.learn([node_id])
        if self.metrics is not None:
            self.metrics.counter("pastry.joins").inc()
            self.metrics.gauge("pastry.population").set(self.size)
        return newcomer

    def leave(self, node_id: int) -> None:
        """Graceful departure (same observable effect as failure)."""
        self.fail(node_id)

    def fail(self, node_id: int) -> None:
        """Crash a node; optionally repair neighbours' leaf sets."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.alive = False
        self._mark_dead(node_id)
        if self.metrics is not None:
            self.metrics.counter("pastry.fails").inc()
            self.metrics.gauge("pastry.population").set(self.size)
        if self.eager_repair:
            self._repair_after_departure(node_id)

    def revive(self, node_id: int) -> None:
        """Bring a failed node back into the overlay.

        The returning node's state is stale: peers that died while it
        was away still populate its leaf set and routing table, and no
        live node remembers it.  Under eager repair (the maintenance
        protocol stand-in) both sides are reconciled: the stale
        references are dropped and repaired, the revived node's leaf
        set is refilled, and its ring neighbours re-adopt it.  Without
        eager repair the node returns stale, and routing discovers the
        inconsistencies lazily (tests churn logic).
        """
        node = self.nodes.get(node_id)
        if node is None or node.alive:
            return
        node.alive = True
        self._mark_alive(node_id)
        if self.metrics is not None:
            self.metrics.counter("pastry.revives").inc()
            self.metrics.gauge("pastry.population").set(self.size)
        if self.eager_repair:
            self._repair_after_revival(node_id)

    def _repair_after_revival(self, node_id: int) -> None:
        """Reconcile a revived node's stale state with the overlay."""
        node = self.nodes[node_id]
        for stale in [m for m in node.known_nodes() if not self.is_alive(m)]:
            self._forget_and_refill(node, stale)
        ids = self._sorted_alive
        n = len(ids)
        if n < 2:
            return
        pos = bisect_left(ids, node_id)
        half = self.leaf_set_size // 2
        for off in range(1, min(half, n - 1) + 1):
            for neighbour_id in (ids[(pos + off) % n], ids[(pos - off) % n]):
                if neighbour_id == node_id:
                    continue
                node.leaf_set.add(neighbour_id)
                node.routing_table.add(neighbour_id)
                self.nodes[neighbour_id].learn([node_id])

    # ------------------------------------------------------------------
    # the referrer index (who references whom)
    # ------------------------------------------------------------------
    def _note_reference(self, owner_id: int, target_id: int) -> None:
        """``on_add`` hook installed on every leaf set / routing table:
        record that ``owner_id`` may now reference ``target_id``."""
        refs = self._referrers
        if refs is not None:
            refs.setdefault(target_id, set()).add(owner_id)

    def _attach_ref_hooks(self, node: PastryNode) -> None:
        node.leaf_set.on_add = self._note_reference
        node.routing_table.on_add = self._note_reference

    def _build_referrer_index(self) -> dict[int, set[int]]:
        """One full scan building ``entry -> {owners}``; every node is
        hooked so subsequent additions keep the index a superset of the
        true reference relation (evictions are pruned lazily)."""
        refs: dict[int, set[int]] = {}
        self._referrers = refs
        for nid, node in self.nodes.items():
            for target in node.leaf_set.members:
                refs.setdefault(target, set()).add(nid)
            for target in node.routing_table.entries:
                refs.setdefault(target, set()).add(nid)
            self._attach_ref_hooks(node)
        return refs

    def _repair_after_departure(self, dead_id: int) -> None:
        """Refill leaf sets and routing cells that referenced the dead node.

        Stands in for Pastry's repair protocols: leaf-set repair asks
        the furthest leaf on the depleted side for its leaf set;
        routing-table repair asks row neighbours for a replacement
        entry.  We refill from the global sorted list — the state those
        protocols provably converge to.

        Referrers come from the lazily-built reverse index rather than
        a full-ring scan, so one departure costs O(referrers · |L|),
        not O(N) — the index is a superset, pruned here by the same
        membership checks the scan performed.
        """
        if not self._sorted_alive:
            return
        refs = self._referrers
        if refs is None:
            refs = self._build_referrer_index()
        owners = refs.pop(dead_id, None)
        if not owners:
            return
        want = min(self.leaf_set_size + 2, len(self._sorted_alive))
        for nid in sorted(owners):
            node = self.nodes.get(nid)
            if node is None or not node.alive:
                continue
            if dead_id not in node.leaf_set and dead_id not in node.routing_table:
                continue
            had_leaf = dead_id in node.leaf_set
            self._forget_and_refill(node, dead_id)
            if had_leaf:
                for repl in closest_in_sorted(self._sorted_alive, nid, want):
                    node.leaf_set.add(repl)

    def _forget_and_refill(self, node: PastryNode, dead_id: int) -> None:
        """Drop a dead node from local state and repair the vacated
        routing cell with another alive node of the same prefix class."""
        cell = node.routing_table.cell_for(dead_id)
        node.forget(dead_id)
        if cell is None:
            return
        row, col = cell
        replacement = self._find_node_for_cell(node.node_id, row, col)
        if replacement is not None:
            node.routing_table.add(replacement)

    def _find_node_for_cell(self, owner_id: int, row: int, col: int) -> int | None:
        """Any alive node sharing ``row`` digits with the owner and
        having digit ``col`` next — i.e. a valid entry for that cell.
        Nodes of one prefix class are contiguous in sorted id order."""
        b = self.b_bits
        shift = ID_BITS - b * (row + 1)
        owner_prefix = owner_id >> (shift + b)
        lo = ((owner_prefix << b) | col) << shift
        pos = bisect_left(self._sorted_alive, lo)
        if pos < len(self._sorted_alive) and (self._sorted_alive[pos] >> shift) == (lo >> shift):
            return self._sorted_alive[pos]
        return None

    def discover_failure(self, observer_id: int, dead_id: int) -> None:
        """An observer timed out contacting ``dead_id``: drop it from
        the observer's local state and repair the vacated cell.  Used
        by the event-driven emulation, where failures are discovered
        by timeout rather than by the oracle."""
        observer = self.nodes.get(observer_id)
        if observer is not None:
            self._forget_and_refill(observer, dead_id)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    #: Route-cache size valve; cleared wholesale when exceeded.
    ROUTE_CACHE_LIMIT = 65536

    def _fresh_route_caches(self) -> None:
        if self._route_cache_epoch != self.membership_epoch:
            self._route_cache.clear()
            self._closest_cache.clear()
            self._route_cache_epoch = self.membership_epoch

    def closest_alive(self, key: int) -> int:
        """Id of the alive node numerically closest to ``key`` (oracle).

        Memoised per membership epoch — a pure function of the alive
        set, recomputed only after membership changes.
        """
        if not self._sorted_alive:
            raise RoutingError("no alive nodes")
        self._fresh_route_caches()
        root = self._closest_cache.get(key)
        if root is None:
            root = closest_in_sorted(self._sorted_alive, key, 1)[0]
            if len(self._closest_cache) >= self.ROUTE_CACHE_LIMIT:
                self._closest_cache.clear()
            self._closest_cache[key] = root
        return root

    def replica_candidates(self, key: int, k: int) -> list[int]:
        """The k alive nodes numerically closest to ``key`` (oracle)."""
        if not self._sorted_alive:
            raise RoutingError("no alive nodes")
        return closest_in_sorted(self._sorted_alive, key, min(k, len(self._sorted_alive)))

    def route(self, src_id: int, key: int) -> RouteResult:
        """Route ``key`` from ``src_id`` using only local node state.

        Dead next-hops are discovered on contact: the current node
        forgets them and retries with the failure excluded, mirroring
        timeout-and-reroute in a deployment.
        """
        if self.metrics is None and not self.tracer:
            return self._route_impl(src_id, key)
        tr = self.tracer
        span = tr.start_span("dht.route", observer="hop",
                             src=src_id) if tr else None
        try:
            result = self._route_impl(src_id, key)
        except RoutingError as exc:
            if span is not None:
                tr.finish(span, success=False, error=str(exc))
            raise
        if span is not None:
            tr.finish(
                span,
                success=result.success,
                links=result.hops,
                failures=result.failures,
                dst=result.destination,
            )
        m = self.metrics
        if m is not None:
            m.counter("pastry.route.count").inc()
            m.histogram("pastry.route.hops").observe(result.hops)
            if result.failures:
                m.counter("pastry.route.dead_hops").inc(result.failures)
            if not result.success:
                m.counter("pastry.route.failed").inc()
        return result

    def _route_impl(self, src_id: int, key: int) -> RouteResult:
        src = self.nodes.get(src_id)
        if src is None or not src.alive:
            raise RoutingError(f"source {src_id:#x} is not alive")

        # Clean routes are a pure function of the overlay state, which
        # under eager repair is immutable between membership epochs
        # (dead references — the one in-route mutation trigger — cannot
        # exist), so they are cached per (src, key) until the epoch
        # turns.  Routes that discovered failures are never cached.
        cacheable = self.eager_repair
        if cacheable:
            self._fresh_route_caches()
            hit = self._route_cache.get((src_id, key))
            if hit is not None:
                if self.metrics is not None:
                    self.metrics.counter("pastry.route.cache_hits").inc()
                return RouteResult(key, list(hit.path), True, 0)

        path = [src_id]
        failures = 0
        current = src
        for _ in range(self.MAX_HOPS):
            excluded: set[int] = set()
            while True:
                nxt = current.next_hop(key, exclude=excluded)
                if nxt is None:
                    return RouteResult(key, path, False, failures)
                if nxt == current.node_id:
                    if cacheable and failures == 0:
                        if len(self._route_cache) >= self.ROUTE_CACHE_LIMIT:
                            self._route_cache.clear()
                        self._route_cache[(src_id, key)] = RouteResult(
                            key, list(path), True, 0
                        )
                    return RouteResult(key, path, True, failures)
                if self.is_alive(nxt):
                    break
                # Discovered a dead neighbour: drop it, repair the
                # vacated cell, and retry.
                failures += 1
                excluded.add(nxt)
                self._forget_and_refill(current, nxt)
            path.append(nxt)
            current = self.nodes[nxt]
        return RouteResult(key, path, False, failures, meta={"reason": "hop-limit"})
