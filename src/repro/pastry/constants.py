"""Pastry protocol parameters (paper defaults)."""

#: Bits per routing digit: base ``2**b`` prefix routing.  The paper
#: quotes ``log_{2^b} N`` hops "with a typical value of 4" — 16-way.
DEFAULT_B_BITS = 4

#: Leaf-set size |L| (half numerically smaller, half larger).
DEFAULT_LEAF_SET_SIZE = 16
