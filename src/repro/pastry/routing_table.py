"""Pastry prefix routing table.

Row ``r`` holds nodes sharing exactly ``r`` leading digits with the
owner; column ``c`` is the value of digit ``r`` of the entry.  With
b=4 there are 32 rows of 16 columns over the 128-bit space, of which
roughly ``log_16 N`` rows are populated in an N-node network.

Proximity-based entry selection (FreePastry picks the topologically
nearest candidate per cell) is out of scope: the reproduced
experiments do not depend on proximity, only on hop counts, which are
determined by prefix-match progress alone.
"""

from __future__ import annotations

from repro.pastry.constants import DEFAULT_B_BITS
from repro.util.ids import ID_BITS, id_digit, shared_prefix_digits

_MISS = object()

#: Cap on the per-table ``entry_for_key`` memo; cleared wholesale when
#: exceeded (keys routed between mutations are usually few and hot).
_KEY_MEMO_LIMIT = 4096


class RoutingTable:
    """Sparse (row, column) -> nodeid map with reverse and row indexes."""

    def __init__(self, owner_id: int, b_bits: int = DEFAULT_B_BITS):
        if ID_BITS % b_bits != 0:
            raise ValueError(f"b={b_bits} must divide {ID_BITS}")
        self.owner_id = owner_id
        self.b_bits = b_bits
        self.rows = ID_BITS // b_bits
        self.cols = 1 << b_bits
        self._cells: dict[tuple[int, int], int] = {}
        self._reverse: dict[int, tuple[int, int]] = {}
        #: row -> {col -> nodeid}, kept in lock-step with ``_cells`` so
        #: :meth:`row_entries` is O(row occupancy), not O(table).
        self._rows_index: dict[int, dict[int, int]] = {}
        #: bumped on every mutation; invalidates the key-lookup memo
        self._version = 0
        self._key_memo: dict[int, int | None] = {}
        self._memo_version = -1
        #: optional ``(owner_id, added_id)`` callback observed by the
        #: network's leaf/table referrer index (see
        #: :meth:`repro.pastry.network.PastryNetwork._note_reference`)
        self.on_add = None

    def cell_for(self, node_id: int) -> tuple[int, int] | None:
        """The (row, col) a candidate id would occupy, or None for self."""
        if node_id == self.owner_id:
            return None
        row = shared_prefix_digits(self.owner_id, node_id, self.b_bits)
        col = id_digit(node_id, row, self.b_bits)
        return row, col

    def add(self, node_id: int, replace: bool = False) -> bool:
        """Install a candidate in its cell.

        Keeps the incumbent unless ``replace`` — entry churn does not
        affect correctness, only which of several valid nodes fills the
        cell.  Returns True if the candidate was installed.
        """
        cell = self.cell_for(node_id)
        if cell is None:
            return False
        if self.on_add is not None:
            self.on_add(self.owner_id, node_id)
        if cell in self._cells and not replace:
            return self._cells[cell] == node_id
        old = self._cells.get(cell)
        if old is not None:
            self._reverse.pop(old, None)
        self._install(cell, node_id)
        return True

    def _install(self, cell: tuple[int, int], node_id: int) -> None:
        self._cells[cell] = node_id
        self._rows_index.setdefault(cell[0], {})[cell[1]] = node_id
        self._reverse[node_id] = cell
        self._version += 1

    def install_cell(self, row: int, col: int, node_id: int) -> None:
        """Trusted direct install used by the bulk ring constructor:
        the caller guarantees ``(row, col) == cell_for(node_id)`` and
        that the cell is vacant — skips the prefix computation."""
        self._install((row, col), node_id)

    def load_cells(self, cells: dict[tuple[int, int], int]) -> None:
        """Replace the whole table from a ``cell -> nodeid`` mapping
        (the snapshot-restore path); the mapping is copied."""
        self._cells = dict(cells)
        rows_index: dict[int, dict[int, int]] = {}
        reverse: dict[int, tuple[int, int]] = {}
        for cell, nid in self._cells.items():
            rows_index.setdefault(cell[0], {})[cell[1]] = nid
            reverse[nid] = cell
        self._rows_index = rows_index
        self._reverse = reverse
        self._version += 1

    def remove(self, node_id: int) -> bool:
        cell = self._reverse.pop(node_id, None)
        if cell is None:
            return False
        del self._cells[cell]
        row = self._rows_index.get(cell[0])
        if row is not None and row.get(cell[1]) == node_id:
            del row[cell[1]]
            if not row:
                del self._rows_index[cell[0]]
        self._version += 1
        return True

    def lookup(self, row: int, col: int) -> int | None:
        return self._cells.get((row, col))

    def entry_for_key(self, key: int) -> int | None:
        """The routing-table next hop for ``key``: the cell matching the
        key's first divergent digit, if populated.

        Memoised per key until the next table mutation (the per-hop
        routing decision re-resolves the same keys many times between
        membership events).
        """
        memo = self._key_memo
        if self._memo_version != self._version:
            memo.clear()
            self._memo_version = self._version
        hit = memo.get(key, _MISS)
        if hit is not _MISS:
            return hit
        row = shared_prefix_digits(self.owner_id, key, self.b_bits)
        if row >= self.rows:
            entry = None  # key == owner id
        else:
            col = id_digit(key, row, self.b_bits)
            entry = self._cells.get((row, col))
        if len(memo) >= _KEY_MEMO_LIMIT:
            memo.clear()
        memo[key] = entry
        return entry

    def row_entries(self, row: int) -> dict[int, int]:
        """col -> nodeid mapping of one row (copy); O(row occupancy)."""
        entries = self._rows_index.get(row)
        return dict(entries) if entries else {}

    @property
    def entries(self) -> set[int]:
        """All node ids currently installed."""
        return set(self._reverse)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._reverse

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = sorted({r for r, _ in self._cells})
        return f"RoutingTable(owner={self.owner_id:#x}, rows={populated})"
