"""Pastry prefix routing table.

Row ``r`` holds nodes sharing exactly ``r`` leading digits with the
owner; column ``c`` is the value of digit ``r`` of the entry.  With
b=4 there are 32 rows of 16 columns over the 128-bit space, of which
roughly ``log_16 N`` rows are populated in an N-node network.

Proximity-based entry selection (FreePastry picks the topologically
nearest candidate per cell) is out of scope: the reproduced
experiments do not depend on proximity, only on hop counts, which are
determined by prefix-match progress alone.
"""

from __future__ import annotations

from repro.pastry.constants import DEFAULT_B_BITS
from repro.util.ids import ID_BITS, id_digit, shared_prefix_digits


class RoutingTable:
    """Sparse (row, column) -> nodeid map with a reverse index."""

    def __init__(self, owner_id: int, b_bits: int = DEFAULT_B_BITS):
        if ID_BITS % b_bits != 0:
            raise ValueError(f"b={b_bits} must divide {ID_BITS}")
        self.owner_id = owner_id
        self.b_bits = b_bits
        self.rows = ID_BITS // b_bits
        self.cols = 1 << b_bits
        self._cells: dict[tuple[int, int], int] = {}
        self._reverse: dict[int, tuple[int, int]] = {}

    def cell_for(self, node_id: int) -> tuple[int, int] | None:
        """The (row, col) a candidate id would occupy, or None for self."""
        if node_id == self.owner_id:
            return None
        row = shared_prefix_digits(self.owner_id, node_id, self.b_bits)
        col = id_digit(node_id, row, self.b_bits)
        return row, col

    def add(self, node_id: int, replace: bool = False) -> bool:
        """Install a candidate in its cell.

        Keeps the incumbent unless ``replace`` — entry churn does not
        affect correctness, only which of several valid nodes fills the
        cell.  Returns True if the candidate was installed.
        """
        cell = self.cell_for(node_id)
        if cell is None:
            return False
        if cell in self._cells and not replace:
            return self._cells[cell] == node_id
        old = self._cells.get(cell)
        if old is not None:
            self._reverse.pop(old, None)
        self._cells[cell] = node_id
        self._reverse[node_id] = cell
        return True

    def remove(self, node_id: int) -> bool:
        cell = self._reverse.pop(node_id, None)
        if cell is None:
            return False
        del self._cells[cell]
        return True

    def lookup(self, row: int, col: int) -> int | None:
        return self._cells.get((row, col))

    def entry_for_key(self, key: int) -> int | None:
        """The routing-table next hop for ``key``: the cell matching the
        key's first divergent digit, if populated."""
        row = shared_prefix_digits(self.owner_id, key, self.b_bits)
        if row >= self.rows:
            return None  # key == owner id
        col = id_digit(key, row, self.b_bits)
        return self._cells.get((row, col))

    def row_entries(self, row: int) -> dict[int, int]:
        """col -> nodeid mapping of one row (copy)."""
        return {c: nid for (r, c), nid in self._cells.items() if r == row}

    @property
    def entries(self) -> set[int]:
        """All node ids currently installed."""
        return set(self._reverse)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._reverse

    def __len__(self) -> int:
        return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = sorted({r for r, _ in self._cells})
        return f"RoutingTable(owner={self.owner_id:#x}, rows={populated})"
