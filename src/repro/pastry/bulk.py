"""Bulk ring-construction builders shared by the overlay engines.

:meth:`repro.pastry.network.PastryNetwork.build` and the compact
array-backed engine (:mod:`repro.perf.compact`) must produce *the same*
canonical overlay for a given id population — that equivalence is a
tested contract.  The pieces of the layout that define "canonical" live
here, once:

* **leaf windows** — the half closest ids in each ring direction are
  exactly the index neighbours in sorted order, so a node's leaf set is
  the ±reach window around its sorted position;
* **prefix depths** — nodes sharing an r-digit prefix form a contiguous
  run in sorted order, so each node's deepest populated routing row is
  bounded by the shared prefix with its sort neighbours;
* **prefix buckets** — the deterministic routing-table fill keeps the
  smallest qualifying id per (row, prefix, digit) bucket.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.util.ids import ID_BITS, id_digit, shared_prefix_digits


def leaf_reach(n: int, leaf_set_size: int) -> int:
    """Per-direction leaf window size for a population of ``n`` nodes."""
    return min(leaf_set_size // 2, n - 1)


def leaf_window(ids: Sequence[int], idx: int, reach: int) -> Iterator[int]:
    """The canonical leaf-set members of ``ids[idx]``.

    ``ids`` must be ascending and duplicate-free; the window is the
    ``reach`` index neighbours on each side, wrapping around the ring.
    """
    n = len(ids)
    return (ids[(idx + off) % n] for off in range(-reach, reach + 1) if off)


def node_prefix(node_id: int, row: int, b_bits: int) -> int:
    """The first ``row`` digits of ``node_id`` as an integer (0 for row 0)."""
    return node_id >> (ID_BITS - b_bits * row) if row else 0


def bucket_bounds(node_id: int, row: int, col: int, b_bits: int) -> tuple[int, int]:
    """The id interval of routing bucket ``(row, prefix(node), col)``.

    Returns ``(lower, upper)``: the bucket holds exactly the ids in
    ``[lower, upper)`` — those sharing ``node_id``'s first ``row``
    digits followed by digit ``col``.  Because the bucket is a
    contiguous interval of the sorted ring, its canonical entry (the
    smallest qualifying id, per :func:`smallest_id_buckets`) is the
    first alive id at or past ``lower`` — the one-``searchsorted``
    lookup both the compact engine's scalar router and the batched
    packet plane (:mod:`repro.perf.packet`) build on.
    """
    shift = ID_BITS - b_bits * (row + 1)
    lower = ((node_prefix(node_id, row, b_bits) << b_bits) | col) << shift
    return lower, lower + (1 << shift)


def adjacent_prefix_depths(ids: Sequence[int], b_bits: int) -> list[int]:
    """Per node: max shared-prefix digits with either sort neighbour.

    This bounds the deepest routing row worth filling — a node's
    longest shared prefix with *any* node is achieved by one of its
    sort neighbours, so rows beyond ``depth + 1`` are provably empty.
    """
    n = len(ids)
    adjacent = [
        shared_prefix_digits(ids[i], ids[i + 1], b_bits) for i in range(n - 1)
    ]
    return [
        max(
            adjacent[i - 1] if i > 0 else 0,
            adjacent[i] if i < n - 1 else 0,
        )
        for i in range(n)
    ]


def smallest_id_buckets(
    ids: Sequence[int], depths: Sequence[int], b_bits: int
) -> dict[tuple[int, int, int], int]:
    """Deterministic routing-table buckets over a sorted population.

    Bucket ``(row, prefix, digit)`` keeps the smallest id whose first
    ``row`` digits equal ``prefix`` and whose next digit is ``digit`` —
    the canonical cell entry every engine agrees on.
    """
    rows = ID_BITS // b_bits
    buckets: dict[tuple[int, int, int], int] = {}
    for idx, nid in enumerate(ids):
        for row in range(min(rows, depths[idx] + 1)):
            key = (row, node_prefix(nid, row, b_bits), id_digit(nid, row, b_bits))
            cur = buckets.get(key)
            if cur is None or nid < cur:
                buckets[key] = nid
    return buckets


def proximity_pools(
    ids: Sequence[int], depths: Sequence[int], b_bits: int, sample: int
) -> dict[tuple[int, int, int], list[int]]:
    """Bounded candidate pools per bucket for proximity neighbour
    selection; candidates arrive in ascending id order."""
    rows = ID_BITS // b_bits
    pools: dict[tuple[int, int, int], list[int]] = {}
    for idx, nid in enumerate(ids):
        for row in range(min(rows, depths[idx] + 1)):
            key = (row, node_prefix(nid, row, b_bits), id_digit(nid, row, b_bits))
            pool = pools.setdefault(key, [])
            if len(pool) < sample:
                pool.append(nid)
    return pools
