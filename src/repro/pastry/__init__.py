"""Pastry structured-overlay substrate (FreePastry 1.3 equivalent).

Implements the routing/location layer TAP is built on (Rowstron &
Druschel, Middleware 2001): 128-bit circular id space, base-``2**b``
digit prefix routing (default b=4, i.e. 16-way digits and
``log_16 N``-hop routes), leaf sets of ``|L|=16``, join protocol, and
failure handling via leaf-set/routing-table repair.

Two construction paths are provided:

* :meth:`PastryNetwork.build` — omniscient bootstrap that instantiates
  correct routing state for all nodes at once (the standard way to set
  up large simulated overlays);
* :meth:`PastryNetwork.join` — the incremental Pastry join protocol
  (route to the closest node, copy leaf set and per-row routing
  entries from the nodes along the join route, announce arrival).

Both yield the same invariants, which the test-suite cross-checks.
"""

from repro.pastry.bulk import (
    adjacent_prefix_depths,
    leaf_reach,
    leaf_window,
    node_prefix,
    smallest_id_buckets,
)
from repro.pastry.constants import DEFAULT_B_BITS, DEFAULT_LEAF_SET_SIZE
from repro.pastry.leafset import LeafSet
from repro.pastry.routing_table import RoutingTable
from repro.pastry.node import PastryNode
from repro.pastry.network import PastryNetwork, RouteResult, RoutingError

__all__ = [
    "DEFAULT_B_BITS",
    "DEFAULT_LEAF_SET_SIZE",
    "LeafSet",
    "RoutingTable",
    "PastryNode",
    "PastryNetwork",
    "RouteResult",
    "RoutingError",
    "adjacent_prefix_depths",
    "leaf_reach",
    "leaf_window",
    "node_prefix",
    "smallest_id_buckets",
]
