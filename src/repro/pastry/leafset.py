"""Pastry leaf set: the |L| nodes numerically closest to the owner.

Half of the entries are the closest ids clockwise (numerically larger,
wrapping) and half counterclockwise.  The leaf set determines the last
routing step and — shared with PAST — the replica-set neighbourhood.
"""

from __future__ import annotations

from repro.pastry.constants import DEFAULT_LEAF_SET_SIZE
from repro.util.ids import ID_SPACE, ring_distance


def _cw_dist(frm: int, to: int) -> int:
    """Clockwise (increasing-id) distance from ``frm`` to ``to``."""
    return (to - frm) % ID_SPACE


class LeafSet:
    """Bounded set of ring neighbours, split into CW/CCW halves."""

    def __init__(self, owner_id: int, capacity: int = DEFAULT_LEAF_SET_SIZE):
        if capacity < 2 or capacity % 2 != 0:
            raise ValueError("leaf-set capacity must be an even number >= 2")
        self.owner_id = owner_id
        self.capacity = capacity
        self._members: set[int] = set()
        #: optional ``(owner_id, added_id)`` callback observed by the
        #: network's referrer index; fired per *candidate* (superset
        #: semantics — eviction by :meth:`_trim` is not reported)
        self.on_add = None

    # -- membership ----------------------------------------------------
    @property
    def members(self) -> set[int]:
        """All current leaf ids (excluding the owner)."""
        return set(self._members)

    @property
    def half(self) -> int:
        return self.capacity // 2

    def cw_members(self) -> list[int]:
        """Clockwise half, nearest first."""
        ranked = sorted(self._members, key=lambda x: _cw_dist(self.owner_id, x))
        return ranked[: self.half]

    def ccw_members(self) -> list[int]:
        """Counterclockwise half, nearest first."""
        ranked = sorted(self._members, key=lambda x: _cw_dist(x, self.owner_id))
        return ranked[: self.half]

    def add(self, node_id: int) -> bool:
        """Insert a candidate; evict the furthest if a half overflows.

        Returns True if the candidate is retained.
        """
        if node_id == self.owner_id:
            return False
        self._members.add(node_id)
        self._trim()
        if self.on_add is not None:
            self.on_add(self.owner_id, node_id)
        return node_id in self._members

    def add_all(self, node_ids) -> None:
        added = []
        for node_id in node_ids:
            if node_id != self.owner_id:
                self._members.add(node_id)
                added.append(node_id)
        self._trim()
        if self.on_add is not None:
            for node_id in added:
                self.on_add(self.owner_id, node_id)

    def bulk_load(self, node_ids) -> None:
        """Trusted direct load used by the bulk ring constructor and the
        snapshot-restore path: the caller guarantees the ids are exactly
        a valid (trimmed) leaf set for the owner, so the per-add
        ranking sorts of :meth:`_trim` are skipped entirely."""
        self._members = {m for m in node_ids if m != self.owner_id}

    def remove(self, node_id: int) -> None:
        self._members.discard(node_id)

    def _trim(self) -> None:
        """Keep only ids that belong to either bounded half."""
        keep = set(self.cw_members()) | set(self.ccw_members())
        self._members = keep

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- routing queries -------------------------------------------------
    def is_full(self) -> bool:
        """Both halves at capacity *and* disjoint.

        When the population is small the same node ranks in the top
        |L|/2 of both directions; such a "wrapped" leaf set spans the
        entire ring and must not be treated as bounding an arc.
        """
        cw = self.cw_members()
        ccw = self.ccw_members()
        return (
            len(cw) == self.half
            and len(ccw) == self.half
            and not set(cw) & set(ccw)
        )

    def covers(self, key: int) -> bool:
        """True if ``key`` falls within the leaf-set arc.

        Pastry routes directly to the numerically closest leaf when the
        key lies between the furthest CCW and furthest CW members.  A
        non-full or ring-wrapping leaf set covers everything.
        """
        if not self.is_full():
            return True
        cw_far = self.cw_members()[-1]
        ccw_far = self.ccw_members()[-1]
        span = _cw_dist(ccw_far, cw_far)
        return _cw_dist(ccw_far, key) <= span

    def closest(self, key: int, include_owner: bool = True) -> int:
        """Numerically closest id to ``key`` among leaves (and owner)."""
        pool = set(self._members)
        if include_owner:
            pool.add(self.owner_id)
        if not pool:
            raise ValueError("empty leaf set with owner excluded")
        return min(pool, key=lambda x: (ring_distance(x, key), x))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeafSet(owner={self.owner_id:#034x}, "
            f"|cw|={len(self.cw_members())}, |ccw|={len(self.ccw_members())})"
        )
