"""A Pastry overlay node: id, leaf set, routing table, liveness."""

from __future__ import annotations

from typing import Iterable

from repro.pastry.constants import DEFAULT_B_BITS, DEFAULT_LEAF_SET_SIZE
from repro.pastry.leafset import LeafSet
from repro.pastry.routing_table import RoutingTable
from repro.util.ids import id_to_hex, ring_distance, shared_prefix_digits


def ip_for_id(node_id: int) -> str:
    """Deterministic simulated IPv4 address for a node id.

    Used by the §5 IP-hint optimisation; collisions across the 2^128
    id space are irrelevant because hints are validated by liveness
    and closest-node checks, never trusted.
    """
    octets = [(node_id >> shift) & 0xFF for shift in (96, 64, 32, 0)]
    return ".".join(str(o % 254 + 1) for o in octets)


class PastryNode:
    """Routing state of one overlay node.

    Message handling lives at higher layers (:mod:`repro.past`,
    :mod:`repro.core.node`); this class owns the Pastry invariants.
    """

    def __init__(
        self,
        node_id: int,
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ):
        self.node_id = node_id
        self.ip = ip_for_id(node_id)
        self.leaf_set = LeafSet(node_id, leaf_set_size)
        self.routing_table = RoutingTable(node_id, b_bits)
        self.alive = True

    # -- state maintenance ----------------------------------------------
    def learn(self, node_ids: Iterable[int]) -> None:
        """Incorporate discovered nodes into leaf set and routing table."""
        for nid in node_ids:
            if nid == self.node_id:
                continue
            self.leaf_set.add(nid)
            self.routing_table.add(nid)

    def forget(self, node_id: int) -> None:
        """Drop a node believed failed from all local state."""
        self.leaf_set.remove(node_id)
        self.routing_table.remove(node_id)

    def known_nodes(self) -> set[int]:
        return self.leaf_set.members | self.routing_table.entries

    # -- the Pastry routing decision --------------------------------------
    def next_hop(self, key: int, exclude: set[int] | None = None) -> int | None:
        """Pastry's per-hop forwarding rule (Rowstron–Druschel §2.3).

        1. If the key is covered by the leaf set, deliver to the
           numerically closest leaf (possibly self → terminal).
        2. Otherwise use the routing-table cell for the key's first
           divergent digit.
        3. Otherwise (rare) forward to any known node that shares a
           prefix at least as long and is numerically closer to the
           key — guarantees progress, hence termination.

        ``exclude`` removes nodes known to have failed; returning
        ``self.node_id`` means this node is responsible for the key.
        """
        exclude = exclude or set()

        if self.leaf_set.covers(key):
            pool = (self.leaf_set.members | {self.node_id}) - exclude
            if pool:
                return min(pool, key=lambda x: (ring_distance(x, key), x))

        entry = self.routing_table.entry_for_key(key)
        if entry is not None and entry not in exclude:
            return entry

        # Rare case: scan everything we know for guaranteed progress.
        own_prefix = shared_prefix_digits(self.node_id, key, self.routing_table.b_bits)
        own_dist = ring_distance(self.node_id, key)
        best = None
        best_key = None
        for nid in self.known_nodes() - exclude:
            if shared_prefix_digits(nid, key, self.routing_table.b_bits) < own_prefix:
                continue
            dist = ring_distance(nid, key)
            if dist >= own_dist:
                continue
            cand = (dist, nid)
            if best_key is None or cand < best_key:
                best_key = cand
                best = nid
        if best is not None:
            return best
        # No strictly better node known: we are (or believe we are)
        # numerically closest — deliver locally.
        return self.node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"PastryNode({id_to_hex(self.node_id)[:8]}…, {state})"
