"""Observability substrate: metrics, structured traces, invariant audits.

Every performance or robustness claim this reproduction makes rests on
per-hop counters and replica-set invariants.  This package makes those
first-class artifacts instead of ad-hoc computations inside the hot
paths:

* :class:`MetricsRegistry` — named counters, gauges and histograms
  (p50/p95/p99), exportable as JSON or tidy CSV rows;
* :class:`EventTrace` — a bounded ring buffer of structured per-hop /
  per-route events with JSON-lines export;
* :class:`InvariantAuditor` — systematic post-event checks over the
  overlay (leaf-set symmetry, routing-table liveness, ``_sorted_alive``
  consistency) and the replicated store (holder/intended agreement,
  storage/index agreement).

All instrumentation is opt-in: substrates accept an optional registry
and pay only a ``None`` check when observability is disabled.
"""

from repro.obs.audit import AuditReport, InvariantAuditor, InvariantViolationError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import EventTrace, TraceEvent

__all__ = [
    "AuditReport",
    "Counter",
    "EventTrace",
    "Gauge",
    "Histogram",
    "InvariantAuditor",
    "InvariantViolationError",
    "MetricsRegistry",
    "TraceEvent",
]
