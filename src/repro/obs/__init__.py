"""Observability substrate: metrics, traces, spans, invariant audits.

Every performance or robustness claim this reproduction makes rests on
per-hop counters and replica-set invariants.  This package makes those
first-class artifacts instead of ad-hoc computations inside the hot
paths:

* :class:`MetricsRegistry` — named counters, gauges and histograms
  (p50/p95/p99), exportable as JSON or tidy CSV rows;
* :class:`EventTrace` — a bounded ring buffer of structured per-hop /
  per-route events with JSON-lines export;
* :class:`SpanTracer` — causal span trees (one per end-to-end request,
  children per hop and per ``onion.peel`` / ``dht.route`` /
  ``hint.probe`` / ``failover.repair`` operation) with wall-clock and
  simulated-cost attribution, Chrome-trace/Perfetto export, and an
  anonymity-aware redaction mode;
* :mod:`repro.obs.critical_path` — rebuilds span trees from an export
  and attributes end-to-end latency to phases along the critical path;
* :class:`InvariantAuditor` — systematic post-event checks over the
  overlay (leaf-set symmetry, routing-table liveness, ``_sorted_alive``
  consistency) and the replicated store (holder/intended agreement,
  storage/index agreement);
* :mod:`repro.obs.export` — OpenMetrics / Prometheus text exposition
  and streaming JSONL renderings of a registry;
* :mod:`repro.obs.manifest` — the run ledger: one canonical-JSON
  ``manifest.json`` per CLI invocation, byte-identical (core) across
  serial and parallel execution;
* :mod:`repro.obs.report` / :mod:`repro.obs.slo` — the consolidated
  results-directory report and the declarative SLO gate evaluated
  over its flat indicator dict.

All instrumentation is opt-in: substrates accept an optional registry
or tracer and pay only a ``None``/falsiness check when disabled.
"""

from repro.obs.audit import AuditReport, InvariantAuditor, InvariantViolationError
from repro.obs.export import (
    METRICS_FORMATS,
    metrics_jsonl_lines,
    to_metrics_jsonl,
    to_openmetrics,
    write_metrics,
)
from repro.obs.manifest import (
    build_manifest,
    canonical_manifest,
    load_manifest,
    manifest_digest,
    write_manifest,
)
from repro.obs.critical_path import (
    SpanRecord,
    build_trees,
    critical_path,
    load_trace_file,
    phase_breakdown,
    records_from_tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    NULL_TRACER,
    PHASES,
    NullTracer,
    Span,
    SpanContext,
    SpanTracer,
    phase_of,
    redact_attrs,
)
from repro.obs.trace import EventTrace, TraceEvent

__all__ = [
    "AuditReport",
    "Counter",
    "EventTrace",
    "Gauge",
    "Histogram",
    "InvariantAuditor",
    "InvariantViolationError",
    "METRICS_FORMATS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASES",
    "Span",
    "SpanContext",
    "SpanRecord",
    "SpanTracer",
    "TraceEvent",
    "build_manifest",
    "build_trees",
    "canonical_manifest",
    "critical_path",
    "load_manifest",
    "load_trace_file",
    "manifest_digest",
    "metrics_jsonl_lines",
    "phase_breakdown",
    "phase_of",
    "records_from_tracer",
    "redact_attrs",
    "to_metrics_jsonl",
    "to_openmetrics",
    "write_manifest",
    "write_metrics",
]
