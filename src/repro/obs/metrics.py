"""Named metrics: counters, gauges, histograms with percentile export.

A :class:`MetricsRegistry` is the single handle the substrates share;
instruments are created on first use and live for the registry's
lifetime, so hot paths hold direct references instead of doing name
lookups per event::

    metrics = MetricsRegistry()
    hops = metrics.histogram("pastry.route.hops")
    ...
    hops.observe(route.hops)

Export formats:

* :meth:`MetricsRegistry.snapshot` — nested plain-dict (JSON-ready);
* :meth:`MetricsRegistry.to_json` — the same, serialised;
* :meth:`MetricsRegistry.rows` — tidy rows (one per instrument) for
  ``render_table`` / ``rows_to_csv`` in :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-observed level (population size, pending repairs, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution of observed values with on-demand percentiles.

    Samples are kept verbatim up to ``max_samples`` and then decimated
    (every other retained sample, doubling the keep-stride) so memory
    stays bounded while count/sum/min/max remain exact.
    """

    __slots__ = ("name", "max_samples", "count", "total", "min", "max",
                 "_samples", "_stride", "_skip")

    def __init__(self, name: str, max_samples: int = 8192):
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._skip:
            self._skip -= 1
            return
        self._samples.append(value)
        self._skip = self._stride - 1
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def observe_many(self, values) -> None:
        """Bulk observe, C-speed bookkeeping for the sampled-telemetry
        hot path.

        Retained samples end up identical to per-value :meth:`observe`
        calls; the batched ``sum`` may differ from a chain of ``+=`` in
        the last ulp, which is fine because every execution path of a
        given run batches identically.  Falls back to the per-value
        loop once decimation is active (stride bookkeeping is per
        sample there).
        """
        values = [float(v) for v in values]
        if not values:
            return
        if (
            self._stride != 1
            or len(self._samples) + len(values) >= self.max_samples
        ):
            for v in values:
                self.observe(v)
            return
        self.count += len(values)
        self.total += sum(values)
        lo = min(values)
        hi = max(values)
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        self._samples.extend(values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float, ordered: list[float] | None = None) -> float:
        """The q-th percentile (0 <= q <= 100) of the retained samples.

        ``ordered`` may pass a presorted view of ``_samples`` so
        callers taking several percentiles (snapshot, exporters) sort
        once instead of once per quantile.
        """
        if ordered is None:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = (len(ordered) - 1) * (q / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        count/sum/min/max stay exact.  Each retained sample stands for
        ``stride`` observations, so sources with different decimation
        strides must not be concatenated as-is — the finer source's
        samples would outweigh their share of the stream.  Both sides
        are first brought to the coarser of the two strides (strides
        are powers of two, so re-decimation is exact), then
        concatenated in (self, other) order and re-decimated under the
        bound.  The merge is deterministic given the merge order (the
        parallel trial executor merges in trial order).
        """
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        target = max(self._stride, other._stride)
        if self._stride < target:
            self._samples = self._samples[:: target // self._stride]
            self._stride = target
        theirs = other._samples
        if other._stride < target:
            theirs = theirs[:: target // other._stride]
        self._samples.extend(theirs)
        while len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def snapshot(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        ordered = sorted(self._samples)
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50, ordered),
            "p95": self.percentile(95, ordered),
            "p99": self.percentile(99, ordered),
        }


@dataclass
class MetricsRegistry:
    """Process-local instrument registry shared by all substrates."""

    histogram_max_samples: int = 8192
    _counters: dict[str, Counter] = field(default_factory=dict)
    _gauges: dict[str, Gauge] = field(default_factory=dict)
    _histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                name, self.histogram_max_samples
            )
        return inst

    @contextmanager
    def timer(self, name: str):
        """Observe a wall-clock duration (seconds) into a histogram."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one nested, JSON-serialisable dict."""
        out: dict[str, dict] = {}
        for group in (self._counters, self._gauges, self._histograms):
            for name, inst in group.items():
                out[name] = inst.snapshot()
        return dict(sorted(out.items()))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    #: uniform column set so CSV export is rectangular
    ROW_COLUMNS = ("metric", "type", "count", "value", "mean",
                   "min", "max", "p50", "p95", "p99")

    def rows(self) -> list[dict]:
        """Tidy per-instrument rows (uniform columns) for table/CSV."""
        rows = []
        for name, snap in self.snapshot().items():
            row = dict.fromkeys(self.ROW_COLUMNS, "")
            row["metric"] = name
            for key, value in snap.items():
                if key in row:
                    row[key] = value
            rows.append(row)
        return rows

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters and histograms accumulate; gauges adopt the incoming
        value (last-write-wins, matching their "last observed level"
        semantics when merging worker registries in trial order).
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(name).merge(hist)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
