"""Critical-path reconstruction over exported span trees.

Consumes the Chrome trace-event JSON written by
:meth:`repro.obs.spans.SpanTracer.dump` (or a live tracer) and answers
the questions Figure 6 and the §5 optimisation raise:

* rebuild the span *tree* of every trace from the span/parent ids
  preserved in each event's ``args``;
* compute the **critical path** of a trace — the root-to-leaf chain of
  spans that determines its completion time;
* attribute every microsecond to a *phase* (crypto / routing /
  hint-probe / repair / other, see :func:`repro.obs.spans.phase_of`)
  using **self time** — a span's duration minus its children's — so
  nothing is double-counted when hops nest probes and routes.

All durations are reported in seconds regardless of the export's
microsecond timestamps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.spans import PHASES, phase_of


@dataclass
class SpanRecord:
    """One span reconstructed from an exported trace event."""

    name: str
    cat: str
    ts: float  # seconds, trace-local
    dur: float  # seconds
    trace_id: int
    span_id: int
    parent_id: int | None
    args: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (floor 0 for jitter)."""
        return max(0.0, self.dur - sum(c.dur for c in self.children))

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def records_from_events(events: list[dict]) -> list[SpanRecord]:
    """Trace-event dicts -> flat :class:`SpanRecord` list."""
    records = []
    for ev in events:
        if ev.get("ph") != "X":
            continue  # metadata / instant events carry no duration
        args = ev.get("args", {})
        records.append(
            SpanRecord(
                name=ev.get("name", "?"),
                cat=ev.get("cat") or phase_of(ev.get("name", "")),
                ts=float(ev.get("ts", 0.0)) / 1e6,
                dur=float(ev.get("dur", 0.0)) / 1e6,
                trace_id=int(args.get("trace_id", ev.get("tid", 0))),
                span_id=int(args["span_id"]) if "span_id" in args else id(ev),
                parent_id=args.get("parent_id"),
                args=args,
            )
        )
    return records


def load_trace_file(path) -> list[SpanRecord]:
    """Load a Chrome trace file (object or bare event array)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    return records_from_events(events)


def records_from_tracer(tracer, redact: bool = False) -> list[SpanRecord]:
    """Records straight from a live :class:`~repro.obs.spans.SpanTracer`."""
    return records_from_events(tracer.chrome_events(redact=redact))


def build_trees(records: list[SpanRecord]) -> list[SpanRecord]:
    """Link children to parents; returns root spans (parent unknown)."""
    by_id = {(r.trace_id, r.span_id): r for r in records}
    roots: list[SpanRecord] = []
    for rec in records:
        rec.children = []
    for rec in records:
        parent = (
            by_id.get((rec.trace_id, rec.parent_id))
            if rec.parent_id is not None
            else None
        )
        if parent is None or parent is rec:
            roots.append(rec)
        else:
            parent.children.append(rec)
    for rec in records:
        rec.children.sort(key=lambda c: (c.ts, c.span_id))
    return roots


def critical_path(root: SpanRecord) -> list[SpanRecord]:
    """Root-to-leaf chain that determines the trace's completion time.

    At every level, descend into the child whose interval *ends last*
    (ties to the longer child) — with sequential children that is the
    one the parent waited for.
    """
    chain = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda c: (c.end, c.dur, c.span_id))
        chain.append(node)
    return chain


def phase_breakdown(roots: list[SpanRecord]) -> list[dict]:
    """Per-phase latency attribution rows over a forest of traces.

    Self time is attributed to each span's own phase; shares are of
    the summed root durations (the end-to-end time the caller saw).
    """
    totals = dict.fromkeys(PHASES, 0.0)
    counts = dict.fromkeys(PHASES, 0)
    links = dict.fromkeys(PHASES, 0)
    end_to_end = 0.0
    for root in roots:
        end_to_end += root.dur
        for span in root.walk():
            phase = span.cat if span.cat in totals else phase_of(span.name)
            if phase not in totals:
                phase = "other"
            totals[phase] += span.self_time
            counts[phase] += 1
            raw_links = span.args.get("links")
            if isinstance(raw_links, (int, float)):
                links[phase] += int(raw_links)
    rows = []
    for phase in PHASES:
        rows.append(
            {
                "phase": phase,
                "time_s": totals[phase],
                "share": (totals[phase] / end_to_end) if end_to_end else 0.0,
                "spans": counts[phase],
                "links": links[phase],
            }
        )
    return rows


def render_critical_path(root: SpanRecord, float_format: str = "{:.6f}") -> str:
    """Human-readable critical-path chain of one trace."""
    lines = [
        f"critical path of trace {root.trace_id} "
        f"(end-to-end {float_format.format(root.dur)} s):"
    ]
    for depth, span in enumerate(critical_path(root)):
        lines.append(
            f"  {'  ' * depth}{span.name} [{span.cat}] "
            f"{float_format.format(span.dur)} s"
            f" (self {float_format.format(span.self_time)} s)"
        )
    return "\n".join(lines) + "\n"


def summarize_trace_file(path) -> dict:
    """One-stop digest used by the ``tap-repro trace`` subcommand."""
    records = load_trace_file(path)
    roots = build_trees(records)
    rows = phase_breakdown(roots)
    slowest = max(roots, key=lambda r: r.dur, default=None)
    return {
        "spans": len(records),
        "traces": len(roots),
        "end_to_end_s": sum(r.dur for r in roots),
        "breakdown": rows,
        "slowest": slowest,
    }
