"""Metrics export formats beyond the registry's own JSON snapshot.

The :class:`~repro.obs.metrics.MetricsRegistry` snapshot is a nested
dict — fine for one process reading one file, but the scale runs feed
external tooling:

* :func:`to_openmetrics` — the OpenMetrics / Prometheus text
  exposition format.  Counters become ``<name>_total``, gauges stay
  plain, histograms export as summaries (``quantile`` labels plus
  ``_sum``/``_count``/``_min``/``_max``), so a scrape of a finished
  run drops straight into Prometheus, VictoriaMetrics, or ``promtool``.
* :func:`metrics_jsonl_lines` / :func:`to_metrics_jsonl` — streaming
  JSON-lines, one instrument per line.  Lines are emitted lazily in
  sorted-name order, so a 10^6-instrument registry exports without
  materialising one giant document.

Both renderings are pure functions of the registry snapshot: sorted
instrument order, no timestamps — two registries with equal state
export byte-identically (the property the run-ledger digests lean on).

:data:`METRICS_FORMATS` maps the CLI's ``--metrics-format`` values to
renderers; :func:`write_metrics` dispatches on it and returns the
paths written (the JSON format also writes the tidy-CSV sibling the
original ``--metrics-out`` contract promised).
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

#: quantiles exported for every histogram: (quantile label, snapshot key)
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def openmetrics_name(name: str) -> str:
    """A metric name sanitised to the OpenMetrics grammar.

    Dots and dashes (the registry's namespacing convention,
    ``pastry.route.hops``) become underscores; any remaining illegal
    character does too, and a leading digit is prefixed.
    """
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _num(value: float) -> str:
    """OpenMetrics number rendering: repr floats, bare ints, Inf/NaN."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_openmetrics(registry: MetricsRegistry, prefix: str = "tap_") -> str:
    """The registry as OpenMetrics text exposition (ends with # EOF).

    ``prefix`` namespaces every family (default ``tap_``) so scraped
    runs don't collide with a host's own metrics.
    """
    lines: list[str] = []
    for name, snap in registry.snapshot().items():
        family = prefix + openmetrics_name(name)
        kind = snap["type"]
        if kind == "counter":
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family}_total {_num(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_num(snap['value'])}")
        else:  # histogram -> summary exposition
            lines.append(f"# TYPE {family} summary")
            if snap["count"]:
                for label, key in SUMMARY_QUANTILES:
                    lines.append(
                        f'{family}{{quantile="{label}"}} {_num(snap[key])}'
                    )
                lines.append(f"{family}_sum {_num(snap['sum'])}")
            else:
                lines.append(f"{family}_sum 0")
            lines.append(f"{family}_count {_num(snap['count'])}")
            if snap["count"]:
                # min/max as companion gauges (not part of the summary
                # family proper, but exact and too useful to drop)
                lines.append(f"# TYPE {family}_min gauge")
                lines.append(f"{family}_min {_num(snap['min'])}")
                lines.append(f"# TYPE {family}_max gauge")
                lines.append(f"{family}_max {_num(snap['max'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def metrics_jsonl_lines(registry: MetricsRegistry) -> Iterator[str]:
    """Lazily yield one canonical JSON line per instrument (sorted)."""
    for name, snap in registry.snapshot().items():
        yield json.dumps(
            {"metric": name, **snap}, sort_keys=True, separators=(",", ":")
        )


def to_metrics_jsonl(registry: MetricsRegistry) -> str:
    lines = list(metrics_jsonl_lines(registry))
    return "\n".join(lines) + ("\n" if lines else "")


def _render_json(registry: MetricsRegistry) -> str:
    return registry.to_json() + "\n"


#: ``--metrics-format`` value -> renderer
METRICS_FORMATS = {
    "json": _render_json,
    "jsonl": to_metrics_jsonl,
    "openmetrics": to_openmetrics,
}


def write_metrics(
    registry: MetricsRegistry, path, fmt: str = "json"
) -> list[pathlib.Path]:
    """Write the registry to ``path`` in ``fmt``; returns paths written.

    The ``json`` format keeps the original ``--metrics-out`` contract:
    the snapshot JSON plus a sibling ``.csv`` of tidy per-instrument
    rows.  ``jsonl`` and ``openmetrics`` write exactly one file.
    """
    try:
        render = METRICS_FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown metrics format {fmt!r} "
            f"(choose from {sorted(METRICS_FORMATS)})"
        ) from None
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render(registry))
    written = [path]
    if fmt == "json":
        from repro.experiments.runner import rows_to_csv

        csv_path = path.with_suffix(".csv")
        csv_path.write_text(rows_to_csv(registry.rows()))
        written.append(csv_path)
    return written
