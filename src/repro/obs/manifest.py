"""The run ledger: one canonical-JSON ``manifest.json`` per invocation.

Every ``tap-repro run`` / ``chaos`` / ``scale-churn`` invocation that
writes artifacts also writes a manifest next to them recording its own
provenance: the git state, the full config and seeds, the environment
(python, cpu count), the rows digests of every table produced, and the
path + SHA-256 of every artifact file.  A BENCH trajectory entry or a
chaos availability number can then always be tied back to the exact
(code, config, seed) that produced it.

Determinism contract
--------------------
Everything in the manifest except the top-level ``"volatile"`` section
is a pure function of (repo state, machine, config, seed) — the
**core**.  Wall time, timestamps, worker counts and the argv spelling
are real provenance but vary run to run, so they live under
``"volatile"`` and are excluded from :func:`manifest_core` and the
``digest`` field.  The gate the CI enforces is therefore:

    same seed, any ``--workers`` value  =>  byte-identical core
    (``canonical_manifest``) and identical ``digest``.

Artifacts whose bytes are *not* deterministic (span traces carry wall
clocks) are flagged ``"volatile": true``; their recorded sha256 is
real but nulled inside the core so it cannot break the contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import subprocess
import sys

from repro.perf.digest import canonical_json

SCHEMA = 1


def git_sha(repo_root=None) -> str:
    """Full git commit sha of the working tree, or "unknown"."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or pathlib.Path(__file__).resolve().parents[3],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def file_sha256(path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def artifact_entry(path, kind: str, volatile: bool = False,
                   base=None) -> dict:
    """Ledger entry for one written artifact file.

    ``base`` relativises the recorded path (usually the manifest's own
    directory) so a results directory stays relocatable; paths outside
    ``base`` are recorded by name only.
    """
    path = pathlib.Path(path)
    name = str(path)
    if base is not None:
        try:
            name = str(path.resolve().relative_to(
                pathlib.Path(base).resolve()
            ))
        except ValueError:
            name = path.name
    return {
        "path": name,
        "kind": kind,
        "sha256": file_sha256(path),
        "volatile": bool(volatile),
    }


def config_dict(config) -> dict:
    """A config dataclass as a plain dict, minus execution knobs.

    ``workers`` is an execution detail (results are identical for any
    value), so it is stripped here and recorded under ``volatile``.
    """
    import dataclasses

    out = dataclasses.asdict(config)
    out.pop("workers", None)
    return out


def build_manifest(
    command: str,
    *,
    configs: dict | None = None,
    results: dict | None = None,
    artifacts: list[dict] | None = None,
    seed: int | None = None,
    extra: dict | None = None,
    volatile: dict | None = None,
) -> dict:
    """Assemble a manifest dict (digest filled in by :func:`write_manifest`).

    ``configs`` maps run name -> :func:`config_dict`; ``results`` maps
    run name -> ``{"rows": n, "digest": rows_digest, "summary": {...}}``;
    ``artifacts`` is a list of :func:`artifact_entry` dicts.
    """
    return {
        "schema": SCHEMA,
        "command": command,
        "seed": seed,
        "git_sha": git_sha(),
        "environment": {
            "python": sys.version.split()[0],
            "cpus": os.cpu_count(),
        },
        "configs": configs or {},
        "results": results or {},
        "artifacts": list(artifacts or []),
        "extra": extra or {},
        "volatile": volatile or {},
    }


def manifest_core(manifest: dict) -> dict:
    """The deterministic core: volatile section and digest stripped,
    volatile artifacts' hashes nulled."""
    core = {
        k: v for k, v in manifest.items() if k not in ("volatile", "digest")
    }
    core["artifacts"] = [
        {**a, "sha256": None} if a.get("volatile") else dict(a)
        for a in manifest.get("artifacts", [])
    ]
    return core


def canonical_manifest(manifest: dict) -> str:
    """Canonical JSON of the core — the byte-comparable form."""
    return canonical_json(manifest_core(manifest))


def manifest_digest(manifest: dict) -> str:
    """SHA-256 over the canonical core."""
    return hashlib.sha256(canonical_manifest(manifest).encode()).hexdigest()


def write_manifest(manifest: dict, path) -> dict:
    """Stamp the core digest and write canonical JSON to ``path``.

    The file itself is sorted-key JSON with a fixed layout, so two
    manifests with equal cores differ only inside ``"volatile"``.
    """
    manifest = dict(manifest)
    manifest["digest"] = manifest_digest(manifest)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, sort_keys=True, indent=2, default=_coerce)
        + "\n"
    )
    return manifest


def _coerce(obj):
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"not manifest-serialisable: {type(obj).__name__}")


def load_manifest(path) -> dict:
    manifest = json.loads(pathlib.Path(path).read_text())
    if manifest.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported manifest schema {manifest.get('schema')!r}"
        )
    return manifest


def is_manifest(doc) -> bool:
    """Does this parsed JSON document look like a run manifest?"""
    return (
        isinstance(doc, dict)
        and doc.get("schema") == SCHEMA
        and "command" in doc
        and "artifacts" in doc
    )
