"""Causal span tracing: OpenTelemetry-style trees over TAP's hot paths.

A :class:`SpanTracer` issues trace/span ids and records *spans* —
named, timed intervals arranged in a tree: one trace per end-to-end
request (a tunnel send, a retrieval, a session round trip, an emulated
transmission), one child span per tunnel hop, and grandchildren for
the work a hop actually performs (``onion.peel``, ``dht.route``,
``hint.probe``, ``failover.repair``).  This is the attribution layer
the flat counters of :mod:`repro.obs.metrics` cannot provide: *where*
did one message's latency go?

Two time domains coexist:

* **wall clock** (``time.perf_counter``) — every span gets it for
  free; meaningful for the synchronous engine, where real computation
  (crypto, routing-table walks) is the cost;
* **simulated time** — spans whose cost is modelled (underlying-hop
  latency in Figure 6, the discrete-event emulation's clock) carry
  explicit ``sim_start``/``sim_end`` set via :meth:`Span.set_sim`;
  exports prefer the simulated domain when present.

Spans additionally carry a ``links`` attribute (physical-link count),
so simulated-cost attribution works even for wall-clock spans.

Context propagation is explicit: callers pass a parent :class:`Span`
(or :class:`SpanContext`) across layer boundaries.  Within one layer
the :meth:`SpanTracer.span` context manager maintains a current-span
stack, so nested substrates (e.g. ``PastryNetwork.route`` under a
forwarder hop span) attach to the right parent without threading a
context through every signature.

Disabled tracing is free: substrates hold ``tracer = None`` by default
and guard with a truthiness check; :data:`NULL_TRACER` is falsy, so
passing it instead of ``None`` also short-circuits the guards.

Export is Chrome trace-event JSON (``{"traceEvents": [...]}``) —
loadable in Perfetto or ``chrome://tracing`` — with each trace on its
own track and span/parent ids preserved in ``args`` so
:mod:`repro.obs.critical_path` can rebuild the trees.

**Redaction mode** keeps the exported format honest to TAP's threat
model: a span record at hop *i* may only name what an observer at that
hop sees.  Each span is tagged with an ``observer`` attribute
(``initiator`` / ``hop`` / ``exit``); redacted export strips the
attribute keys that viewpoint cannot know, so no single record links
the initiator to the responder (see :func:`redact_attrs`).  Trace ids
still correlate records of one request — redaction is about what each
*record* asserts, not about hiding that a request happened.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Iterator, NamedTuple


class SpanContext(NamedTuple):
    """The propagatable identity of a span (what crosses boundaries)."""

    trace_id: int
    span_id: int


class Span:
    """One named, timed node of a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start", "end", "sim_start", "sim_end", "attrs")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.sim_start: float | None = None
        self.sim_end: float | None = None
        self.attrs: dict = {}

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def set_sim(self, start: float, end: float) -> "Span":
        """Attach simulated-clock bounds (seconds); export prefers them."""
        self.sim_start = start
        self.sim_end = end
        return self

    @property
    def wall_duration(self) -> float:
        if self.end is None:
            raise ValueError("span not finished")
        return self.end - self.start

    @property
    def sim_duration(self) -> float | None:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def duration(self) -> float:
        """Simulated duration when set, else wall-clock duration."""
        sim = self.sim_duration
        return sim if sim is not None else self.wall_duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, parent={self.parent_id})")


class _NullSpan:
    """Absorbing stand-in: every mutation is a no-op."""

    __slots__ = ()
    trace_id = span_id = -1
    parent_id = None
    name = ""
    attrs: dict = {}

    def context(self) -> SpanContext:
        return SpanContext(-1, -1)

    def set(self, **attrs) -> "_NullSpan":
        return self

    def set_sim(self, start: float, end: float) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# redaction (anonymity-aware export)
# ----------------------------------------------------------------------

#: attribute keys that identify the initiator side of a request
INITIATOR_KEYS = frozenset({"initiator", "bid", "delivered", "matched_bid"})
#: attribute keys that identify the responder side
RESPONDER_KEYS = frozenset({"destination", "responder", "fid"})
#: attribute keys that identify intermediate infrastructure
HOP_KEYS = frozenset({"hop_node", "hop_id", "path", "src", "hinted", "dst"})


def redact_attrs(observer: str | None, attrs: dict) -> dict:
    """Strip the attribute keys the span's viewpoint cannot know.

    * ``initiator`` spans keep initiator identity but lose responder
      and hop identities (the initiator only ever contacts hop 1);
    * ``exit`` spans keep responder and hop identities but lose the
      initiator's (the exit cannot see past the tail hop);
    * ``hop`` spans (and untagged spans, conservatively) keep only
      their own infrastructure view — and also lose termination
      markers like ``delivered``, preserving §4's property that a
      reply's last hop is indistinguishable from a relay.

    No surviving record carries both an initiator and a responder key.
    """
    if observer == "initiator":
        drop = RESPONDER_KEYS | HOP_KEYS
    elif observer == "exit":
        drop = INITIATOR_KEYS
    else:
        drop = INITIATOR_KEYS | RESPONDER_KEYS
    return {k: v for k, v in attrs.items() if k not in drop}


# ----------------------------------------------------------------------
# phase taxonomy (shared with repro.obs.critical_path)
# ----------------------------------------------------------------------

#: canonical latency-attribution phases, in report order
PHASES = ("crypto", "routing", "hint-probe", "repair", "other")

_PHASE_PREFIXES = (
    ("onion.", "crypto"),
    ("crypto.", "crypto"),
    ("hint.", "hint-probe"),
    ("dht.", "routing"),
    ("exit.", "routing"),
    ("pastry.", "routing"),
    ("failover.", "repair"),
    ("past.", "repair"),
    ("session.reform", "repair"),
)


def phase_of(name: str) -> str:
    """Map a span name to its latency-attribution phase."""
    for prefix, phase in _PHASE_PREFIXES:
        if name.startswith(prefix):
            return phase
    return "other"


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
class SpanTracer:
    """Issues ids, times spans, keeps the finished-span ring.

    Ids are plain counters — deterministic, seed-free, and unique per
    tracer; anonymity lives in the *export redaction*, not in id
    unguessability (this is an observability artifact, not a wire
    protocol).
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 20, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("span capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self.finished: deque[Span] = deque(maxlen=capacity)
        #: total spans ever finished (>= len once the ring wrapped)
        self.completed = 0
        self._stack: list[Span] = []
        self._next_span = 0
        self._next_trace = 0

    # -- id plumbing ----------------------------------------------------
    def _new_ids(self, parent: SpanContext | None) -> tuple[int, int, int | None]:
        span_id = self._next_span
        self._next_span += 1
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            return trace_id, span_id, None
        return parent.trace_id, span_id, parent.span_id

    @staticmethod
    def _resolve(parent) -> SpanContext | None:
        if parent is None:
            return None
        if isinstance(parent, Span):
            return parent.context()
        if isinstance(parent, _NullSpan):
            return None
        return SpanContext(*parent)

    def current(self) -> Span | None:
        """Innermost span opened via the :meth:`span` context manager."""
        return self._stack[-1] if self._stack else None

    # -- span lifecycle -------------------------------------------------
    def start_trace(self, name: str, **attrs) -> Span:
        """Open a root span of a brand-new trace (ignores the stack)."""
        return self._start(name, None, attrs)

    def start_span(self, name: str, parent=None, **attrs) -> Span:
        """Open a span; ``parent=None`` attaches to the current stack
        span when one is open, else starts a new trace."""
        ctx = self._resolve(parent) if parent is not None else (
            self.current().context() if self._stack else None
        )
        return self._start(name, ctx, attrs)

    def _start(self, name: str, ctx: SpanContext | None, attrs: dict) -> Span:
        trace_id, span_id, parent_id = self._new_ids(ctx)
        span = Span(trace_id, span_id, parent_id, name, self._clock())
        if attrs:
            span.attrs.update(attrs)
        return span

    def finish(self, span: Span, **attrs) -> Span:
        """Close a span (idempotent end-time) and commit it to the ring."""
        if attrs:
            span.attrs.update(attrs)
        if span.end is None:
            span.end = self._clock()
        self.finished.append(span)
        self.completed += 1
        return span

    @contextmanager
    def span(self, name: str, parent=None, **attrs) -> Iterator[Span]:
        """Open/close a span around a block, maintaining the stack so
        nested substrates attach to the right parent implicitly."""
        s = self.start_span(name, parent=parent, **attrs)
        self._stack.append(s)
        try:
            yield s
        finally:
            self._stack.pop()
            self.finish(s)

    def add_span(
        self,
        name: str,
        parent=None,
        sim_start: float | None = None,
        sim_end: float | None = None,
        **attrs,
    ) -> Span:
        """Record an already-elapsed span in one call (used by the
        simulated-time instrumentation, where bounds are known)."""
        s = self.start_span(name, parent=parent, **attrs)
        if sim_start is not None and sim_end is not None:
            s.set_sim(sim_start, sim_end)
        s.end = s.start
        return self.finish(s)

    # -- access ---------------------------------------------------------
    def __bool__(self) -> bool:
        # Always truthy — without this, ``__len__`` would make an
        # *empty* tracer falsy and every ``if tracer:`` guard would
        # silently skip the first spans.  (NullTracer is the falsy one.)
        return True

    def __len__(self) -> int:
        return len(self.finished)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished)

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring bound."""
        return self.completed - len(self.finished)

    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id (insertion order kept)."""
        out: dict[int, list[Span]] = {}
        for span in self.finished:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def clear(self) -> None:
        self.finished.clear()
        self.completed = 0
        # id counters stay monotone so old exports never collide

    def absorb(self, spans: Iterable[Span]) -> int:
        """Adopt finished spans from another tracer (a parallel worker).

        Worker tracers allocate trace/span ids from their own counters,
        so the incoming ids are remapped by this tracer's current
        counters — parent links survive, and absorbing workers in trial
        order yields the same id assignment on every run.  Returns the
        number of spans absorbed.
        """
        span_base = self._next_span
        trace_base = self._next_trace
        max_span = -1
        max_trace = -1
        absorbed = 0
        for s in spans:
            remapped = Span(
                s.trace_id + trace_base,
                s.span_id + span_base,
                None if s.parent_id is None else s.parent_id + span_base,
                s.name,
                s.start,
            )
            remapped.end = s.end
            remapped.sim_start = s.sim_start
            remapped.sim_end = s.sim_end
            remapped.attrs = dict(s.attrs)
            self.finished.append(remapped)
            self.completed += 1
            absorbed += 1
            if s.span_id > max_span:
                max_span = s.span_id
            if s.trace_id > max_trace:
                max_trace = s.trace_id
        self._next_span = span_base + max_span + 1
        self._next_trace = trace_base + max_trace + 1
        return absorbed

    # -- export ---------------------------------------------------------
    def chrome_events(self, redact: bool = False) -> list[dict]:
        """Spans as Chrome trace-event dicts (``ph: "X"`` complete events).

        Wall-clock spans are re-based to the earliest wall start so
        timestamps are small; simulated spans use their own clock.
        Timestamps/durations are microseconds (floats allowed).
        """
        wall_epoch = min(
            (s.start for s in self.finished if s.sim_start is None),
            default=0.0,
        )
        events: list[dict] = []
        for s in self.finished:
            sim = s.sim_start is not None and s.sim_end is not None
            if sim:
                ts, dur = s.sim_start, s.sim_end - s.sim_start
            else:
                ts = s.start - wall_epoch
                dur = (s.end - s.start) if s.end is not None else 0.0
            observer = s.attrs.get("observer")
            attrs = redact_attrs(observer, s.attrs) if redact else dict(s.attrs)
            args = {
                "trace_id": s.trace_id,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "clock": "sim" if sim else "wall",
                **attrs,
            }
            events.append({
                "name": s.name,
                "cat": phase_of(s.name),
                "ph": "X",
                "ts": ts * 1e6,
                "dur": dur * 1e6,
                "pid": 1,
                "tid": s.trace_id,
                "args": args,
            })
        return events

    def export_chrome(self, redact: bool = False) -> dict:
        return {
            "traceEvents": self.chrome_events(redact=redact),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.spans",
                "redacted": redact,
                "dropped_spans": self.dropped,
            },
        }

    def to_json(self, redact: bool = False, indent: int | None = None) -> str:
        return json.dumps(self.export_chrome(redact=redact), indent=indent)

    def dump(self, path, redact: bool = False) -> int:
        """Write the Chrome trace JSON to ``path``; returns span count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(redact=redact))
            fh.write("\n")
        return len(self.finished)


class NullTracer:
    """Zero-cost tracer for the disabled state.

    Falsy, so ``if tracer:`` guards skip instrumentation entirely; for
    callers that invoke it anyway, every method is an absorbing no-op.
    """

    enabled = False
    capacity = 0
    completed = 0
    dropped = 0
    finished: tuple = ()

    def __bool__(self) -> bool:
        return False

    def current(self) -> None:
        return None

    def start_trace(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def finish(self, span, **attrs) -> _NullSpan:
        return NULL_SPAN

    @contextmanager
    def span(self, name: str, parent=None, **attrs) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def add_span(self, name: str, parent=None, sim_start=None, sim_end=None,
                 **attrs) -> _NullSpan:
        return NULL_SPAN

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def traces(self) -> dict:
        return {}

    def clear(self) -> None:
        pass

    def chrome_events(self, redact: bool = False) -> list[dict]:
        return []

    def export_chrome(self, redact: bool = False) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def to_json(self, redact: bool = False, indent: int | None = None) -> str:
        return json.dumps(self.export_chrome(redact=redact), indent=indent)

    def dump(self, path, redact: bool = False) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(redact=redact))
            fh.write("\n")
        return 0


#: shared no-op instance — pass where a tracer is required but tracing is off
NULL_TRACER = NullTracer()
