"""Declarative SLO gate over the consolidated report's indicators.

An SLO file is TOML (stdlib :mod:`tomllib`): one ``[slo.<name>]``
table per objective, each naming an indicator from
:func:`repro.obs.report.build_report` and bounding it::

    [slo.no-audit-violations]
    indicator = "audit.violations"
    max = 0

    [slo.chaos-effective-availability]
    indicator = "chaos.effective_availability"
    min = 0.85

    [slo.leg-latency-p99]
    indicator = "metrics.fig6.link_latency_s.p99"
    max = 0.25
    required = false        # skip (don't fail) when the indicator is absent

``required`` defaults to true: a missing indicator is a failure, so a
gate cannot silently pass because the run that produces its evidence
was dropped from CI.  ``tap-repro gate RESULTS_DIR --slo slo.toml``
exits 0 when every objective holds and 2 otherwise — the CI contract.
"""

from __future__ import annotations

import pathlib
import tomllib

#: exit code the gate returns on any SLO violation
GATE_EXIT_VIOLATION = 2


class SLOError(ValueError):
    """Malformed SLO file."""


def load_slos(path) -> list[dict]:
    """Parse an SLO TOML file into a list of objective dicts."""
    raw = tomllib.loads(pathlib.Path(path).read_text())
    tables = raw.get("slo")
    if not isinstance(tables, dict) or not tables:
        raise SLOError(f"{path}: no [slo.<name>] tables")
    out = []
    for name, spec in sorted(tables.items()):
        if not isinstance(spec, dict):
            raise SLOError(f"{path}: [slo.{name}] is not a table")
        indicator = spec.get("indicator")
        if not isinstance(indicator, str) or not indicator:
            raise SLOError(f"{path}: [slo.{name}] needs an 'indicator'")
        lo = spec.get("min")
        hi = spec.get("max")
        if lo is None and hi is None:
            raise SLOError(f"{path}: [slo.{name}] needs 'min' and/or 'max'")
        for bound, value in (("min", lo), ("max", hi)):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise SLOError(
                    f"{path}: [slo.{name}] '{bound}' must be a number"
                )
        out.append({
            "name": name,
            "indicator": indicator,
            "min": lo,
            "max": hi,
            "required": bool(spec.get("required", True)),
        })
    return out


def evaluate_slos(slos: list[dict], indicators: dict) -> list[dict]:
    """Evaluate each objective against the flat indicators dict.

    Returns one result per objective with ``status`` of ``"pass"``,
    ``"fail"``, or ``"missing"`` (absent indicator; a failure when the
    objective is required, otherwise informational).
    """
    results = []
    for slo in slos:
        value = indicators.get(slo["indicator"])
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            status = "missing"
        else:
            ok = True
            if slo["min"] is not None and value < slo["min"]:
                ok = False
            if slo["max"] is not None and value > slo["max"]:
                ok = False
            status = "pass" if ok else "fail"
        results.append({**slo, "value": value, "status": status})
    return results


def slo_violations(results: list[dict]) -> list[dict]:
    """The results that should fail the gate."""
    return [
        r for r in results
        if r["status"] == "fail"
        or (r["status"] == "missing" and r["required"])
    ]


def render_slo_results(results: list[dict]) -> str:
    """A fixed-width pass/fail table for the terminal."""
    name_w = max([len(r["name"]) for r in results] + [4])
    ind_w = max([len(r["indicator"]) for r in results] + [9])
    lines = [f"{'SLO':<{name_w}}  {'indicator':<{ind_w}}  "
             f"{'value':>12}  {'bound':>18}  status"]
    for r in results:
        bounds = []
        if r["min"] is not None:
            bounds.append(f">= {r['min']:g}")
        if r["max"] is not None:
            bounds.append(f"<= {r['max']:g}")
        value = "-" if r["value"] is None else f"{r['value']:g}"
        status = r["status"].upper()
        if r["status"] == "missing" and not r["required"]:
            status = "MISSING (optional)"
        lines.append(
            f"{r['name']:<{name_w}}  {r['indicator']:<{ind_w}}  "
            f"{value:>12}  {', '.join(bounds):>18}  {status}"
        )
    return "\n".join(lines)
