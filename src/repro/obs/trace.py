"""Structured event trace: a bounded ring buffer with JSONL export.

The hot paths append small dict-shaped events (hop located, hint
probed, replica copied, ...) tagged with a monotone sequence number.
The buffer is bounded, so tracing a long experiment keeps the most
recent ``capacity`` events — enough to reconstruct the tail of any
route while never growing without bound.

Events are plain data; export is JSON-lines (one event per line), the
format downstream latency-graph tooling ingests.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation."""

    seq: int
    kind: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, **self.fields}


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        #: total events ever recorded (>= len(self) once wrapped)
        self.recorded = 0

    def record(self, kind: str, **fields) -> TraceEvent:
        event = TraceEvent(self._seq, kind, fields)
        self._seq += 1
        self.recorded += 1
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # access / export
    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> Iterator[TraceEvent]:
        if kind is None:
            return iter(self._events)
        return (e for e in self._events if e.kind == kind)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.recorded - len(self._events)

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(e.to_dict(), default=str) for e in self._events
        ) + ("\n" if self._events else "")

    def dump(self, path) -> int:
        """Write JSON-lines to ``path``; returns the event count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
        return len(self._events)

    def absorb(self, events: Iterator[TraceEvent] | list[TraceEvent]) -> int:
        """Re-record events captured by another trace (a parallel worker).

        The events are re-sequenced under this trace's monotone ``seq``
        counter, so absorbing worker traces in trial order reproduces
        the numbering a serial run would have produced.  Returns the
        number of events absorbed.
        """
        absorbed = 0
        for event in events:
            self.record(event.kind, **event.fields)
            absorbed += 1
        return absorbed

    def clear(self) -> None:
        """Empty the ring and reset the eviction accounting.

        ``_seq`` stays monotone (event ids never repeat across clears)
        but ``recorded`` resets with the buffer, so ``dropped`` counts
        only events actually evicted by the ring bound — not the ones
        deliberately discarded here.
        """
        self._events.clear()
        self.recorded = 0
