"""Consolidated run report: one document per results directory.

``tap-repro report RESULTS_DIR`` walks a directory tree for run
manifests (:mod:`repro.obs.manifest`) and the artifacts they point at
— metrics snapshots, chaos availability reports, span traces — and
folds everything into a single report:

* **runs** — one entry per manifest: command, seed, git sha, per-table
  row counts and digests, headline summaries;
* **chaos** — availability / effective availability / MTTR per chaos
  report (policy and baseline arms kept separate);
* **phases** — the span critical-path phase breakdown of every trace
  artifact (via :mod:`repro.obs.critical_path`);
* **indicators** — one flat ``name -> number`` dict distilled from all
  of the above.  This is the surface the SLO gate
  (:mod:`repro.obs.slo`) evaluates, so the key scheme is contract:
  ``audit.*`` and ``metrics.<instrument>.<stat>`` from metrics
  snapshots, ``chaos.*`` worst-case across policy-arm chaos reports,
  and any ``summary`` keys the manifests recorded (e.g. ``scale.*``
  from the scale-churn runner).

Loose artifacts (a chaos report or metrics snapshot with no manifest
next to it) are still picked up by content sniffing, so the report
degrades gracefully on partial results directories.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.manifest import is_manifest, load_manifest

#: per-histogram statistics exported as indicators
_HIST_STATS = ("p50", "p95", "p99", "max", "count")


def _load_json(path: pathlib.Path):
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _is_metrics_snapshot(doc) -> bool:
    return (
        isinstance(doc, dict)
        and bool(doc)
        and all(
            isinstance(v, dict)
            and v.get("type") in ("counter", "gauge", "histogram")
            for v in doc.values()
        )
    )


def _is_chaos_report(doc) -> bool:
    return (
        isinstance(doc, dict)
        and "plan" in doc
        and "summary" in doc
        and "digest" in doc
    )


def scan_results_dir(root) -> dict:
    """Classify every file under ``root``.

    Returns ``{"manifests": [(path, doc)], "metrics": [(path, doc)],
    "chaos": [(path, doc)], "traces": [path]}``.  Manifest-referenced
    artifacts are resolved relative to their manifest; anything not
    referenced is classified by sniffing its content.
    """
    root = pathlib.Path(root)
    manifests: list[tuple[pathlib.Path, dict]] = []
    metrics: list[tuple[pathlib.Path, dict]] = []
    chaos: list[tuple[pathlib.Path, dict]] = []
    traces: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()

    for path in sorted(root.rglob("manifest.json")):
        try:
            doc = load_manifest(path)
        except (OSError, ValueError):
            continue
        if not is_manifest(doc):
            continue
        manifests.append((path, doc))
        seen.add(path.resolve())
        for entry in doc.get("artifacts", []):
            target = (path.parent / entry["path"]).resolve()
            if not target.is_file():
                continue
            seen.add(target)
            kind = entry.get("kind", "")
            if kind == "metrics":
                loaded = _load_json(target)
                if _is_metrics_snapshot(loaded):
                    metrics.append((target, loaded))
            elif kind == "chaos-report":
                loaded = _load_json(target)
                if _is_chaos_report(loaded):
                    chaos.append((target, loaded))
            elif kind == "trace":
                traces.append(target)

    for path in sorted(root.rglob("*.json")):
        if path.resolve() in seen or path.name == "manifest.json":
            continue
        doc = _load_json(path)
        if _is_chaos_report(doc):
            chaos.append((path.resolve(), doc))
        elif _is_metrics_snapshot(doc):
            metrics.append((path.resolve(), doc))
        elif isinstance(doc, dict) and "traceEvents" in doc:
            traces.append(path.resolve())
    return {
        "manifests": manifests,
        "metrics": metrics,
        "chaos": chaos,
        "traces": traces,
    }


def _merge_min(indicators: dict, key: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return
    if key in indicators:
        indicators[key] = min(indicators[key], value)
    else:
        indicators[key] = value


def _metrics_indicators(snapshots: list[dict]) -> dict:
    """Flatten metrics snapshots: counters sum, histogram stats worst-case."""
    out: dict = {}
    counters: dict[str, float] = {}
    for snap in snapshots:
        for name, inst in snap.items():
            if inst["type"] == "counter":
                counters[name] = counters.get(name, 0) + inst["value"]
            elif inst["type"] == "histogram" and inst.get("count"):
                for stat in _HIST_STATS:
                    key = f"metrics.{name}.{stat}"
                    # worst case across sources: stats are "lower is
                    # better" (latency, hops), so keep the max
                    out[key] = max(out.get(key, inst[stat]), inst[stat])
    for name, total in sorted(counters.items()):
        out[f"metrics.{name}"] = total
    if "metrics.obs.audit.violations" in out or any(
        "obs.audit.runs" in snap for snap in snapshots
    ):
        out["audit.runs"] = counters.get("obs.audit.runs", 0)
        out["audit.violations"] = counters.get("obs.audit.violations", 0)
    return out


def build_report(root) -> dict:
    """The consolidated report for one results directory."""
    root = pathlib.Path(root)
    found = scan_results_dir(root)

    runs = []
    indicators: dict = {}
    for path, doc in found["manifests"]:
        tables = {}
        for name, res in doc.get("results", {}).items():
            tables[name] = {
                "rows": res.get("rows"),
                "digest": res.get("digest"),
                "summary": res.get("summary", {}),
            }
            for key, value in (res.get("summary") or {}).items():
                # only namespaced keys ("scale.survivor_fraction") are
                # indicator contract; bare keys are informational
                if "." in key:
                    _merge_min(indicators, key, value)
        runs.append({
            "manifest": str(path.relative_to(root)),
            "command": doc.get("command"),
            "seed": doc.get("seed"),
            "git_sha": doc.get("git_sha"),
            "digest": doc.get("digest"),
            "tables": tables,
            "artifacts": len(doc.get("artifacts", [])),
            "wall_time_s": doc.get("volatile", {}).get("wall_time_s"),
        })

    chaos_entries = []
    for path, doc in found["chaos"]:
        s = doc["summary"]
        chaos_entries.append({
            "path": path.name,
            "plan": doc.get("plan"),
            "policy": doc.get("policy"),
            "seed": doc.get("seed"),
            "availability": s.get("availability"),
            "effective_availability": s.get("effective_availability"),
            "mttr_rounds": s.get("mttr_rounds"),
            "worst_outage_rounds": s.get("worst_outage_rounds"),
        })
        if doc.get("policy") != "baseline":
            _merge_min(indicators, "chaos.availability",
                       s.get("availability"))
            _merge_min(indicators, "chaos.effective_availability",
                       s.get("effective_availability"))
            mttr = s.get("mttr_rounds")
            if isinstance(mttr, (int, float)):
                indicators["chaos.mttr_rounds"] = max(
                    indicators.get("chaos.mttr_rounds", mttr), mttr
                )

    phases = []
    for path in found["traces"]:
        from repro.obs.critical_path import summarize_trace_file

        try:
            summary = summarize_trace_file(path)
        except (OSError, ValueError, KeyError):
            continue
        phases.append({
            "path": path.name,
            "spans": summary["spans"],
            "traces": summary["traces"],
            "end_to_end_s": summary["end_to_end_s"],
            "breakdown": summary["breakdown"],
        })

    indicators.update(_metrics_indicators([doc for _, doc in found["metrics"]]))
    indicators["runs.count"] = len(runs)
    indicators["chaos.count"] = len(chaos_entries)

    return {
        "root": str(root),
        "runs": runs,
        "chaos": chaos_entries,
        "phases": phases,
        "metrics_files": [str(p) for p, _ in found["metrics"]],
        "indicators": dict(sorted(indicators.items())),
    }


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_report(report: dict) -> str:
    """The consolidated report as markdown."""
    lines = [f"# Run report — `{report['root']}`", ""]

    lines.append(f"## Runs ({len(report['runs'])} manifests)")
    lines.append("")
    for run in report["runs"]:
        sha = (run["git_sha"] or "unknown")[:12]
        lines.append(
            f"- **{run['command']}** seed={run['seed']} git={sha} "
            f"({run['manifest']}, {run['artifacts']} artifacts)"
        )
        for name, table in run["tables"].items():
            digest = (table["digest"] or "")[:16]
            lines.append(f"  - `{name}`: {table['rows']} rows, "
                         f"digest `{digest}`")
            for key, value in (table["summary"] or {}).items():
                lines.append(f"    - {key} = {_fmt(value)}")
    if not report["runs"]:
        lines.append("- (none)")
    lines.append("")

    if report["chaos"]:
        lines.append(f"## Chaos ({len(report['chaos'])} reports)")
        lines.append("")
        lines.append("| plan | policy | availability | effective | "
                     "MTTR (rounds) |")
        lines.append("|---|---|---|---|---|")
        for entry in report["chaos"]:
            lines.append(
                f"| {entry['plan']} | {entry['policy']} "
                f"| {_fmt(entry['availability'])} "
                f"| {_fmt(entry['effective_availability'])} "
                f"| {_fmt(entry['mttr_rounds'])} |"
            )
        lines.append("")

    if report["phases"]:
        lines.append("## Span phase breakdown")
        lines.append("")
        for entry in report["phases"]:
            lines.append(f"- `{entry['path']}`: {entry['spans']} spans, "
                         f"{entry['traces']} traces, "
                         f"{entry['end_to_end_s']:.6f} s end-to-end")
            for row in entry["breakdown"]:
                lines.append(
                    f"  - {row['phase']}: {row['time_s']:.6f} s "
                    f"({row['share']})"
                )
        lines.append("")

    lines.append("## Indicators")
    lines.append("")
    if report["indicators"]:
        lines.append("| indicator | value |")
        lines.append("|---|---|")
        for key, value in report["indicators"].items():
            lines.append(f"| `{key}` | {_fmt(value)} |")
    else:
        lines.append("(none)")
    lines.append("")
    return "\n".join(lines)
