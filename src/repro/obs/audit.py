"""Invariant auditor: systematic health checks after membership events.

Wraps :meth:`repro.past.replication.ReplicatedStore.verify_invariants`
and adds the Pastry-level checks the store cannot see:

* ``sorted-alive`` — the network's ``_sorted_alive`` index is strictly
  ascending and agrees exactly with per-node ``alive`` flags;
* ``leaf-liveness`` / ``table-liveness`` — no alive node references a
  dead node in its leaf set or routing table (holds when the network
  runs eager repair, the stand-in for Pastry's maintenance protocol);
* ``leaf-symmetry`` — every alive node's leaf set contains its
  immediate ring predecessor and successor, and they contain it back
  (the minimal property that makes closest-key routing terminate at
  the true root);
* ``storage-index`` — every object physically present on an *alive*
  node is attributed to that node by the store's holder index, and
  vice versa (dead nodes legitimately keep unreachable stale copies
  until revival reconciles them).

The auditor is cheap enough to run after every membership event in an
experiment (``O(N·|L| + objects)``); wire it through
:meth:`repro.core.system.TapSystem.enable_auditing` or run it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pastry.network import PastryNetwork


class InvariantViolationError(AssertionError):
    """Raised by :meth:`InvariantAuditor.assert_clean` on violations."""


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    context: str = ""
    violations: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        head = f"audit[{self.context or 'adhoc'}]: "
        if self.clean:
            return head + f"clean ({self.checks_run} checks)"
        return head + f"{len(self.violations)} violation(s)\n" + "\n".join(
            f"  - {v}" for v in self.violations
        )


class InvariantAuditor:
    """Run overlay + storage invariant checks over live state."""

    def __init__(
        self,
        network: PastryNetwork,
        store=None,
        metrics=None,
        check_liveness: bool | None = None,
    ):
        self.network = network
        self.store = store
        self.metrics = metrics
        #: liveness of leaf/table references is only an invariant when
        #: the network eagerly repairs; lazily-repairing overlays hold
        #: stale references by design until routing discovers them.
        self.check_liveness = (
            network.eager_repair if check_liveness is None else check_liveness
        )
        #: reports accumulated by :meth:`run` (most recent last)
        self.history: list[AuditReport] = []

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self, context: str = "") -> AuditReport:
        report = AuditReport(context=context)
        checks = [self._check_sorted_alive, self._check_leaf_sets]
        if self.check_liveness:
            checks.append(self._check_reference_liveness)
        if self.store is not None:
            checks.append(self._check_store)
        for check in checks:
            report.checks_run += 1
            check(report)
        self.history.append(report)
        if self.metrics is not None:
            self.metrics.counter("obs.audit.runs").inc()
            self.metrics.counter("obs.audit.violations").inc(
                len(report.violations)
            )
        return report

    def assert_clean(self, context: str = "") -> AuditReport:
        report = self.run(context)
        if not report.clean:
            raise InvariantViolationError(str(report))
        return report

    # ------------------------------------------------------------------
    # pastry checks
    # ------------------------------------------------------------------
    def _check_sorted_alive(self, report: AuditReport) -> None:
        ids = self.network.alive_ids
        for prev, cur in zip(ids, ids[1:]):
            if prev >= cur:
                report.violations.append(
                    f"sorted-alive: index not strictly ascending at {cur:#x}"
                )
        indexed = set(ids)
        actual = {
            nid for nid, node in self.network.nodes.items() if node.alive
        }
        for nid in indexed - actual:
            report.violations.append(
                f"sorted-alive: {nid:#x} indexed alive but node is dead"
            )
        for nid in actual - indexed:
            report.violations.append(
                f"sorted-alive: {nid:#x} alive but missing from index"
            )

    def _check_leaf_sets(self, report: AuditReport) -> None:
        """Immediate-neighbour coverage and symmetry."""
        ids = self.network.alive_ids
        n = len(ids)
        if n < 2:
            return
        for pos, nid in enumerate(ids):
            node = self.network.nodes[nid]
            for neighbour in (ids[(pos + 1) % n], ids[(pos - 1) % n]):
                if neighbour == nid:
                    continue
                if neighbour not in node.leaf_set:
                    report.violations.append(
                        f"leaf-symmetry: {nid:#x} missing immediate "
                        f"neighbour {neighbour:#x}"
                    )

    def _check_reference_liveness(self, report: AuditReport) -> None:
        for nid in self.network.alive_ids:
            node = self.network.nodes[nid]
            for dead in node.leaf_set.members:
                if not self.network.is_alive(dead):
                    report.violations.append(
                        f"leaf-liveness: {nid:#x} holds dead leaf {dead:#x}"
                    )
            for dead in node.routing_table.entries:
                if not self.network.is_alive(dead):
                    report.violations.append(
                        f"table-liveness: {nid:#x} holds dead entry {dead:#x}"
                    )

    # ------------------------------------------------------------------
    # storage checks
    # ------------------------------------------------------------------
    def _check_store(self, report: AuditReport) -> None:
        store = self.store
        report.violations.extend(
            f"replica-set: {problem}" for problem in store.verify_invariants()
        )
        # index -> storage: every attributed live holder really holds it
        for key in store.all_keys():
            for holder in store.holders(key):
                if not self.network.is_alive(holder):
                    continue
                if not store.storage_of(holder).contains(key):
                    report.violations.append(
                        f"storage-index: {holder:#x} indexed for "
                        f"{key:#x} but holds no copy"
                    )
        # storage -> index: no alive node holds an unattributed object
        for nid in self.network.alive_ids:
            storage = store.storages.get(nid)
            if storage is None:
                continue
            for key in storage.keys():
                if nid not in store.holders(key):
                    report.violations.append(
                        f"storage-index: {nid:#x} holds stale copy of "
                        f"{key:#x} absent from the holder index"
                    )
