"""Message-passing façade over the event kernel.

Nodes register a handler; ``send`` schedules delivery after the link's
propagation + serialization delay.  Sends to a dead or unknown address
are silently dropped (like UDP into the void) unless the caller
registers a drop callback — TAP's fault-tolerance logic is exercised by
exactly these drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simnet.events import Simulator
from repro.simnet.topology import Topology
from repro.simnet.transport import transfer_time

Handler = Callable[["SimNetwork", int, int, Any], None]


@dataclass
class SimMessage:
    """Bookkeeping record for an in-flight or delivered message."""

    src: int
    dst: int
    payload: Any
    size_bits: float
    sent_at: float
    delivered_at: float | None = None
    dropped: bool = False
    meta: dict = field(default_factory=dict)


class SimNetwork:
    """Registry of addressable nodes on a shared simulator/topology."""

    def __init__(self, simulator: Simulator, topology: Topology):
        self.simulator = simulator
        self.topology = topology
        self._handlers: dict[int, Handler] = {}
        self._alive: dict[int, bool] = {}
        self.delivered_count = 0
        self.dropped_count = 0
        self.bits_sent = 0.0
        self.on_drop: Callable[[SimMessage], None] | None = None
        #: optional :class:`repro.faults.SimNetFaultInjector`; consulted
        #: per physical send when installed (see
        #: :meth:`repro.core.emulation.TapEmulation.install_faults`)
        self.faults = None

    # -- membership ----------------------------------------------------
    def attach(self, address: int, handler: Handler) -> None:
        """Register a node.  Re-attaching an address revives it."""
        self._handlers[address] = handler
        self._alive[address] = True

    def detach(self, address: int) -> None:
        """Remove a node entirely (leaves no tombstone)."""
        self._handlers.pop(address, None)
        self._alive.pop(address, None)

    def fail(self, address: int) -> None:
        """Mark a node dead without removing it (it can be revived)."""
        if address in self._alive:
            self._alive[address] = False

    def revive(self, address: int) -> None:
        if address in self._handlers:
            self._alive[address] = True

    def is_alive(self, address: int) -> bool:
        return self._alive.get(address, False)

    @property
    def addresses(self) -> list[int]:
        return [a for a, alive in self._alive.items() if alive]

    # -- messaging -----------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, size_bits: float = 8 * 1024) -> SimMessage:
        """Schedule delivery of ``payload`` from ``src`` to ``dst``.

        Liveness is checked at *delivery* time, so a node failing while
        a message is in flight causes a drop — the situation TAP's
        replica fail-over must handle.
        """
        record = SimMessage(src, dst, payload, size_bits, self.simulator.now)
        self.bits_sent += size_bits
        if src == dst:
            delay = 0.0
        else:
            link = self.topology.link(src, dst)
            delay = transfer_time(size_bits, link.latency_s, link.bandwidth_bps)
        if self.faults is not None:
            verdict = self.faults.on_message(record, delay)
            if verdict is not None:
                if verdict.drop:
                    # Silent UDP-style loss: the message just never
                    # arrives.  Crucially this does NOT fire ``on_drop``
                    # (the dead-neighbour discovery path) — transient
                    # loss must not poison routing tables.
                    record.meta["fault"] = "drop"
                    self.simulator.schedule(delay, self._drop_injected, record)
                    return record
                delay += verdict.extra_delay_s
                if verdict.corrupt:
                    self.faults.corrupt_payload(record)
                if verdict.duplicate:
                    dup = SimMessage(
                        src, dst, record.payload, size_bits,
                        self.simulator.now, meta={"fault": "duplicate"},
                    )
                    self.simulator.schedule(
                        delay + verdict.duplicate_gap_s, self._deliver, dup
                    )
        self.simulator.schedule(delay, self._deliver, record)
        return record

    def _drop_injected(self, record: SimMessage) -> None:
        record.dropped = True
        self.dropped_count += 1

    def _deliver(self, record: SimMessage) -> None:
        handler = self._handlers.get(record.dst)
        if handler is None or not self._alive.get(record.dst, False):
            record.dropped = True
            self.dropped_count += 1
            if self.on_drop is not None:
                self.on_drop(record)
            return
        record.delivered_at = self.simulator.now
        self.delivered_count += 1
        handler(self, record.src, record.dst, record.payload)
