"""Discrete-event network simulation substrate.

The paper evaluates TAP "on a network emulation environment, through
which the instances of the node software communicate", with per-link
random latency approximating the Internet and 1.5 Mb/s links (§7.3).
This package provides the equivalent:

* :mod:`repro.simnet.events` — a deterministic discrete-event kernel
  (heap-based scheduler with a simulated clock);
* :mod:`repro.simnet.topology` — per-link latency/bandwidth models with
  O(1) memory (latencies are hash-derived on demand, so a 10^4-node
  all-pairs topology needs no N² table);
* :mod:`repro.simnet.transport` — message/file transfer-time models
  (store-and-forward and pipelined/chunked);
* :mod:`repro.simnet.network` — a message-passing façade that delivers
  payloads to node handlers through the event kernel.
"""

from repro.simnet.events import Simulator, Event, SimulationError
from repro.simnet.topology import Topology, UniformLatencyModel, LinkSpec
from repro.simnet.transport import (
    TransferModel,
    transfer_time,
    path_transfer_time,
    serialization_delay,
)
from repro.simnet.network import SimNetwork, SimMessage

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Topology",
    "UniformLatencyModel",
    "LinkSpec",
    "TransferModel",
    "transfer_time",
    "path_transfer_time",
    "serialization_delay",
    "SimNetwork",
    "SimMessage",
]
