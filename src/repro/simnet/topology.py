"""Link latency/bandwidth models.

The paper: "Each link in the network had a random latency from 10 ms to
230 ms, randomly selected in a fashion that approximates an Internet
network [14].  All links had a simulated bandwidth of 1.5 Mb/s."

Storing an all-pairs latency table for 10^4 nodes would need 10^8
entries, so latencies are derived on demand from a keyed hash of the
(unordered) endpoint pair: O(1) memory, symmetric, and deterministic
for a given topology seed — the same idiom the HPC guides recommend
(compute over tabulate when the computation is cheap).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

DEFAULT_MIN_LATENCY_S = 0.010
DEFAULT_MAX_LATENCY_S = 0.230
DEFAULT_BANDWIDTH_BPS = 1_500_000.0  # 1.5 Mb/s, as in the paper


@dataclass(frozen=True)
class LinkSpec:
    """Resolved properties of one (directed-use, symmetric-value) link."""

    latency_s: float
    bandwidth_bps: float


class UniformLatencyModel:
    """Uniform per-pair latency in ``[min_latency, max_latency]``.

    A 64-bit hash of ``(seed, min(a,b), max(a,b))`` is mapped to the
    interval, so ``latency(a, b) == latency(b, a)`` and draws for
    distinct pairs are independent to hash quality.
    """

    def __init__(
        self,
        seed: int,
        min_latency_s: float = DEFAULT_MIN_LATENCY_S,
        max_latency_s: float = DEFAULT_MAX_LATENCY_S,
    ):
        if min_latency_s < 0 or max_latency_s < min_latency_s:
            raise ValueError("need 0 <= min_latency <= max_latency")
        self.seed = int(seed)
        self.min_latency_s = float(min_latency_s)
        self.max_latency_s = float(max_latency_s)

    def latency(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        lo, hi = (a, b) if a <= b else (b, a)
        digest = hashlib.sha256(
            b"link" + self.seed.to_bytes(8, "big")
            + lo.to_bytes(16, "big") + hi.to_bytes(16, "big")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return self.min_latency_s + unit * (self.max_latency_s - self.min_latency_s)


class Topology:
    """A set of node addresses plus the latency/bandwidth model.

    Node addresses are opaque ints (the reproduction uses Pastry
    nodeids directly, but any int works).  ``link(a, b)`` returns the
    resolved :class:`LinkSpec` for the pair.
    """

    def __init__(
        self,
        seed: int,
        min_latency_s: float = DEFAULT_MIN_LATENCY_S,
        max_latency_s: float = DEFAULT_MAX_LATENCY_S,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self._latency_model = UniformLatencyModel(seed, min_latency_s, max_latency_s)
        self.bandwidth_bps = float(bandwidth_bps)

    @property
    def min_latency_s(self) -> float:
        return self._latency_model.min_latency_s

    @property
    def max_latency_s(self) -> float:
        return self._latency_model.max_latency_s

    def latency(self, a: int, b: int) -> float:
        """One-way propagation delay between two addresses (seconds)."""
        return self._latency_model.latency(a, b)

    def link(self, a: int, b: int) -> LinkSpec:
        return LinkSpec(self.latency(a, b), self.bandwidth_bps)

    def path_latency(self, path: list[int]) -> float:
        """Sum of propagation delays along consecutive path elements."""
        return sum(self.latency(u, v) for u, v in zip(path, path[1:]))
