"""Transfer-time models over a topology path.

Two classic models are provided:

* ``STORE_AND_FORWARD`` — every relay receives the complete message
  before forwarding it: ``sum(latency_i) + hops * size/bandwidth``.
  This matches a Java emulation that sends whole application messages
  hop by hop (the paper's setting), and is the Figure-6 default.
* ``PIPELINED`` — the message is cut into chunks that stream through
  the path (cut-through at chunk granularity):
  ``sum(latency_i) + size/bandwidth + (hops-1) * chunk/bandwidth``.
"""

from __future__ import annotations

from enum import Enum

from repro.simnet.topology import Topology


class TransferModel(Enum):
    STORE_AND_FORWARD = "store-and-forward"
    PIPELINED = "pipelined"


DEFAULT_CHUNK_BITS = 8 * 1024 * 8  # 8 KiB chunks for the pipelined model


def serialization_delay(size_bits: float, bandwidth_bps: float) -> float:
    """Time to push ``size_bits`` onto a ``bandwidth_bps`` link."""
    if size_bits < 0:
        raise ValueError("size must be non-negative")
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return size_bits / bandwidth_bps


def transfer_time(
    size_bits: float,
    latency_s: float,
    bandwidth_bps: float,
) -> float:
    """One-hop transfer: propagation plus serialization."""
    if latency_s < 0:
        raise ValueError("latency must be non-negative")
    return latency_s + serialization_delay(size_bits, bandwidth_bps)


def path_transfer_time(
    topology: Topology,
    path: list[int],
    size_bits: float,
    model: TransferModel = TransferModel.STORE_AND_FORWARD,
    chunk_bits: float = DEFAULT_CHUNK_BITS,
) -> float:
    """End-to-end time to move ``size_bits`` along ``path``.

    ``path`` lists node addresses including source and destination; a
    single-element path (already there) costs zero.
    """
    if not path:
        raise ValueError("path must contain at least the source")
    hops = len(path) - 1
    if hops == 0:
        return 0.0
    propagation = topology.path_latency(path)
    serial = serialization_delay(size_bits, topology.bandwidth_bps)
    if model is TransferModel.STORE_AND_FORWARD:
        return propagation + hops * serial
    if model is TransferModel.PIPELINED:
        if chunk_bits <= 0:
            raise ValueError("chunk size must be positive")
        chunk = min(chunk_bits, size_bits) if size_bits > 0 else 0.0
        chunk_serial = serialization_delay(chunk, topology.bandwidth_bps)
        return propagation + serial + (hops - 1) * chunk_serial
    raise ValueError(f"unknown transfer model {model!r}")
