"""Deterministic discrete-event kernel.

A minimal but complete simulation core: events are ``(time, seq)``
ordered (FIFO among simultaneous events, so runs are reproducible),
events may be cancelled, and the clock only moves forward.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (negative delays, running twice, …)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Heap-based event loop with a simulated clock (seconds)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at ``now + delay``; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        event = Event(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule at an absolute simulated time (must not be in the past)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        return self.schedule(time - self._now, callback, *args)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run one event.  Returns False when the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.processed_events += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue (optionally bounded by time or event count).

        Returns the simulated time when the run stopped.  ``until``
        advances the clock to exactly that time even if the queue
        empties earlier, matching classic DES semantics.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self)})"
