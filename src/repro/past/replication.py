"""Replication manager: keep every key on its k closest alive nodes.

This is the aggregate behaviour of FreePastry's per-node replication
manager.  The store subscribes to membership changes
(:meth:`on_fail`, :meth:`on_join`) and migrates replicas so the
invariant

    ``holders(key) == the k alive nodes numerically closest to key``

is restored after each event — provided at least one holder survived
to copy from.  If all ``k`` holders die before repair, the object is
lost: exactly the failure mode TAP's Figure 2 quantifies.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from contextlib import nullcontext
from typing import Any, Callable, Iterable

from repro.past.interface import repair_latency_s, value_nbytes
from repro.past.storage import Storage, StorageError, StoredObject
from repro.pastry.network import PastryNetwork
from repro.util.ids import ID_SPACE, ring_distance


class ReplicationError(RuntimeError):
    """Raised when an operation cannot satisfy replication invariants."""


class ReplicatedStore:
    """k-closest replicated storage over a :class:`PastryNetwork`.

    A single store manages all objects in the overlay; per-node
    :class:`Storage` instances hold the actual replicas, so reads go
    through real node-local state (a malicious holder *does* see the
    plaintext object — the property TAP's collusion analysis needs).
    """

    def __init__(
        self,
        network: PastryNetwork,
        replication_factor: int = 3,
        metrics=None,
        tracer=None,
    ):
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.network = network
        self.k = replication_factor
        #: optional :class:`repro.obs.MetricsRegistry`
        self.metrics = metrics
        #: optional :class:`repro.obs.SpanTracer`; membership repairs
        #: become ``failover.repair`` spans
        self.tracer = tracer
        #: per-node replica storage, created lazily by
        #: :meth:`storage_of` — forked systems (repro.perf.snapshot)
        #: only ever pay for the nodes that actually hold objects
        self.storages: dict[int, Storage] = {}
        #: global index key -> set of node ids currently holding it
        self._holders: dict[int, set[int]] = {}
        self._sorted_keys: list[int] = []
        #: observers notified as (event, key, node_id) when a replica is
        #: placed; the collusion adversary subscribes here.
        self.on_replica_placed: list[Callable[[int, int], None]] = []
        # replica_set/root memoisation, valid for one membership epoch:
        # the repair loops recompute the same k-closest sets for the
        # same keys many times between membership changes.
        self._cache_epoch = -1
        self._replica_set_cache: dict[int, tuple[list[int], frozenset[int]]] = {}
        self._root_cache: dict[int, int] = {}

    def _fresh_caches(self) -> None:
        epoch = self.network.membership_epoch
        if epoch != self._cache_epoch:
            self._replica_set_cache.clear()
            self._root_cache.clear()
            self._cache_epoch = epoch

    def _replica_set_entry(self, key: int) -> tuple[list[int], frozenset[int]]:
        self._fresh_caches()
        entry = self._replica_set_cache.get(key)
        if entry is None:
            members = self.network.replica_candidates(key, self.k)
            entry = self._replica_set_cache[key] = (members, frozenset(members))
            if self.metrics is not None:
                self.metrics.counter("past.replica_set.misses").inc()
        elif self.metrics is not None:
            self.metrics.counter("past.replica_set.hits").inc()
        return entry

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _charge_repair(self, objects: int, nbytes: int) -> None:
        """Account one repair action: replicas moved, bytes shipped,
        and the virtual transfer latency at the nominal link bandwidth
        (:data:`repro.past.interface.REPAIR_BANDWIDTH_BPS`) — the same
        indicator scheme the erasure backend reports, so the two
        repair-bandwidth profiles compare directly."""
        if self.metrics is None or not objects:
            return
        self.metrics.counter("past.repair.objects_moved").inc(objects)
        self.metrics.counter("past.repair.bytes_moved").inc(nbytes)
        self.metrics.histogram("past.repair.latency_s").observe(
            repair_latency_s(nbytes)
        )

    def storage_of(self, node_id: int) -> Storage:
        store = self.storages.get(node_id)
        if store is None:
            store = self.storages[node_id] = Storage(node_id)
        return store

    def replica_set(self, key: int) -> list[int]:
        """The *intended* replica set right now (k closest alive).

        Memoised per membership epoch — callers get a fresh copy, so
        mutating the return value never corrupts the cache.
        """
        return list(self._replica_set_entry(key)[0])

    def replica_membership(self, key: int) -> frozenset[int]:
        """The intended replica set as a frozenset, for membership
        tests (same epoch-scoped cache as :meth:`replica_set`)."""
        return self._replica_set_entry(key)[1]

    def holders(self, key: int) -> set[int]:
        """Nodes currently holding a replica (may lag the intended set)."""
        return set(self._holders.get(key, ()))

    def root(self, key: int) -> int:
        """The replica root — TAP's tunnel hop node for this key.

        Memoised per membership epoch alongside :meth:`replica_set`.
        """
        self._fresh_caches()
        root = self._root_cache.get(key)
        if root is None:
            root = self._root_cache[key] = self.network.closest_alive(key)
        return root

    def _place(self, node_id: int, obj: StoredObject) -> None:
        self.storage_of(node_id).insert(obj, overwrite=True)
        holders = self._holders.setdefault(obj.key, set())
        if not holders:
            insort(self._sorted_keys, obj.key)
        holders.add(node_id)
        if self.metrics is not None:
            self.metrics.counter("past.replica.placements").inc()
        for callback in self.on_replica_placed:
            callback(obj.key, node_id)

    def _unplace(self, node_id: int, key: int) -> None:
        self.storage_of(node_id).drop(key)
        holders = self._holders.get(key)
        if holders is not None:
            holders.discard(node_id)
            if not holders:
                self._forget_key(key)

    def _forget_key(self, key: int) -> None:
        self._holders.pop(key, None)
        pos = bisect_left(self._sorted_keys, key)
        if pos < len(self._sorted_keys) and self._sorted_keys[pos] == key:
            del self._sorted_keys[pos]

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def insert(
        self,
        key: int,
        value: Any,
        delete_proof_hash: bytes | None = None,
        meta: dict | None = None,
    ) -> StoredObject:
        """Insert an object onto the k closest alive nodes."""
        if key in self._holders:
            raise ReplicationError(f"key {key:#x} already inserted")
        obj = StoredObject(key, value, delete_proof_hash, meta or {})
        for node_id in self.replica_set(key):
            self._place(node_id, obj)
        return obj

    def fetch(self, key: int, requester_id: int | None = None) -> StoredObject:
        """Fetch from the replica root (fail-over to any live holder).

        If ``requester_id`` is given, enforce TAP's THA access rule
        (§3.1): only nodes in the replica set may read the object
        through the overlay.  (Owners read nothing — they already know
        their THAs; they only ever *delete*, presenting PW.)
        """
        holders = self._holders.get(key)
        if not holders:
            raise StorageError(f"key {key:#x} not stored anywhere")
        live = [h for h in holders if self.network.is_alive(h)]
        if not live:
            raise StorageError(f"all replicas of {key:#x} are dead")
        if requester_id is not None and requester_id not in self.replica_membership(key):
            raise ReplicationError(
                f"node {requester_id:#x} is outside the replica set of {key:#x}"
            )
        best = min(live, key=lambda h: (ring_distance(h, key), h))
        return self.storage_of(best).lookup(key)

    def delete(self, key: int, proof: bytes) -> bool:
        """Delete from every live holder given the owner's PW (§3.4)."""
        holders = list(self._holders.get(key, ()))
        if not holders:
            return False
        deleted_any = False
        for node_id in holders:
            if self.storage_of(node_id).delete(key, proof):
                self._unplace(node_id, key)
                deleted_any = True
        return deleted_any

    def exists(self, key: int) -> bool:
        """Reachable: at least one *live* holder has the object."""
        return any(
            self.network.is_alive(h) for h in self._holders.get(key, ())
        )

    def all_keys(self) -> list[int]:
        return list(self._sorted_keys)

    # ------------------------------------------------------------------
    # membership events
    # ------------------------------------------------------------------
    def on_fail(self, node_id: int) -> None:
        """Re-replicate every object the failed node held.

        Call *after* ``network.fail(node_id)``.  Objects whose live
        holders all vanished are lost (and dropped from the index).
        """
        storage = self.storages.get(node_id)
        if storage is None:
            return
        if self.metrics is not None:
            self.metrics.counter("past.repair.on_fail").inc()
        tr = self.tracer
        cm = tr.span("failover.repair", observer="hop", event="fail",
                     hop_node=node_id) if tr else nullcontext()
        with cm as span:
            copied = lost = 0
            for key in storage.keys():
                holders = self._holders.get(key, set())
                holders.discard(node_id)
                live = [h for h in holders if self.network.is_alive(h)]
                if not live:
                    self._forget_key(key)
                    lost += 1
                    if self.metrics is not None:
                        self.metrics.counter("past.objects.lost").inc()
                    continue
                # Copy from the live holder numerically closest to the key
                # (ties by id): the same deterministic choice fetch/on_join
                # make, so re-replication traces are seed-stable regardless
                # of set-iteration order.
                source = self.storage_of(
                    min(live, key=lambda h: (ring_distance(h, key), h))
                ).lookup(key)
                moved = 0
                for target in self.replica_set(key):
                    if target not in holders:
                        self._place(target, source)
                        moved += 1
                copied += moved
                self._charge_repair(moved, moved * value_nbytes(source.value))
            if span is not None:
                span.set(replicas_copied=copied, objects_lost=lost)
        # The dead node keeps its (now unreachable) local copies; if it
        # ever rejoins, on_join/on_revive will reconcile.

    def on_join(self, node_id: int) -> None:
        """Hand the newcomer the replicas it is now responsible for.

        Call *after* ``network.join(node_id)``.  Also trims holders
        that dropped out of the intended k-closest set, and purges any
        stale local copies left over if the id previously lived (and
        died) in the overlay.
        """
        if self.metrics is not None:
            self.metrics.counter("past.repair.on_join").inc()
        tr = self.tracer
        cm = tr.span("failover.repair", observer="hop", event="join",
                     hop_node=node_id) if tr else nullcontext()
        with cm as span:
            purged = self._reconcile_storage(node_id)
            self._adopt(node_id)
            if span is not None:
                span.set(stale_purged=purged)

    def on_revive(self, node_id: int) -> None:
        """Reconcile a node returning from the dead with stale storage.

        Call *after* ``network.revive(node_id)``.  Two things happened
        while the node was away that its local storage cannot know:

        * objects were *deleted* (the owner presented PW to the live
          holders; §3.4) — keeping the local copy would resurrect a
          deleted object the moment the node is locally readable again;
        * replicas were handed off to other nodes — the returning copy
          is no longer attributed to this node by the index, and a §5
          hint probe would wrongly treat the node as a current holder.

        Both cases are "objects the holder index does not attribute to
        this node": drop them, then adopt whatever the node is *now*
        responsible for (same logic as a fresh join).
        """
        if self.metrics is not None:
            self.metrics.counter("past.repair.on_revive").inc()
        tr = self.tracer
        cm = tr.span("failover.repair", observer="hop", event="revive",
                     hop_node=node_id) if tr else nullcontext()
        with cm as span:
            purged = self._reconcile_storage(node_id)
            self._adopt(node_id)
            if span is not None:
                span.set(stale_purged=purged)

    def _reconcile_storage(self, node_id: int) -> int:
        """Drop local objects the holder index does not attribute to
        ``node_id``; returns how many were purged."""
        storage = self.storages.get(node_id)
        if storage is None:
            return 0
        purged = 0
        for key in storage.keys():
            if node_id not in self._holders.get(key, ()):
                storage.drop(key)
                purged += 1
        if purged and self.metrics is not None:
            self.metrics.counter("past.replica.stale_purged").inc(purged)
        return purged

    def _adopt(self, node_id: int) -> None:
        """Hand ``node_id`` the replicas it is now responsible for and
        trim holders that dropped out of the intended k-closest set."""
        affected = self._keys_near(node_id)
        for key in affected:
            holders = self.holders(key)
            live = [h for h in holders if self.network.is_alive(h)]
            if not live:
                continue
            intended = self.replica_membership(key)
            if node_id not in intended:
                continue
            source = self.storage_of(
                min(live, key=lambda h: (ring_distance(h, key), h))
            ).lookup(key)
            self._place(node_id, source)
            self._charge_repair(1, value_nbytes(source.value))
            for stale in holders - intended:
                if self.network.is_alive(stale):
                    self._unplace(stale, key)

    def _keys_near(self, node_id: int) -> list[int]:
        """Keys whose replica set could include ``node_id``.

        If both the clockwise and counterclockwise arcs from the key to
        ``node_id`` contain at least k other alive nodes, then k nodes
        are strictly closer to the key than ``node_id`` is, so the key
        cannot adopt it.  Candidates therefore lie in the arc between
        the k-th alive predecessor and the k-th alive successor.
        """
        if not self._sorted_keys:
            return []
        ids = self.network.alive_ids
        n = len(ids)
        if n <= self.k + 1:
            return list(self._sorted_keys)
        pos = bisect_left(ids, node_id)
        if pos >= n or ids[pos] != node_id:
            raise ReplicationError(f"node {node_id:#x} is not alive")
        pred_k = ids[(pos - self.k) % n]
        succ_k = ids[(pos + self.k) % n]
        cw_limit = (succ_k - node_id) % ID_SPACE
        ccw_limit = (node_id - pred_k) % ID_SPACE
        return [
            key
            for key in self._sorted_keys
            if (key - node_id) % ID_SPACE <= cw_limit
            or (node_id - key) % ID_SPACE <= ccw_limit
        ]

    # ------------------------------------------------------------------
    # fault hooks / diagnostics
    # ------------------------------------------------------------------
    def corrupt_replica(self, node_id: int, key: int) -> bool:
        """Flip one bit of ``node_id``'s replica (the bit-rot fault).

        Replication has no at-rest integrity check, so a corrupted
        replica is *served as-is* by :meth:`fetch` — the silent-rot
        failure mode the durability experiment contrasts with the
        erasure backend's hash-tree rejection.
        """
        storage = self.storages.get(node_id)
        if storage is None or not storage.contains(key):
            return False
        obj = storage.lookup(key)
        if not isinstance(obj.value, (bytes, bytearray)) or not obj.value:
            return False
        value = bytes(obj.value)
        rotten = bytes([value[0] ^ 0x01]) + value[1:]
        storage.insert(
            StoredObject(key, rotten, obj.delete_proof_hash, obj.meta),
            overwrite=True,
        )
        if self.metrics is not None:
            self.metrics.counter("past.faults.bitrot").inc()
        return True

    def verify_invariants(self) -> list[str]:
        """Return human-readable invariant violations (empty == healthy)."""
        problems: list[str] = []
        for key, holders in self._holders.items():
            live = {h for h in holders if self.network.is_alive(h)}
            intended = set(self.replica_membership(key))
            if live != intended:
                problems.append(
                    f"key {key:#x}: holders {sorted(live)} != intended {sorted(intended)}"
                )
        return problems
