"""k-of-n erasure-coded object storage with leases.

The second storage backend behind :class:`repro.past.interface
.ObjectStore`: instead of ``k`` full copies, an object is split into
``n`` coded shares (:mod:`repro.past.coding`), any ``k`` of which
reconstruct it, placed on the ``n`` alive nodes closest to the key.
Each stored share carries

* a **hash-tree digest** (:mod:`repro.past.hashtree`): the Merkle root
  over all ``n`` share payloads plus this share's authentication path,
  so at-rest bit-rot is detected without touching sibling shares;
* a **lease** with an expiry epoch: holders garbage-collect shares
  whose lease lapsed on *their* clock (epoch plus any injected skew),
  and the repair crawler renews leases before they lapse;
* the object's ``H(PW)`` delete guard, so the §3.4 delete protocol
  works per holder exactly as it does under replication.

Reads are **degraded by construction**: ``fetch`` gathers shares from
the closest live holders, verifies each against the hash tree, and
decodes from the first ``k`` healthy ones — so any ``n - k`` crashed,
partitioned or bit-rotten shares still yield a byte-identical object.
Per-share-holder resilience policy (circuit breakers ordering the
probe sequence, hedged extra probes) plugs in via
:class:`repro.core.resilience.ShareHolderHealth`.

Repair is either **eager** (``eager_repair=True``: membership hooks
re-code lost shares immediately, mirroring ``ReplicatedStore`` — with
``data_shares=1`` the backend is then byte-equivalent to plain n-copy
replication, the "coding disabled" contract pinned in
``tests/past/test_erasure.py``) or **lazy** (the deployed-world mode:
hooks only account the damage and the background
:class:`repro.past.crawler.RepairCrawler` re-codes under a bounded
per-epoch bandwidth budget).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.past.coding import decode, encode
from repro.past.hashtree import HashTree, PathElement, verify_share
from repro.past.interface import repair_latency_s
from repro.past.replication import ReplicationError
from repro.past.storage import Storage, StorageError, StoredObject
from repro.pastry.network import PastryNetwork
from repro.util.ids import ID_SPACE, ring_distance


@dataclass(frozen=True)
class CodedShare:
    """One immutable coded share of one object."""

    key: int
    index: int
    k: int
    n: int
    data: bytes
    #: original object length (strips the coding pad on decode)
    length: int
    #: Merkle root over all n share payloads of this object
    root: bytes
    #: this share's authentication path up to ``root``
    path: tuple[PathElement, ...]
    #: epoch after which holders may garbage-collect the share
    lease_expiry: int
    delete_proof_hash: bytes | None = None
    meta: dict = field(default_factory=dict, compare=False)

    def verify(self) -> bool:
        """Byte-exact integrity check against the object's hash tree."""
        return verify_share(self.data, self.path, self.root)

    def nbytes(self) -> int:
        return len(self.data)


class ErasureStore:
    """k-of-n coded storage over a :class:`PastryNetwork`.

    Mirrors :class:`repro.past.replication.ReplicatedStore`'s surface
    (it satisfies the same :class:`~repro.past.interface.ObjectStore`
    protocol) while holding shares instead of copies.  Shares live in
    real per-node :class:`Storage` instances, so a malicious holder
    sees exactly one share — strictly *less* plaintext than a
    replication holder sees, a free anonymity bonus the durability
    experiment does not even claim credit for.
    """

    def __init__(
        self,
        network: PastryNetwork,
        data_shares: int = 2,
        total_shares: int = 4,
        *,
        lease_term: int = 8,
        eager_repair: bool = True,
        metrics=None,
        tracer=None,
    ):
        if data_shares < 1:
            raise ValueError("data_shares must be >= 1")
        if total_shares < data_shares:
            raise ValueError("total_shares must be >= data_shares")
        if lease_term < 1:
            raise ValueError("lease_term must be >= 1")
        self.network = network
        self.k = data_shares
        self.n = total_shares
        self.lease_term = lease_term
        self.eager_repair = eager_repair
        self.metrics = metrics
        self.tracer = tracer
        #: the store's logical lease clock (advanced by the epoch loop)
        self.epoch = 0
        self.storages: dict[int, Storage] = {}
        #: key -> node id -> share index currently attributed there
        self._placements: dict[int, dict[int, int]] = {}
        self._sorted_keys: list[int] = []
        #: per-node lease-clock skew in epochs (fault-injected)
        self._clock_skew: dict[int, int] = {}
        #: observers notified as (key, node_id) on share placement
        self.on_replica_placed: list[Callable[[int, int], None]] = []
        # replica-candidate memo, valid for one membership epoch
        self._cache_epoch = -1
        self._candidates_cache: dict[int, tuple[list[int], frozenset[int]]] = {}
        self._root_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _charge_repair(self, objects: int, nbytes: int) -> None:
        """Account one repair action in the shared indicator scheme."""
        if self.metrics is None or not objects:
            return
        self.metrics.counter("erasure.repair.objects_moved").inc(objects)
        self.metrics.counter("erasure.repair.bytes_moved").inc(nbytes)
        self.metrics.histogram("erasure.repair.latency_s").observe(
            repair_latency_s(nbytes)
        )

    def storage_of(self, node_id: int) -> Storage:
        store = self.storages.get(node_id)
        if store is None:
            store = self.storages[node_id] = Storage(node_id)
        return store

    def _fresh_caches(self) -> None:
        epoch = self.network.membership_epoch
        if epoch != self._cache_epoch:
            self._candidates_cache.clear()
            self._root_cache.clear()
            self._cache_epoch = epoch

    def _candidate_entry(self, key: int) -> tuple[list[int], frozenset[int]]:
        self._fresh_caches()
        entry = self._candidates_cache.get(key)
        if entry is None:
            members = self.network.replica_candidates(key, self.n)
            entry = self._candidates_cache[key] = (members, frozenset(members))
        return entry

    def replica_set(self, key: int) -> list[int]:
        """The intended share-holder set: the n closest alive nodes."""
        return list(self._candidate_entry(key)[0])

    def replica_membership(self, key: int) -> frozenset[int]:
        return self._candidate_entry(key)[1]

    def holders(self, key: int) -> set[int]:
        return set(self._placements.get(key, ()))

    def share_index_of(self, key: int, node_id: int) -> int | None:
        """Which share index ``node_id`` is attributed (None = none)."""
        return self._placements.get(key, {}).get(node_id)

    def root(self, key: int) -> int:
        self._fresh_caches()
        root = self._root_cache.get(key)
        if root is None:
            root = self._root_cache[key] = self.network.closest_alive(key)
        return root

    def node_epoch(self, node_id: int) -> int:
        """The lease clock as ``node_id`` sees it (epoch + skew)."""
        return self.epoch + self._clock_skew.get(node_id, 0)

    def set_clock_skew(self, node_id: int, epochs: int) -> None:
        """Skew one holder's lease clock (the lease-skew fault)."""
        if epochs:
            self._clock_skew[node_id] = epochs
        else:
            self._clock_skew.pop(node_id, None)

    # ------------------------------------------------------------------
    # placement plumbing
    # ------------------------------------------------------------------
    def _place(self, node_id: int, share: CodedShare) -> None:
        self.storage_of(node_id).insert(
            StoredObject(share.key, share, share.delete_proof_hash,
                         share.meta),
            overwrite=True,
        )
        placements = self._placements.setdefault(share.key, {})
        if not placements:
            insort(self._sorted_keys, share.key)
        placements[node_id] = share.index
        self._count("erasure.share.placements")
        for callback in self.on_replica_placed:
            callback(share.key, node_id)

    def _unplace(self, node_id: int, key: int) -> None:
        self.storage_of(node_id).drop(key)
        placements = self._placements.get(key)
        if placements is not None:
            placements.pop(node_id, None)
            if not placements:
                self._forget_key(key)

    def _forget_key(self, key: int) -> None:
        self._placements.pop(key, None)
        pos = bisect_left(self._sorted_keys, key)
        if pos < len(self._sorted_keys) and self._sorted_keys[pos] == key:
            del self._sorted_keys[pos]

    def _stored_share(self, node_id: int, key: int) -> CodedShare | None:
        storage = self.storages.get(node_id)
        if storage is None or not storage.contains(key):
            return None
        value = storage.lookup(key).value
        return value if isinstance(value, CodedShare) else None

    def _live_shares(self, key: int, verified: bool = True) -> dict[int, CodedShare]:
        """index -> share, one per live holder (optionally verified).

        Preference between two live holders of the same index goes to
        the one closer to the key (ties by id) — the deterministic
        choice every backend path makes.
        """
        out: dict[int, CodedShare] = {}
        holders = sorted(
            (h for h in self._placements.get(key, ())
             if self.network.is_alive(h)),
            key=lambda h: (ring_distance(h, key), h),
        )
        for holder in holders:
            share = self._stored_share(holder, key)
            if share is None or share.index in out:
                continue
            if verified and not share.verify():
                self._count("erasure.share.corrupt_skipped")
                continue
            out[share.index] = share
        return out

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def _encode_all(
        self,
        key: int,
        value: bytes,
        delete_proof_hash: bytes | None,
        meta: dict,
        lease_expiry: int,
    ) -> list[CodedShare]:
        payloads = encode(value, self.k, self.n)
        tree = HashTree.from_shares(payloads)
        return [
            CodedShare(
                key=key, index=i, k=self.k, n=self.n, data=payloads[i],
                length=len(value), root=tree.root, path=tree.path(i),
                lease_expiry=lease_expiry,
                delete_proof_hash=delete_proof_hash, meta=meta,
            )
            for i in range(self.n)
        ]

    def insert(
        self,
        key: int,
        value: bytes,
        delete_proof_hash: bytes | None = None,
        meta: dict | None = None,
    ) -> StoredObject:
        """Code ``value`` into n shares on the n closest alive nodes."""
        if key in self._placements:
            raise ReplicationError(f"key {key:#x} already inserted")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("erasure coding stores byte strings")
        shares = self._encode_all(
            key, bytes(value), delete_proof_hash, meta or {},
            self.epoch + self.lease_term,
        )
        targets = self.replica_set(key)
        for share, node_id in zip(shares, targets):
            self._place(node_id, share)
        self._count("erasure.objects.inserted")
        return StoredObject(key, bytes(value), delete_proof_hash, meta or {})

    def fetch(
        self,
        key: int,
        requester_id: int | None = None,
        policy=None,
        health=None,
    ) -> StoredObject:
        """Degraded read: decode from any k healthy shares.

        ``health`` is an optional
        :class:`repro.core.resilience.ShareHolderHealth`: holders with
        open breakers are probed last, probe outcomes feed back into
        the breakers, and ``policy.hedge`` extra holders are verified
        beyond the first k so one slow/corrupt share does not force a
        second round trip.
        """
        placements = self._placements.get(key)
        if not placements:
            raise StorageError(f"key {key:#x} not stored anywhere")
        if requester_id is not None and requester_id not in self.replica_membership(key):
            raise ReplicationError(
                f"node {requester_id:#x} is outside the replica set of {key:#x}"
            )
        live = [h for h in placements if self.network.is_alive(h)]
        if not live:
            raise StorageError(f"all shares of {key:#x} are dead")
        live.sort(key=lambda h: (ring_distance(h, key), h))
        if health is not None:
            live = health.order(live)
        hedge = getattr(policy, "hedge", 0) if policy is not None else 0

        gathered: dict[int, CodedShare] = {}
        probed = 0
        exemplar: CodedShare | None = None
        for holder in live:
            if len(gathered) >= self.k and probed >= self.k + hedge:
                break
            probed += 1
            share = self._stored_share(holder, key)
            ok = share is not None and share.verify()
            if health is not None:
                health.record(holder, ok)
            if not ok:
                self._count("erasure.share.corrupt_skipped",
                            0 if share is None else 1)
                continue
            exemplar = exemplar or share
            gathered.setdefault(share.index, share)
        if len(gathered) < self.k or exemplar is None:
            raise StorageError(
                f"only {len(gathered)} healthy shares of {key:#x}, "
                f"need {self.k}"
            )
        if probed > len(gathered) or len(live) < len(placements):
            self._count("erasure.fetch.degraded")
        self._count("erasure.fetch.ok")
        value = decode(
            {i: s.data for i, s in gathered.items()},
            self.k, self.n, exemplar.length,
        )
        return StoredObject(
            key, value, exemplar.delete_proof_hash, dict(exemplar.meta)
        )

    def delete(self, key: int, proof: bytes) -> bool:
        """Delete from every holder whose share accepts the PW (§3.4)."""
        placements = self._placements.get(key)
        if not placements:
            return False
        deleted_any = False
        for node_id in list(placements):
            if self.storage_of(node_id).delete(key, proof):
                self._unplace(node_id, key)
                deleted_any = True
        if deleted_any:
            self._count("erasure.objects.deleted")
        return deleted_any

    def exists(self, key: int) -> bool:
        """Decodable right now: at least k shares on live holders."""
        live = [h for h in self._placements.get(key, ())
                if self.network.is_alive(h)]
        return len(live) >= self.k

    def all_keys(self) -> list[int]:
        return list(self._sorted_keys)

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def corrupt_replica(self, node_id: int, key: int) -> bool:
        """Flip one bit of the share held by ``node_id`` (bit-rot)."""
        share = self._stored_share(node_id, key)
        if share is None or not share.data:
            return False
        rotten = replace(
            share, data=bytes([share.data[0] ^ 0x01]) + share.data[1:]
        )
        self.storage_of(node_id).insert(
            StoredObject(key, rotten, rotten.delete_proof_hash, rotten.meta),
            overwrite=True,
        )
        self._count("erasure.faults.bitrot")
        return True

    # ------------------------------------------------------------------
    # lease machinery
    # ------------------------------------------------------------------
    def advance_epoch(self) -> int:
        """Tick the lease clock and let holders GC lapsed shares."""
        self.epoch += 1
        expired = 0
        for key in list(self._sorted_keys):
            for node_id in list(self._placements.get(key, ())):
                if not self.network.is_alive(node_id):
                    continue
                share = self._stored_share(node_id, key)
                if share is None:
                    continue
                if self.node_epoch(node_id) > share.lease_expiry:
                    self._unplace(node_id, key)
                    expired += 1
        self._count("erasure.lease.expired_drops", expired)
        return self.epoch

    def renew_lease(self, node_id: int, key: int) -> bool:
        """Extend the lease of one held share to ``epoch + lease_term``."""
        share = self._stored_share(node_id, key)
        if share is None:
            return False
        renewed = replace(share, lease_expiry=self.epoch + self.lease_term)
        self.storage_of(node_id).insert(
            StoredObject(key, renewed, renewed.delete_proof_hash,
                         renewed.meta),
            overwrite=True,
        )
        return True

    # ------------------------------------------------------------------
    # repair core (shared by membership hooks and the crawler)
    # ------------------------------------------------------------------
    def repair_key(self, key: int) -> tuple[int, int]:
        """Restore ``key`` to one verified share per intended holder.

        Returns ``(shares_moved, bytes_moved)``; bytes charge both the
        k shares read to decode and every share written.  Objects with
        fewer than k healthy shares are lost (dropped from the index).
        """
        placements = self._placements.get(key)
        if placements is None:
            return (0, 0)
        healthy = self._live_shares(key, verified=True)
        if len(healthy) < self.k:
            self._drop_object(key)
            return (0, 0)
        exemplar = next(iter(healthy.values()))
        intended = self.replica_set(key)
        intended_set = frozenset(intended)

        # trim live holders that fell out of the intended set, and live
        # holders whose share is missing/corrupt (their storage slot is
        # re-filled below if they are intended)
        for node_id in list(placements):
            if not self.network.is_alive(node_id):
                placements.pop(node_id, None)
                continue
            share = self._stored_share(node_id, key)
            if node_id not in intended_set:
                self._unplace(node_id, key)
            elif share is None or not share.verify():
                self._unplace(node_id, key)

        placements = self._placements.get(key, {})
        held_indices = set(placements.values())
        missing_indices = [i for i in range(self.n) if i not in held_indices]
        vacant = [nid for nid in intended if nid not in placements]
        if not missing_indices or not vacant:
            return (0, 0)

        # decode once, re-encode deterministically, hand the missing
        # indices to the vacant intended holders (closest first)
        value = decode(
            {i: s.data for i, s in healthy.items()},
            self.k, self.n, exemplar.length,
        )
        shares = self._encode_all(
            key, value, exemplar.delete_proof_hash, dict(exemplar.meta),
            self.epoch + self.lease_term,
        )
        moved = 0
        nbytes = sum(s.nbytes() for s in list(healthy.values())[: self.k])
        for node_id, index in zip(vacant, missing_indices):
            self._place(node_id, shares[index])
            moved += 1
            nbytes += shares[index].nbytes()
        return (moved, nbytes)

    def _drop_object(self, key: int) -> None:
        for node_id in list(self._placements.get(key, ())):
            self._unplace(node_id, key)
        self._forget_key(key)
        self._count("erasure.objects.lost")

    # ------------------------------------------------------------------
    # membership hooks
    # ------------------------------------------------------------------
    def _repair_span(self, event: str, node_id: int):
        tr = self.tracer
        if tr is None:
            return nullcontext()
        return tr.span("failover.repair", observer="hop", event=event,
                       hop_node=node_id, backend="erasure")

    def on_fail(self, node_id: int) -> None:
        """React to a holder crash (call after ``network.fail``).

        Eager mode re-codes immediately; lazy mode only detaches the
        dead holder's attribution and leaves the re-coding to the
        crawler's budgeted pass.
        """
        storage = self.storages.get(node_id)
        if storage is None:
            return
        self._count("erasure.repair.on_fail")
        with self._repair_span("fail", node_id):
            for key in storage.keys():
                placements = self._placements.get(key)
                if placements is None:
                    continue
                placements.pop(node_id, None)
                live = [h for h in placements if self.network.is_alive(h)]
                if not live:
                    self._forget_key(key)
                    self._count("erasure.objects.lost")
                    continue
                if self.eager_repair:
                    moved, nbytes = self.repair_key(key)
                    self._charge_repair(moved, nbytes)
        # the dead node keeps its unreachable local shares; revive
        # reconciliation purges whatever the index no longer attributes

    def on_join(self, node_id: int) -> None:
        """Hand the newcomer the shares it is now responsible for."""
        self._count("erasure.repair.on_join")
        with self._repair_span("join", node_id):
            self._reconcile_storage(node_id)
            if self.eager_repair:
                self._adopt(node_id)

    def on_revive(self, node_id: int) -> None:
        """Reconcile a returning holder: purge stale shares, re-adopt."""
        self._count("erasure.repair.on_revive")
        with self._repair_span("revive", node_id):
            self._reconcile_storage(node_id)
            if self.eager_repair:
                self._adopt(node_id)

    def _reconcile_storage(self, node_id: int) -> int:
        storage = self.storages.get(node_id)
        if storage is None:
            return 0
        purged = 0
        for key in storage.keys():
            if node_id not in self._placements.get(key, ()):
                storage.drop(key)
                purged += 1
        self._count("erasure.share.stale_purged", purged)
        return purged

    def _adopt(self, node_id: int) -> None:
        """Pull every nearby key back to its intended holder set."""
        for key in self._keys_near(node_id):
            if node_id not in self.replica_membership(key):
                continue
            moved, nbytes = self.repair_key(key)
            self._charge_repair(moved, nbytes)

    def _keys_near(self, node_id: int) -> list[int]:
        """Keys whose intended n-closest set could include ``node_id``
        (same arc argument as ``ReplicatedStore._keys_near``)."""
        if not self._sorted_keys:
            return []
        ids = self.network.alive_ids
        count = len(ids)
        if count <= self.n + 1:
            return list(self._sorted_keys)
        pos = bisect_left(ids, node_id)
        if pos >= count or ids[pos] != node_id:
            raise ReplicationError(f"node {node_id:#x} is not alive")
        pred_k = ids[(pos - self.n) % count]
        succ_k = ids[(pos + self.n) % count]
        cw_limit = (succ_k - node_id) % ID_SPACE
        ccw_limit = (node_id - pred_k) % ID_SPACE
        return [
            key
            for key in self._sorted_keys
            if (key - node_id) % ID_SPACE <= cw_limit
            or (node_id - key) % ID_SPACE <= ccw_limit
        ]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def under_replicated(self) -> list[int]:
        """Keys currently below a verified share per intended holder."""
        out = []
        for key in self._sorted_keys:
            placements = self._placements.get(key, {})
            live = {h: i for h, i in placements.items()
                    if self.network.is_alive(h)}
            if len(live) < self.n or set(live) != set(self.replica_set(key)):
                out.append(key)
        return out

    def verify_invariants(self) -> list[str]:
        """Invariant violations (empty == healthy).

        Healthy means: live holders are exactly the intended n closest,
        they hold n distinct share indices, and every share verifies
        against its hash tree.
        """
        problems: list[str] = []
        for key in self._sorted_keys:
            placements = self._placements.get(key, {})
            live = {h: i for h, i in placements.items()
                    if self.network.is_alive(h)}
            intended = set(self.replica_set(key))
            if set(live) != intended:
                problems.append(
                    f"key {key:#x}: holders {sorted(live)} != "
                    f"intended {sorted(intended)}"
                )
            if len(set(live.values())) != len(live):
                problems.append(f"key {key:#x}: duplicate share indices")
            for holder in live:
                share = self._stored_share(holder, key)
                if share is None:
                    problems.append(
                        f"key {key:#x}: holder {holder:#x} has no share"
                    )
                elif not share.verify():
                    problems.append(
                        f"key {key:#x}: corrupt share on {holder:#x}"
                    )
        return problems
