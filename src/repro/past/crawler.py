"""Background verify/repair crawler for the erasure backend.

The deployed-world counterpart of ``ReplicatedStore``'s eager
membership hooks: instead of re-coding at the instant a holder dies,
an :class:`ErasureStore` in lazy mode (``eager_repair=False``) only
records the damage, and this crawler walks the key space as a
deterministic background job — one budgeted pass per epoch — doing
four things per object:

1. **verify** every live holder's share against the object hash tree
   and drop the ones bit-rot broke;
2. **renew leases** that would lapse within ``renew_before`` epochs
   (and only those, so a pass over a healthy store mutates nothing —
   the idempotence contract pinned in ``tests/past/test_crawler.py``);
3. **re-code** missing/corrupt shares from any ``k`` healthy ones via
   :meth:`ErasureStore.repair_key`;
4. **account** the bytes it moved against a per-epoch repair-bandwidth
   budget, stopping the pass once the budget is spent and resuming
   from a cursor next epoch — so full recovery completes within a
   bounded number of epochs instead of one unbounded burst.

Everything is deterministic: the only randomness is the crawl phase
(which key the first pass starts from), drawn once from a
:func:`derive_seed` stream so budget-starved passes do not always
starve the same suffix of the key space.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.past.erasure import ErasureStore
from repro.util.rng import derive_seed, make_pyrandom


@dataclass
class CrawlReport:
    """What one crawler pass did (all counts are this pass only)."""

    epoch: int
    keys_scanned: int = 0
    shares_verified: int = 0
    corrupt_found: int = 0
    leases_renewed: int = 0
    objects_repaired: int = 0
    shares_rebuilt: int = 0
    bytes_moved: int = 0
    objects_lost: int = 0
    #: the pass stopped on budget, not on completing the cycle
    budget_exhausted: bool = False
    #: keys left un-scanned when the budget ran out
    keys_deferred: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class RepairCrawler:
    """Cursor-resumable verify/repair walker over one ErasureStore."""

    def __init__(
        self,
        store: ErasureStore,
        seed: int = 0,
        *,
        budget_bytes_per_epoch: int | None = 64 * 1024,
        renew_before: int = 2,
        metrics=None,
        tracer=None,
    ):
        if renew_before < 0:
            raise ValueError("renew_before must be >= 0")
        if budget_bytes_per_epoch is not None and budget_bytes_per_epoch < 1:
            raise ValueError("budget must be >= 1 byte (or None = unbounded)")
        self.store = store
        self.budget_bytes_per_epoch = budget_bytes_per_epoch
        self.renew_before = renew_before
        self.metrics = metrics if metrics is not None else store.metrics
        self.tracer = tracer if tracer is not None else store.tracer
        self.passes = 0
        #: key the next pass resumes from (None = start a fresh cycle)
        self._cursor: int | None = None
        self._phase_rng = make_pyrandom(derive_seed(seed, "past", "crawler"))

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _scan_order(self, keys: list[int]) -> list[int]:
        """Keys in crawl order: sorted, rotated to the cursor (or to a
        seeded phase on a fresh cycle)."""
        if not keys:
            return []
        if self._cursor is None:
            start = self._phase_rng.randrange(len(keys))
        else:
            # resume at the first key >= cursor (the cursor key itself
            # may have been deleted or lost since last pass)
            start = 0
            for i, key in enumerate(keys):
                if key >= self._cursor:
                    start = i
                    break
        return keys[start:] + keys[:start]

    def _scan_key(self, key: int, report: CrawlReport) -> int:
        """Verify, renew and repair one object; returns bytes moved."""
        store = self.store
        placements = store._placements.get(key)
        if placements is None:
            return 0
        report.keys_scanned += 1
        needs_repair = False
        live = sorted(h for h in placements if store.network.is_alive(h))
        for holder in live:
            share = store._stored_share(holder, key)
            if share is None:
                needs_repair = True
                continue
            report.shares_verified += 1
            if not share.verify():
                report.corrupt_found += 1
                needs_repair = True
                continue
            remaining = share.lease_expiry - store.node_epoch(holder)
            if remaining <= self.renew_before:
                store.renew_lease(holder, key)
                report.leases_renewed += 1
        if len(live) < store.n or needs_repair or set(live) != set(
            store.replica_set(key)
        ):
            before = key in store._placements
            moved, nbytes = store.repair_key(key)
            if moved:
                report.objects_repaired += 1
                report.shares_rebuilt += moved
                report.bytes_moved += nbytes
                store._charge_repair(moved, nbytes)
            if before and key not in store._placements:
                report.objects_lost += 1
            return nbytes
        return 0

    def run_pass(self) -> CrawlReport:
        """One budgeted pass: scan from the cursor until the cycle
        completes or the per-epoch byte budget is spent."""
        store = self.store
        report = CrawlReport(epoch=store.epoch)
        self.passes += 1
        tr = self.tracer
        cm = tr.span("crawler.pass", observer="crawler",
                     epoch=store.epoch) if tr else nullcontext()
        with cm as span:
            order = self._scan_order(store.all_keys())
            spent = 0
            budget = self.budget_bytes_per_epoch
            for i, key in enumerate(order):
                if budget is not None and spent >= budget:
                    report.budget_exhausted = True
                    report.keys_deferred = len(order) - i
                    self._cursor = key
                    break
                spent += self._scan_key(key, report)
            else:
                self._cursor = None
            self._count("crawler.passes")
            self._count("crawler.keys_scanned", report.keys_scanned)
            self._count("crawler.shares_verified", report.shares_verified)
            self._count("crawler.corrupt_found", report.corrupt_found)
            self._count("crawler.leases_renewed", report.leases_renewed)
            self._count("crawler.shares_rebuilt", report.shares_rebuilt)
            self._count("crawler.bytes_moved", report.bytes_moved)
            self._count("crawler.objects_lost", report.objects_lost)
            if report.budget_exhausted:
                self._count("crawler.budget_exhausted")
            if span is not None:
                span.set(
                    keys_scanned=report.keys_scanned,
                    corrupt_found=report.corrupt_found,
                    leases_renewed=report.leases_renewed,
                    shares_rebuilt=report.shares_rebuilt,
                    bytes_moved=report.bytes_moved,
                    budget_exhausted=report.budget_exhausted,
                )
        return report

    def run_until_stable(self, max_passes: int = 16) -> list[CrawlReport]:
        """Run passes until one completes the cycle without repairing
        anything (the converged fixpoint), or ``max_passes`` elapse."""
        reports: list[CrawlReport] = []
        for _ in range(max_passes):
            report = self.run_pass()
            reports.append(report)
            if (not report.budget_exhausted
                    and not report.shares_rebuilt
                    and not report.corrupt_found
                    and not report.objects_lost):
                break
        return reports
