"""Per-node object storage.

Each overlay node owns one :class:`Storage`.  Objects are immutable
once inserted (PAST semantics); deletion requires the proof the
inserter registered (TAP's ``H(PW)`` mechanism, §3.4).
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.crypto.hashing import hash_password


class StorageError(KeyError):
    """Raised on missing keys or rejected operations."""


@dataclass(frozen=True)
class StoredObject:
    """An immutable stored value plus its deletion guard.

    ``delete_proof_hash`` is ``H(PW)``: deletion succeeds only for a
    caller presenting the preimage ``PW``.  ``None`` means undeletable
    (plain PAST files).
    """

    key: int
    value: Any
    delete_proof_hash: bytes | None = None
    meta: dict = field(default_factory=dict, compare=False)

    def may_delete(self, proof: bytes | None) -> bool:
        """Deletion guard check: constant-time and fail-closed.

        Any malformed input — missing guard, empty or mistyped proof,
        a bit-rotted ``delete_proof_hash`` that is no longer a byte
        string — denies deletion rather than raising: a corrupted
        replica must never turn the §3.4 delete protocol into a crash
        or, worse, an accept.  The digest comparison itself is
        constant-time so holders leak no prefix-match timing signal
        about ``H(PW)``.
        """
        expected = self.delete_proof_hash
        if not isinstance(expected, (bytes, bytearray)) or not expected:
            return False
        if not isinstance(proof, (bytes, bytearray)) or not proof:
            return False
        try:
            presented = hash_password(bytes(proof))
        except (TypeError, ValueError):
            return False
        return hmac.compare_digest(bytes(presented), bytes(expected))


class Storage:
    """Key-value store of one node, with insert/lookup/delete."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._objects: dict[int, StoredObject] = {}

    def insert(self, obj: StoredObject, overwrite: bool = False) -> None:
        """Store an object; PAST rejects silent overwrites by default."""
        if not overwrite and obj.key in self._objects:
            existing = self._objects[obj.key]
            if existing != obj:
                raise StorageError(f"key {obj.key:#x} already bound to a different object")
            return
        self._objects[obj.key] = obj

    def lookup(self, key: int) -> StoredObject:
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(f"key {key:#x} not stored on node {self.node_id:#x}") from None

    def contains(self, key: int) -> bool:
        return key in self._objects

    def delete(self, key: int, proof: bytes | None) -> bool:
        """Remove an object iff the proof matches its guard (§3.4)."""
        obj = self._objects.get(key)
        if obj is None:
            return False
        if not obj.may_delete(proof):
            return False
        del self._objects[key]
        return True

    def drop(self, key: int) -> None:
        """Administrative removal (replica hand-off), no proof needed."""
        self._objects.pop(key, None)

    def keys(self) -> list[int]:
        return list(self._objects)

    def __iter__(self) -> Iterator[StoredObject]:
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Storage(node={self.node_id:#x}, objects={len(self)})"
