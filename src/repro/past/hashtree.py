"""Merkle hash trees for at-rest share integrity.

Every erasure-coded object gets one tree over its ``n`` share payloads
(Tahoe-LAFS keeps the same structure in ``hashtree.py``).  Each stored
share carries the tree's *root* plus its own *authentication path*, so
a holder — or the repair crawler — can prove a share byte-exact
against the object's identity without seeing any sibling share:
recompute the leaf digest from the share bytes, fold the path up, and
compare roots.  A flipped bit anywhere in the share changes the leaf
digest and breaks the fold, which is how at-rest bit-rot is detected
deterministically.

Leaf and interior digests are domain-separated (``leaf`` / ``node``)
so a crafted leaf can never be replayed as an interior node.  Odd
nodes are promoted unchanged to the next level (no duplication), which
keeps the tree a pure function of the leaf list.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256_bytes

#: one path element: (sibling digest, sibling-is-right-of-me)
PathElement = tuple[bytes, bool]


def leaf_digest(data: bytes) -> bytes:
    """Digest of one share payload (domain-separated leaf hash)."""
    return sha256_bytes(b"tap-hashtree-leaf", data)


def _node(left: bytes, right: bytes) -> bytes:
    return sha256_bytes(b"tap-hashtree-node", left, right)


class HashTree:
    """Merkle tree over a fixed list of leaf payload digests."""

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            raise ValueError("a hash tree needs at least one leaf")
        self.leaves = list(leaves)
        #: levels[0] is the leaf level; levels[-1] is [root]
        self.levels: list[list[bytes]] = [list(leaves)]
        while len(self.levels[-1]) > 1:
            prev = self.levels[-1]
            nxt = [
                _node(prev[i], prev[i + 1])
                for i in range(0, len(prev) - 1, 2)
            ]
            if len(prev) % 2:
                nxt.append(prev[-1])  # odd node promoted unchanged
            self.levels.append(nxt)

    @classmethod
    def from_shares(cls, shares: list[bytes]) -> "HashTree":
        """Build the object tree from the ``n`` share payloads."""
        return cls([leaf_digest(s) for s in shares])

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    def path(self, index: int) -> tuple[PathElement, ...]:
        """The authentication path of leaf ``index`` up to the root."""
        if not 0 <= index < len(self.leaves):
            raise IndexError(f"leaf {index} out of range")
        out: list[PathElement] = []
        pos = index
        for level in self.levels[:-1]:
            sibling = pos ^ 1
            if sibling < len(level):
                out.append((level[sibling], sibling > pos))
            # odd promoted node has no sibling at this level
            pos //= 2
        return tuple(out)


def fold_path(leaf: bytes, path: tuple[PathElement, ...]) -> bytes:
    """Fold a leaf digest up an authentication path to a root digest."""
    acc = leaf
    for sibling, sibling_is_right in path:
        acc = _node(acc, sibling) if sibling_is_right else _node(sibling, acc)
    return acc


def verify_share(data: bytes, path: tuple[PathElement, ...], root: bytes) -> bool:
    """True iff ``data`` is byte-exact for the tree behind ``root``."""
    return fold_path(leaf_digest(data), path) == root
