"""Systematic k-of-n erasure coding over GF(2^8).

Pure python/NumPy — no external codec.  The code is the classic
systematic Vandermonde construction (the same family Tahoe-LAFS's
``zfec`` implements in C): an ``n x k`` Vandermonde matrix ``V`` over
GF(256) with distinct evaluation points has every ``k x k`` row
submatrix invertible, so ``A = V @ inv(V[:k])`` keeps that property
while making its top ``k`` rows the identity.  Encoding multiplies the
``k`` data fragments by ``A``; the first ``k`` shares *are* the data
(systematic), the remaining ``n - k`` are parity.  Any ``k`` of the
``n`` shares reconstruct the object by inverting the matching rows.

Two properties the storage layer leans on:

* **determinism** — encoding is a pure function of ``(data, k, n)``,
  so a repaired share is byte-identical to the share it replaces and
  hash-tree digests survive re-coding;
* **replication as the degenerate point** — with ``k = 1`` the matrix
  ``A`` is the all-ones column, so every share is a full copy of the
  object and the backend behaves exactly like plain n-copy
  replication ("coding disabled").

Fragment arithmetic is vectorised with NumPy log/antilog tables; the
matrix work (at most ``n <= 255`` rows) stays in plain python.
"""

from __future__ import annotations

import numpy as np

#: GF(2^8) modulus x^8 + x^4 + x^3 + x^2 + 1 (the Reed-Solomon classic)
_PRIMITIVE = 0x11D

_GF_EXP = np.zeros(512, dtype=np.uint8)
_GF_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _GF_EXP[_i] = _x
    _GF_LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIMITIVE
_GF_EXP[255:510] = _GF_EXP[:255]


class CodingError(ValueError):
    """Raised on invalid parameters or undecodable share sets."""


def gf_mul(a: int, b: int) -> int:
    """Scalar product in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return int(_GF_EXP[int(_GF_LOG[a]) + int(_GF_LOG[b])])


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise CodingError("zero has no inverse in GF(256)")
    return int(_GF_EXP[255 - int(_GF_LOG[a])])


def _mul_vec(vec: np.ndarray, c: int) -> np.ndarray:
    """``c * vec`` elementwise over GF(256) (vec is uint8)."""
    if c == 0:
        return np.zeros_like(vec)
    if c == 1:
        return vec.copy()
    out = np.zeros_like(vec)
    nz = vec != 0
    out[nz] = _GF_EXP[_GF_LOG[vec[nz]] + int(_GF_LOG[c])]
    return out


def _matmul(matrix: list[list[int]], frags: np.ndarray) -> np.ndarray:
    """``matrix @ frags`` over GF(256); frags is (k, L) uint8."""
    rows = len(matrix)
    out = np.zeros((rows, frags.shape[1]), dtype=np.uint8)
    for i, row in enumerate(matrix):
        acc = out[i]
        for j, coeff in enumerate(row):
            if coeff:
                acc ^= _mul_vec(frags[j], coeff)
        out[i] = acc
    return out


def _invert(matrix: list[list[int]]) -> list[list[int]]:
    """Gauss-Jordan inversion of a small GF(256) matrix."""
    k = len(matrix)
    aug = [list(row) + [1 if i == j else 0 for j in range(k)]
           for i, row in enumerate(matrix)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col]), None)
        if pivot is None:
            raise CodingError("singular decode matrix (duplicate shares?)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = gf_inv(aug[col][col])
        aug[col] = [gf_mul(v, inv_p) for v in aug[col]]
        for r in range(k):
            if r != col and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [v ^ gf_mul(factor, p)
                          for v, p in zip(aug[r], aug[col])]
    return [row[k:] for row in aug]


def _check_params(k: int, n: int) -> None:
    if not 1 <= k <= n <= 255:
        raise CodingError(f"need 1 <= k <= n <= 255, got k={k}, n={n}")


def coding_matrix(k: int, n: int) -> list[list[int]]:
    """The systematic ``n x k`` encoding matrix (top ``k`` rows = I)."""
    _check_params(k, n)
    vander = [[pow_gf(i, j) for j in range(k)] for i in range(n)]
    inv_top = _invert([row[:] for row in vander[:k]])
    return [
        [_dot(vrow, [inv_top[r][c] for r in range(k)])
         for c in range(k)]
        for vrow in vander
    ]


def _dot(row: list[int], col: list[int]) -> int:
    acc = 0
    for a, b in zip(row, col):
        acc ^= gf_mul(a, b)
    return acc


def pow_gf(base: int, exp: int) -> int:
    """``base ** exp`` in GF(256) (0^0 == 1 by convention)."""
    if exp == 0:
        return 1
    if base == 0:
        return 0
    return int(_GF_EXP[(int(_GF_LOG[base]) * exp) % 255])


#: matrices are tiny and reused per (k, n); memoise them
_MATRIX_CACHE: dict[tuple[int, int], list[list[int]]] = {}


def _matrix(k: int, n: int) -> list[list[int]]:
    mat = _MATRIX_CACHE.get((k, n))
    if mat is None:
        mat = _MATRIX_CACHE[(k, n)] = coding_matrix(k, n)
    return mat


def share_length(data_len: int, k: int) -> int:
    """Bytes per share for a ``data_len``-byte object split ``k`` ways."""
    return (data_len + k - 1) // k if data_len else 0


def encode(data: bytes, k: int, n: int) -> list[bytes]:
    """Split ``data`` into ``n`` shares, any ``k`` of which decode it.

    Shares are equal length (``ceil(len(data) / k)``); the original
    length must be carried alongside (the share metadata does) to
    strip the zero padding on decode.
    """
    _check_params(k, n)
    frag_len = share_length(len(data), k)
    if frag_len == 0:
        return [b""] * n
    buf = np.zeros(k * frag_len, dtype=np.uint8)
    buf[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    frags = buf.reshape(k, frag_len)
    coded = _matmul(_matrix(k, n), frags)
    return [coded[i].tobytes() for i in range(n)]


def decode(shares: dict[int, bytes], k: int, n: int, length: int) -> bytes:
    """Reconstruct the object from any ``k`` (index -> bytes) shares."""
    _check_params(k, n)
    if length == 0:
        return b""
    good = sorted(idx for idx in shares if 0 <= idx < n)
    if len(good) < k:
        raise CodingError(
            f"need {k} shares to decode, have {len(good)} of {n}"
        )
    picked = good[:k]
    frag_len = share_length(length, k)
    rows = []
    stack = np.zeros((k, frag_len), dtype=np.uint8)
    matrix = _matrix(k, n)
    for slot, idx in enumerate(picked):
        blob = shares[idx]
        if len(blob) != frag_len:
            raise CodingError(
                f"share {idx} has {len(blob)} bytes, expected {frag_len}"
            )
        rows.append(matrix[idx])
        stack[slot] = np.frombuffer(blob, dtype=np.uint8)
    frags = _matmul(_invert(rows), stack)
    return frags.reshape(-1).tobytes()[:length]
