"""PAST storage substrate with k-closest replication.

Reproduces the storage semantics TAP relies on (Rowstron & Druschel,
SOSP 2001, and FreePastry's replication manager): an object inserted
under key ``key`` is stored on the ``k`` alive nodes whose nodeids are
numerically closest to ``key``; the closest is the *root* (TAP's
"tunnel hop node"), the rest are candidates.  The replica set is
maintained across joins, leaves and failures, so the object remains
reachable unless all ``k`` holders fail before repair runs.
"""

from repro.past.storage import Storage, StoredObject, StorageError
from repro.past.replication import ReplicatedStore, ReplicationError

__all__ = [
    "Storage",
    "StoredObject",
    "StorageError",
    "ReplicatedStore",
    "ReplicationError",
]
