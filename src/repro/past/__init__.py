"""PAST storage substrate: replicated and erasure-coded backends.

Reproduces the storage semantics TAP relies on (Rowstron & Druschel,
SOSP 2001, and FreePastry's replication manager): an object inserted
under key ``key`` is stored on the ``k`` alive nodes whose nodeids are
numerically closest to ``key``; the closest is the *root* (TAP's
"tunnel hop node"), the rest are candidates.  The replica set is
maintained across joins, leaves and failures, so the object remains
reachable unless all ``k`` holders fail before repair runs.

Two backends satisfy the :class:`ObjectStore` protocol:

* :class:`ReplicatedStore` — plain k-copy replication (the paper's
  baseline);
* :class:`ErasureStore` — k-of-n coded shares with hash-tree
  integrity, leases, and a background :class:`RepairCrawler`.
"""

from repro.past.storage import Storage, StoredObject, StorageError
from repro.past.replication import ReplicatedStore, ReplicationError
from repro.past.interface import (
    ObjectStore,
    REPAIR_BANDWIDTH_BPS,
    iter_store_state,
    live_holders,
    repair_latency_s,
    value_nbytes,
)
from repro.past.coding import CodingError, decode, encode, share_length
from repro.past.hashtree import HashTree, fold_path, leaf_digest, verify_share
from repro.past.erasure import CodedShare, ErasureStore
from repro.past.crawler import CrawlReport, RepairCrawler

__all__ = [
    "Storage",
    "StoredObject",
    "StorageError",
    "ReplicatedStore",
    "ReplicationError",
    "ObjectStore",
    "REPAIR_BANDWIDTH_BPS",
    "iter_store_state",
    "live_holders",
    "repair_latency_s",
    "value_nbytes",
    "CodingError",
    "decode",
    "encode",
    "share_length",
    "HashTree",
    "fold_path",
    "leaf_digest",
    "verify_share",
    "CodedShare",
    "ErasureStore",
    "CrawlReport",
    "RepairCrawler",
]
