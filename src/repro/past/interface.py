"""The storage-backend contract both PAST backends satisfy.

:class:`repro.past.replication.ReplicatedStore` (plain k-copy) and
:class:`repro.past.erasure.ErasureStore` (k-of-n coded shares) expose
the same surface: client operations keyed by 128-bit ids, membership
hooks driven after the matching :class:`PastryNetwork` event, and an
invariant self-check.  :class:`ObjectStore` pins that surface as a
:class:`typing.Protocol` so the resilience layer, the fault injectors
and the experiment runners can hold either backend without caring
which durability strategy is underneath.

Repair accounting shared by both backends lives here too: every
replica/share movement is charged in bytes (:func:`value_nbytes`) and
converted into a *virtual* repair latency at the nominal link
bandwidth the paper's Figure 6 simulates (:data:`REPAIR_BANDWIDTH_BPS`)
— virtual rather than wall-clock so merged metrics registries stay
byte-identical for any ``--workers`` value.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

#: Nominal link bandwidth used to convert repair bytes into a virtual
#: repair latency (the paper's 1.5 Mb/s transfer model, §4.3).  Both
#: backends observe ``<prefix>.repair.latency_s`` histograms in these
#: virtual seconds, so the k-copy baseline and the erasure backend
#: report directly comparable repair-bandwidth indicators.
REPAIR_BANDWIDTH_BPS = 1_500_000.0


def value_nbytes(value: Any) -> int:
    """Size of one stored value in bytes, for repair accounting.

    Exact for the byte strings every runner stores; any other payload
    is charged at the size of its canonical text rendering, which is
    deterministic (no ids / addresses leak into ``repr`` for the plain
    values used here).
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    return len(repr(value).encode("utf-8"))


def repair_latency_s(nbytes: int) -> float:
    """Virtual seconds to move ``nbytes`` at the nominal bandwidth."""
    return (8.0 * nbytes) / REPAIR_BANDWIDTH_BPS


@runtime_checkable
class ObjectStore(Protocol):
    """What every PAST storage backend must provide.

    The protocol is structural: ``ReplicatedStore`` predates it and
    satisfies it implicitly; ``ErasureStore`` was written against it.
    ``insert`` accepts backend-specific keyword knobs, so only the
    positional core is pinned here.
    """

    # -- client operations ---------------------------------------------
    def insert(self, key: int, value: Any, delete_proof_hash: bytes | None = None,
               meta: dict | None = None) -> Any: ...

    def fetch(self, key: int, requester_id: int | None = None) -> Any: ...

    def delete(self, key: int, proof: bytes) -> bool: ...

    def exists(self, key: int) -> bool: ...

    def all_keys(self) -> list[int]: ...

    # -- placement introspection ---------------------------------------
    def holders(self, key: int) -> set[int]: ...

    def replica_set(self, key: int) -> list[int]: ...

    def root(self, key: int) -> int: ...

    def storage_of(self, node_id: int): ...

    # -- membership hooks (call after the network event) ---------------
    def on_fail(self, node_id: int) -> None: ...

    def on_join(self, node_id: int) -> None: ...

    def on_revive(self, node_id: int) -> None: ...

    # -- fault hooks / diagnostics -------------------------------------
    def corrupt_replica(self, node_id: int, key: int) -> bool: ...

    def verify_invariants(self) -> list[str]: ...


def live_holders(store: ObjectStore, key: int) -> list[int]:
    """The holders of ``key`` that are currently alive, sorted."""
    return sorted(h for h in store.holders(key) if store.network.is_alive(h))


def iter_store_state(store: ObjectStore) -> Iterable[tuple]:
    """Deterministic (key, sorted live holders) pairs — the externally
    observable placement state shared by both backends, used by the
    equivalence-contract tests."""
    for key in store.all_keys():
        yield key, live_holders(store, key)
