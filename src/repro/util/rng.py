"""Deterministic randomness plumbing.

Every stochastic component in the reproduction (topology generation,
THA generation, failure sampling, Monte-Carlo sweeps) receives an
explicit generator.  A single experiment seed is split into
independent child seeds with :class:`SeedSequenceFactory`, so the same
seed reproduces the same figure rows bit-for-bit regardless of how many
sub-generators a component requests.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a stable 64-bit child seed from a root seed and labels.

    The derivation hashes ``root_seed`` together with the textual
    labels, so adding a new consumer with a fresh label never perturbs
    the streams of existing consumers (unlike sequential draws from a
    shared generator).
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "big") & _MASK64


def make_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """NumPy generator for the (seed, labels) stream."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


def make_pyrandom(root_seed: int, *labels: object) -> random.Random:
    """stdlib ``random.Random`` for the (seed, labels) stream."""
    return random.Random(derive_seed(root_seed, *labels))


class SeedSequenceFactory:
    """Hands out independent child generators from one root seed.

    Example
    -------
    >>> seeds = SeedSequenceFactory(42)
    >>> topo_rng = seeds.numpy("topology")
    >>> tha_rng = seeds.pyrandom("tha", 3)
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def child(self, *labels: object) -> int:
        """A derived 64-bit seed for the labelled stream."""
        return derive_seed(self.root_seed, *labels)

    def numpy(self, *labels: object) -> np.random.Generator:
        return make_rng(self.root_seed, *labels)

    def pyrandom(self, *labels: object) -> random.Random:
        return make_pyrandom(self.root_seed, *labels)

    def spawn(self, *labels: object) -> "SeedSequenceFactory":
        """A nested factory whose streams are independent of the parent's."""
        return SeedSequenceFactory(self.child("spawn", *labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
