"""Shared low-level utilities: id arithmetic, RNG plumbing, serialization.

These helpers underpin every substrate in the reproduction.  They are
deliberately dependency-free (stdlib + numpy only) and fully
deterministic: all randomness flows through explicitly seeded
generators created by :mod:`repro.util.rng`.
"""

from repro.util.ids import (
    ID_BITS,
    ID_SPACE,
    ring_distance,
    numeric_distance,
    closest_ids,
    closest_index,
    id_to_hex,
    hex_to_id,
    random_id,
    shared_prefix_digits,
    id_digit,
)
from repro.util.rng import SeedSequenceFactory, derive_seed, make_rng, make_pyrandom
from repro.util.serialize import (
    pack_bytes,
    pack_fields,
    unpack_fields,
    unpack_fields_view,
    pack_int,
    unpack_int,
    SerializationError,
)

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "ring_distance",
    "numeric_distance",
    "closest_ids",
    "closest_index",
    "id_to_hex",
    "hex_to_id",
    "random_id",
    "shared_prefix_digits",
    "id_digit",
    "SeedSequenceFactory",
    "derive_seed",
    "make_rng",
    "make_pyrandom",
    "pack_bytes",
    "pack_fields",
    "unpack_fields",
    "unpack_fields_view",
    "pack_int",
    "unpack_int",
    "SerializationError",
]
