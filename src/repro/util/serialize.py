"""Minimal length-prefixed binary serialization.

TAP's layered (onion) encryption operates on opaque byte strings, so
the message formats in :mod:`repro.crypto.onion` and
:mod:`repro.core.messages` need a deterministic, self-delimiting
encoding.  We use 4-byte big-endian length prefixes — simple, explicit
and endianness-stable across platforms.
"""

from __future__ import annotations

_LEN_BYTES = 4
_MAX_FIELD = (1 << (8 * _LEN_BYTES)) - 1


class SerializationError(ValueError):
    """Raised when a byte buffer does not decode as expected."""


def pack_bytes(data: bytes) -> bytes:
    """Length-prefix a single byte string."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    if len(data) > _MAX_FIELD:
        raise SerializationError(f"field of {len(data)} bytes exceeds 4-byte length prefix")
    return len(data).to_bytes(_LEN_BYTES, "big") + bytes(data)


def pack_fields(*fields: bytes) -> bytes:
    """Concatenate several length-prefixed byte strings."""
    return b"".join(pack_bytes(f) for f in fields)


def unpack_fields_view(buffer, count: int | None = None) -> list[memoryview]:
    """Decode consecutive length-prefixed fields without copying.

    Returns :class:`memoryview` slices into ``buffer`` (bytes,
    bytearray, or another memoryview) — the hot-path variant used by
    the onion peel, where copying every field at every layer would be
    quadratic in tunnel depth.  The views keep ``buffer`` alive; call
    :func:`unpack_fields` instead when the fields must outlive it as
    independent byte strings.

    With ``count=None`` decodes until the buffer is exhausted; with an
    explicit count, raises :class:`SerializationError` if the buffer
    holds a different number of fields or has trailing garbage.
    """
    view = memoryview(buffer)
    fields: list[memoryview] = []
    offset = 0
    total = len(view)
    while offset < total:
        if offset + _LEN_BYTES > total:
            raise SerializationError("truncated length prefix")
        length = int.from_bytes(view[offset : offset + _LEN_BYTES], "big")
        offset += _LEN_BYTES
        if offset + length > total:
            raise SerializationError("field overruns buffer")
        fields.append(view[offset : offset + length])
        offset += length
        if count is not None and len(fields) > count:
            raise SerializationError(f"more than {count} fields present")
    if count is not None and len(fields) != count:
        raise SerializationError(f"expected {count} fields, found {len(fields)}")
    return fields


def unpack_fields(buffer: bytes, count: int | None = None) -> list[bytes]:
    """Decode consecutive length-prefixed fields as independent bytes.

    Same framing and error behaviour as :func:`unpack_fields_view`,
    but each field is an independent byte string (and the loop slices
    ``buffer`` directly — for small fields that is faster than going
    through intermediate memoryviews).
    """
    fields: list[bytes] = []
    offset = 0
    total = len(buffer)
    while offset < total:
        if offset + _LEN_BYTES > total:
            raise SerializationError("truncated length prefix")
        length = int.from_bytes(buffer[offset : offset + _LEN_BYTES], "big")
        offset += _LEN_BYTES
        if offset + length > total:
            raise SerializationError("field overruns buffer")
        fields.append(bytes(buffer[offset : offset + length]))
        offset += length
        if count is not None and len(fields) > count:
            raise SerializationError(f"more than {count} fields present")
    if count is not None and len(fields) != count:
        raise SerializationError(f"expected {count} fields, found {len(fields)}")
    return fields


def pack_int(value: int, width: int = 16) -> bytes:
    """Fixed-width big-endian unsigned int (default fits a 128-bit id)."""
    if value < 0:
        raise SerializationError("cannot pack negative int")
    try:
        return int(value).to_bytes(width, "big")
    except OverflowError as exc:
        raise SerializationError(f"{value} does not fit in {width} bytes") from exc


def unpack_int(data: bytes, width: int = 16) -> int:
    """Inverse of :func:`pack_int`; checks the width."""
    if len(data) != width:
        raise SerializationError(f"expected {width} bytes, got {len(data)}")
    return int.from_bytes(data, "big")
