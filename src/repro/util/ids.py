"""Identifier arithmetic on the 128-bit Pastry/PAST id ring.

Pastry node identifiers and PAST file identifiers (and therefore TAP
``hopid`` values) live in a circular space of ``2**128`` points.  All
"numerically closest" semantics in the reproduction are defined here in
one place so that the protocol simulation (:mod:`repro.pastry`), the
storage substrate (:mod:`repro.past`) and the vectorised experiment
model (:mod:`repro.analysis.idspace`) provably agree.

Conventions
-----------
* Ids are plain Python ints in ``[0, 2**128)``.
* Distance is *ring* distance: ``min(|a-b|, 2**128 - |a-b|)``.
* Ties (two nodes equidistant from a key) break toward the smaller id.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterable, Sequence

#: Number of bits in a Pastry/PAST identifier.
ID_BITS: int = 128

#: Size of the identifier space (one past the maximum id).
ID_SPACE: int = 1 << ID_BITS

#: Half of the identifier space; ring distances never exceed this.
HALF_SPACE: int = ID_SPACE >> 1


def _check_id(value: int) -> int:
    if not isinstance(value, int):
        raise TypeError(f"id must be int, got {type(value).__name__}")
    if not 0 <= value < ID_SPACE:
        raise ValueError(f"id {value!r} outside [0, 2**{ID_BITS})")
    return value


def ring_distance(a: int, b: int) -> int:
    """Circular distance between two ids on the ``2**128`` ring."""
    d = abs(_check_id(a) - _check_id(b))
    return min(d, ID_SPACE - d)


def numeric_distance(a: int, b: int) -> int:
    """Plain absolute difference (used by leaf-set ordering tests)."""
    return abs(_check_id(a) - _check_id(b))


def _closeness_key(key: int):
    """Sort key implementing 'closest first, ties toward smaller id'."""

    def keyfunc(node_id: int):
        return (ring_distance(node_id, key), node_id)

    return keyfunc


def closest_ids(ids: Iterable[int], key: int, count: int = 1) -> list[int]:
    """Return the ``count`` ids closest to ``key`` (ring distance).

    Accepts any iterable; the result is ordered closest-first with the
    documented tie-break.  This is the reference (O(n log n))
    implementation that the fast sorted-array variants must match.
    """
    pool = list(ids)
    if count < 0:
        raise ValueError("count must be non-negative")
    pool.sort(key=_closeness_key(key))
    return pool[:count]


def closest_index(sorted_ids: Sequence[int], key: int) -> int:
    """Index of the id closest to ``key`` in an ascending sorted sequence.

    O(log n) via binary search on the sorted ring; the caller guarantees
    ``sorted_ids`` is sorted ascending and non-empty.
    """
    n = len(sorted_ids)
    if n == 0:
        raise ValueError("closest_index of empty sequence")
    pos = bisect_left(sorted_ids, key)
    # Candidates: neighbours around the insertion point, plus the two
    # ends of the array (the ring wraps around).
    candidates = {pos - 1, pos, pos + 1, 0, n - 1}
    best = None
    best_key = None
    for idx in candidates:
        idx %= n
        cand_key = (ring_distance(sorted_ids[idx], key), sorted_ids[idx])
        if best_key is None or cand_key < best_key:
            best_key = cand_key
            best = idx
    assert best is not None
    return best


def closest_in_sorted(sorted_ids: Sequence[int], key: int, count: int = 1) -> list[int]:
    """``count`` closest ids from an ascending sorted sequence.

    O(log n + count) — expands outward from the closest element, which
    is how :mod:`repro.past` computes replica sets on large networks.
    """
    n = len(sorted_ids)
    if count >= n:
        return closest_ids(sorted_ids, key, count)
    centre = closest_index(sorted_ids, key)
    chosen = [sorted_ids[centre]]
    left = (centre - 1) % n
    right = (centre + 1) % n
    while len(chosen) < count:
        lkey = (ring_distance(sorted_ids[left], key), sorted_ids[left])
        rkey = (ring_distance(sorted_ids[right], key), sorted_ids[right])
        if lkey <= rkey:
            chosen.append(sorted_ids[left])
            left = (left - 1) % n
        else:
            chosen.append(sorted_ids[right])
            right = (right + 1) % n
    return chosen


def id_to_hex(value: int) -> str:
    """Canonical 32-hex-digit rendering of an id."""
    return f"{_check_id(value):032x}"


def hex_to_id(text: str) -> int:
    """Inverse of :func:`id_to_hex`."""
    value = int(text, 16)
    return _check_id(value)


def random_id(rng: random.Random) -> int:
    """Uniform id from an explicit ``random.Random`` instance."""
    return rng.getrandbits(ID_BITS)


def id_digit(value: int, row: int, bits_per_digit: int = 4) -> int:
    """The ``row``-th base-``2**bits_per_digit`` digit, most significant first.

    Row 0 is the most significant digit — the convention used by Pastry
    routing tables.
    """
    _check_id(value)
    digits = ID_BITS // bits_per_digit
    if not 0 <= row < digits:
        raise ValueError(f"row {row} outside [0, {digits})")
    shift = (digits - 1 - row) * bits_per_digit
    return (value >> shift) & ((1 << bits_per_digit) - 1)


def shared_prefix_digits(a: int, b: int, bits_per_digit: int = 4) -> int:
    """Length of the common digit prefix of two ids (Pastry's ``shl``).

    Computed from the highest divergent *bit* (one XOR + bit_length)
    rather than a digit-by-digit scan — this sits on the routing and
    ring-construction hot paths.
    """
    diff = _check_id(a) ^ _check_id(b)
    if diff == 0:
        return ID_BITS // bits_per_digit
    return (ID_BITS - diff.bit_length()) // bits_per_digit
