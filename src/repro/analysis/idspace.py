"""Vectorised id-ring model of PAST replica sets.

Figures 2–5 of the paper are Monte-Carlo statements about *which k
nodes are numerically closest to which keys* under failures, collusion
and churn — packet-level routing never enters the measured quantity.
This module computes that mapping with NumPy over a 64-bit ring
(statistically identical to the 128-bit ring: with 10^4 uniform ids the
collision probability is ~2^-37), which makes the paper-scale runs
(10^4 nodes × 25,000 anchors) take milliseconds instead of minutes.

The semantics — ring distance, closest-first, ties toward the smaller
id — are the ones defined in :mod:`repro.util.ids`; the test-suite
cross-validates this module against the object-level
:class:`repro.past.ReplicatedStore` on the same inputs.
"""

from __future__ import annotations

import numpy as np

RING_BITS = 64
_DTYPE = np.uint64


def _as_ring_array(values) -> np.ndarray:
    arr = np.asarray(values, dtype=_DTYPE)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D array of ids")
    return arr


def _ring_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ring distance; relies on well-defined uint64 wrap."""
    diff = a - b
    return np.minimum(diff, np.zeros_like(diff) - diff)


def replica_table(sorted_ids: np.ndarray, keys: np.ndarray, k: int) -> np.ndarray:
    """Indices (into ``sorted_ids``) of the k closest nodes per key.

    ``sorted_ids`` must be ascending and duplicate-free.  Returns shape
    ``(len(keys), k)``; column order is closest-first with ties broken
    toward the smaller id, matching :func:`repro.util.ids.closest_ids`.
    """
    sorted_ids = _as_ring_array(sorted_ids)
    keys = _as_ring_array(keys)
    n = len(sorted_ids)
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > n:
        raise ValueError(f"k={k} exceeds population {n}")

    if 2 * k >= n:
        # Small population: rank every node for every key.
        cand = np.broadcast_to(np.arange(n), (len(keys), n))
    else:
        pos = np.searchsorted(sorted_ids, keys)
        offsets = np.arange(-k, k)
        cand = (pos[:, None] + offsets[None, :]) % n

    cand_ids = sorted_ids[cand]
    dist = _ring_distance(cand_ids, keys[:, None])
    order = np.lexsort((cand_ids, dist), axis=-1)
    return np.take_along_axis(cand, order[:, :k], axis=1)


class IdSpaceModel:
    """A population of node ids with per-node boolean attributes.

    The model owns a sorted id array plus aligned flag arrays
    (``malicious`` by default) and answers vectorised replica-set
    queries.  Membership changes (:meth:`remove_nodes`,
    :meth:`add_nodes`) re-sort, keeping flags aligned — the churn
    primitive of Figure 5.
    """

    #: bound on the replica-set memo (distinct (keys, k) queries kept)
    _MEMO_LIMIT = 8

    def __init__(self, node_ids, malicious=None):
        ids = _as_ring_array(node_ids)
        order = np.argsort(ids, kind="stable")
        self.ids = ids[order]
        if len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("duplicate node ids")
        if malicious is None:
            malicious = np.zeros(len(ids), dtype=bool)
        malicious = np.asarray(malicious, dtype=bool)
        if malicious.shape != ids.shape:
            raise ValueError("malicious flags must align with ids")
        self.malicious = malicious[order]
        #: the constructor's input→sorted permutation; sweeps that vary
        #: only the flags reuse one model by assigning
        #: ``model.malicious = flags[model.sort_order]``
        self.sort_order = order
        # replica_indices memo: the figure sweeps re-query identical
        # (keys, k) pairs once per sweep level over an unchanged
        # population.  Keyed by content (bytes hash), bumped on churn.
        self._rev = 0
        self._replica_memo: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_nodes: int,
        rng: np.random.Generator,
        malicious_fraction: float = 0.0,
    ) -> "IdSpaceModel":
        """Uniform ids; exactly ``round(p*N)`` nodes flagged malicious."""
        ids = cls.draw_unique_ids(num_nodes, rng)
        malicious = np.zeros(num_nodes, dtype=bool)
        m = int(round(malicious_fraction * num_nodes))
        if m > 0:
            malicious[rng.choice(num_nodes, size=m, replace=False)] = True
        return cls(ids, malicious)

    @staticmethod
    def draw_unique_ids(count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform duplicate-free uint64 ids."""
        out = rng.integers(0, np.iinfo(np.uint64).max, size=count, dtype=np.uint64)
        while len(np.unique(out)) != count:  # pragma: no cover - ~2^-37
            out = np.unique(
                np.concatenate(
                    [out, rng.integers(0, np.iinfo(np.uint64).max,
                                       size=count, dtype=np.uint64)]
                )
            )[:count]
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.ids)

    def replica_indices(self, keys, k: int) -> np.ndarray:
        """(M, k) indices of each key's replica set, closest first.

        Memoised on ``(keys, k)`` content until the next membership
        change — a pure cache, so results are byte-identical with and
        without it.  The returned array is shared and marked
        read-only; copy before mutating.
        """
        keys_arr = _as_ring_array(keys)
        token = (int(k), self._rev, len(keys_arr), hash(keys_arr.tobytes()))
        table = self._replica_memo.get(token)
        if table is None:
            if len(self._replica_memo) >= self._MEMO_LIMIT:
                self._replica_memo.clear()
            table = replica_table(self.ids, keys_arr, k)
            table.setflags(write=False)
            self._replica_memo[token] = table
        return table

    def replica_ids(self, keys, k: int) -> np.ndarray:
        return self.ids[self.replica_indices(keys, k)]

    def any_malicious_holder(self, keys, k: int) -> np.ndarray:
        """Per key: is any replica-set member malicious? (THA disclosure)"""
        return self.malicious[self.replica_indices(keys, k)].any(axis=1)

    def any_survivor(self, keys, k: int, failed_mask: np.ndarray) -> np.ndarray:
        """Per key: does any replica survive the failure mask?

        ``failed_mask`` aligns with ``self.ids``.  A key's object
        survives a *simultaneous* failure iff at least one of its k
        closest original nodes is outside the failed set (the closest
        survivor is then provably still in the original replica set).
        """
        failed_mask = np.asarray(failed_mask, dtype=bool)
        if failed_mask.shape != self.ids.shape:
            raise ValueError("failure mask must align with ids")
        return (~failed_mask[self.replica_indices(keys, k)]).any(axis=1)

    # ------------------------------------------------------------------
    # membership changes (churn)
    # ------------------------------------------------------------------
    def remove_nodes(self, indices) -> None:
        keep = np.ones(self.size, dtype=bool)
        keep[np.asarray(indices, dtype=np.intp)] = False
        self.ids = self.ids[keep]
        self.malicious = self.malicious[keep]
        self._rev += 1
        self._replica_memo.clear()

    def add_nodes(self, new_ids, malicious=None) -> None:
        new_ids = _as_ring_array(new_ids)
        if malicious is None:
            malicious = np.zeros(len(new_ids), dtype=bool)
        malicious = np.asarray(malicious, dtype=bool)
        ids = np.concatenate([self.ids, new_ids])
        flags = np.concatenate([self.malicious, malicious])
        order = np.argsort(ids, kind="stable")
        self.ids = ids[order]
        self.malicious = flags[order]
        if len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("duplicate node ids after add")
        self._rev += 1
        self._replica_memo.clear()

    def benign_indices(self) -> np.ndarray:
        return np.flatnonzero(~self.malicious)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdSpaceModel(n={self.size}, malicious={int(self.malicious.sum())})"
