"""Vectorised id-ring model of PAST replica sets.

Figures 2–5 of the paper are Monte-Carlo statements about *which k
nodes are numerically closest to which keys* under failures, collusion
and churn — packet-level routing never enters the measured quantity.
This module computes that mapping with NumPy over a 64-bit ring
(statistically identical to the 128-bit ring: with 10^4 uniform ids the
collision probability is ~2^-37), which makes the paper-scale runs
(10^4 nodes × 25,000 anchors) take milliseconds instead of minutes.

The semantics — ring distance, closest-first, ties toward the smaller
id — are the ones defined in :mod:`repro.util.ids`; the test-suite
cross-validates this module against the object-level
:class:`repro.past.ReplicatedStore` on the same inputs.

Two families of kernels live here:

* the original 64-bit single-word kernels (:func:`replica_table`,
  :class:`IdSpaceModel`) used by the figure sweeps, where a 64-bit
  ring is statistically indistinguishable from the 128-bit one;
* exact 128-bit *two-word* kernels (:func:`pack_ids`,
  :func:`searchsorted_words`, :func:`ring_distance_words`,
  :func:`replica_table_words`) operating on aligned ``(hi, lo)``
  uint64 array pairs.  These share the ring semantics bit-for-bit
  with :mod:`repro.util.ids` and are the substrate of the compact
  overlay engine (:mod:`repro.perf.compact`), which must agree with
  the object engine on *real* 128-bit ids, not a scaled model.
"""

from __future__ import annotations

import numpy as np

RING_BITS = 64
_DTYPE = np.uint64

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def _as_ring_array(values) -> np.ndarray:
    arr = np.asarray(values, dtype=_DTYPE)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D array of ids")
    return arr


def _ring_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ring distance; relies on well-defined uint64 wrap."""
    diff = a - b
    return np.minimum(diff, np.zeros_like(diff) - diff)


def _duplicate_positions(values: np.ndarray) -> np.ndarray:
    """Boolean mask of every position holding a repeat of an earlier draw.

    The *first* occurrence of each value (in array order) is kept
    unmarked; a stable argsort makes "first" well-defined within each
    run of equal values.
    """
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    dup_sorted = np.empty(len(values), dtype=bool)
    dup_sorted[:1] = False
    dup_sorted[1:] = ranked[1:] == ranked[:-1]
    dup = np.empty(len(values), dtype=bool)
    dup[order] = dup_sorted
    return dup


def replica_table(sorted_ids: np.ndarray, keys: np.ndarray, k: int) -> np.ndarray:
    """Indices (into ``sorted_ids``) of the k closest nodes per key.

    ``sorted_ids`` must be ascending and duplicate-free.  Returns shape
    ``(len(keys), k)``; column order is closest-first with ties broken
    toward the smaller id, matching :func:`repro.util.ids.closest_ids`.
    """
    sorted_ids = _as_ring_array(sorted_ids)
    keys = _as_ring_array(keys)
    n = len(sorted_ids)
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > n:
        raise ValueError(f"k={k} exceeds population {n}")

    if 2 * k >= n:
        # Small population: rank every node for every key.
        cand = np.broadcast_to(np.arange(n), (len(keys), n))
    else:
        pos = np.searchsorted(sorted_ids, keys)
        offsets = np.arange(-k, k)
        cand = (pos[:, None] + offsets[None, :]) % n

    cand_ids = sorted_ids[cand]
    dist = _ring_distance(cand_ids, keys[:, None])
    order = np.lexsort((cand_ids, dist), axis=-1)
    return np.take_along_axis(cand, order[:, :k], axis=1)


class IdSpaceModel:
    """A population of node ids with per-node boolean attributes.

    The model owns a sorted id array plus aligned flag arrays
    (``malicious`` by default) and answers vectorised replica-set
    queries.  Membership changes (:meth:`remove_nodes`,
    :meth:`add_nodes`) re-sort, keeping flags aligned — the churn
    primitive of Figure 5.
    """

    #: bound on the replica-set memo (distinct (keys, k) queries kept)
    _MEMO_LIMIT = 8

    def __init__(self, node_ids, malicious=None):
        ids = _as_ring_array(node_ids)
        order = np.argsort(ids, kind="stable")
        self.ids = ids[order]
        if len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("duplicate node ids")
        if malicious is None:
            malicious = np.zeros(len(ids), dtype=bool)
        malicious = np.asarray(malicious, dtype=bool)
        if malicious.shape != ids.shape:
            raise ValueError("malicious flags must align with ids")
        self.malicious = malicious[order]
        # input→sorted permutation; see the `sort_order` property
        self._sort_order: np.ndarray | None = order
        # replica_indices memo: the figure sweeps re-query identical
        # (keys, k) pairs once per sweep level over an unchanged
        # population.  Keyed by content (bytes hash), bumped on churn.
        self._rev = 0
        self._replica_memo: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_nodes: int,
        rng: np.random.Generator,
        malicious_fraction: float = 0.0,
    ) -> "IdSpaceModel":
        """Uniform ids; exactly ``round(p*N)`` nodes flagged malicious."""
        ids = cls.draw_unique_ids(num_nodes, rng)
        malicious = np.zeros(num_nodes, dtype=bool)
        m = int(round(malicious_fraction * num_nodes))
        if m > 0:
            malicious[rng.choice(num_nodes, size=m, replace=False)] = True
        return cls(ids, malicious)

    @staticmethod
    def draw_unique_ids(count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform duplicate-free uint64 ids, in draw order.

        The collision-retry path (probability ~2^-37 at paper scale)
        redraws *only* the duplicate positions, keeping the first
        occurrence of each value where it was drawn.  An earlier
        version returned ``np.unique(...)[:count]`` — a sorted,
        smallest-first prefix that biased retry-path ids low and
        destroyed draw order.
        """
        out = rng.integers(0, np.iinfo(np.uint64).max, size=count, dtype=np.uint64)
        while True:
            dup = _duplicate_positions(out)
            if not dup.any():
                return out
            out[dup] = rng.integers(
                0, np.iinfo(np.uint64).max, size=int(dup.sum()), dtype=np.uint64
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.ids)

    @property
    def sort_order(self) -> np.ndarray:
        """The constructor's input→sorted permutation.

        Sweeps that vary only the flags reuse one model by assigning
        ``model.malicious = flags[model.sort_order]``.  The permutation
        describes the *constructor's* population only, so it is
        invalidated by churn: after :meth:`remove_nodes` /
        :meth:`add_nodes` the positions it maps to no longer exist and
        a silent reuse would misalign every flag.
        """
        if self._sort_order is None:
            raise RuntimeError(
                "sort_order is stale: membership changed since "
                "construction; rebuild the model (or recompute flags "
                "against the current `ids`) instead of reusing the "
                "constructor permutation"
            )
        return self._sort_order

    def replica_indices(self, keys, k: int) -> np.ndarray:
        """(M, k) indices of each key's replica set, closest first.

        Memoised on ``(keys, k)`` content until the next membership
        change — a pure cache, so results are byte-identical with and
        without it.  The returned array is shared and marked
        read-only; copy before mutating.
        """
        keys_arr = _as_ring_array(keys)
        # Keyed on the literal key bytes, not hash(bytes): a hash
        # collision between two key arrays would silently return the
        # wrong table.  The arrays are small (anchor samples), so
        # holding the bytes in the memo key is cheap.
        token = (int(k), self._rev, keys_arr.tobytes())
        table = self._replica_memo.get(token)
        if table is None:
            if len(self._replica_memo) >= self._MEMO_LIMIT:
                self._replica_memo.clear()
            table = replica_table(self.ids, keys_arr, k)
            table.setflags(write=False)
            self._replica_memo[token] = table
        return table

    def replica_ids(self, keys, k: int) -> np.ndarray:
        return self.ids[self.replica_indices(keys, k)]

    def any_malicious_holder(self, keys, k: int) -> np.ndarray:
        """Per key: is any replica-set member malicious? (THA disclosure)"""
        return self.malicious[self.replica_indices(keys, k)].any(axis=1)

    def any_survivor(self, keys, k: int, failed_mask: np.ndarray) -> np.ndarray:
        """Per key: does any replica survive the failure mask?

        ``failed_mask`` aligns with ``self.ids``.  A key's object
        survives a *simultaneous* failure iff at least one of its k
        closest original nodes is outside the failed set (the closest
        survivor is then provably still in the original replica set).
        """
        failed_mask = np.asarray(failed_mask, dtype=bool)
        if failed_mask.shape != self.ids.shape:
            raise ValueError("failure mask must align with ids")
        return (~failed_mask[self.replica_indices(keys, k)]).any(axis=1)

    # ------------------------------------------------------------------
    # membership changes (churn)
    # ------------------------------------------------------------------
    def remove_nodes(self, indices) -> None:
        keep = np.ones(self.size, dtype=bool)
        keep[np.asarray(indices, dtype=np.intp)] = False
        self.ids = self.ids[keep]
        self.malicious = self.malicious[keep]
        self._sort_order = None
        self._rev += 1
        self._replica_memo.clear()

    def add_nodes(self, new_ids, malicious=None) -> None:
        new_ids = _as_ring_array(new_ids)
        if malicious is None:
            malicious = np.zeros(len(new_ids), dtype=bool)
        malicious = np.asarray(malicious, dtype=bool)
        ids = np.concatenate([self.ids, new_ids])
        flags = np.concatenate([self.malicious, malicious])
        order = np.argsort(ids, kind="stable")
        self.ids = ids[order]
        self.malicious = flags[order]
        if len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("duplicate node ids after add")
        self._sort_order = None
        self._rev += 1
        self._replica_memo.clear()

    def benign_indices(self) -> np.ndarray:
        return np.flatnonzero(~self.malicious)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdSpaceModel(n={self.size}, malicious={int(self.malicious.sum())})"


# ----------------------------------------------------------------------
# exact 128-bit two-word kernels
#
# A 128-bit id is carried as an aligned pair of uint64 arrays
# ``(hi, lo)`` with ``id == (hi << 64) | lo``; lexicographic order on
# the pair is numeric order on the id.  All kernels below are exact —
# no scaling, no truncation — so the compact overlay engine built on
# them agrees bit-for-bit with repro.util.ids on the real ring.
# ----------------------------------------------------------------------

def pack_ids(ids) -> tuple[np.ndarray, np.ndarray]:
    """Split an iterable of 128-bit Python ints into (hi, lo) uint64 arrays."""
    values = list(ids)
    hi = np.fromiter(
        ((int(v) >> _WORD_BITS) & _WORD_MASK for v in values),
        dtype=np.uint64, count=len(values),
    )
    lo = np.fromiter(
        (int(v) & _WORD_MASK for v in values),
        dtype=np.uint64, count=len(values),
    )
    return hi, lo


def unpack_words(hi: np.ndarray, lo: np.ndarray) -> list[int]:
    """Inverse of :func:`pack_ids`: (hi, lo) arrays back to Python ints."""
    return [(int(h) << _WORD_BITS) | int(l) for h, l in zip(hi.tolist(), lo.tolist())]


def sort_words(hi: np.ndarray, lo: np.ndarray):
    """Numeric (lexicographic on the pair) sort; returns (hi, lo, order)."""
    order = np.lexsort((lo, hi))
    return hi[order], lo[order], order


def searchsorted_words(
    hi: np.ndarray, lo: np.ndarray, key_hi, key_lo
) -> np.ndarray:
    """Leftmost insertion positions of keys in a sorted (hi, lo) pair.

    Equivalent to ``np.searchsorted(ids, keys)`` on the 128-bit values:
    searchsorted on the high words, then advance each position past
    entries whose high word ties but whose low word is still smaller.
    The advance loop runs at most max-run-of-equal-hi times, which for
    uniform ids is O(1).
    """
    key_hi = np.atleast_1d(np.asarray(key_hi, dtype=np.uint64))
    key_lo = np.atleast_1d(np.asarray(key_lo, dtype=np.uint64))
    n = len(hi)
    pos = np.searchsorted(hi, key_hi, side="left")
    while True:
        inside = pos < n
        probe = np.where(inside, pos, 0)
        step = inside & (hi[probe] == key_hi) & (lo[probe] < key_lo)
        if not step.any():
            return pos
        pos = pos + step


def _sub_words(ahi, alo, bhi, blo):
    """(a - b) mod 2^128 on word pairs, via borrow propagation."""
    lo = alo - blo
    borrow = (alo < blo).astype(np.uint64)
    hi = ahi - bhi - borrow
    return hi, lo


def ring_distance_words(ahi, alo, bhi, blo):
    """Elementwise 128-bit ring distance min(|a-b|, 2^128-|a-b|).

    Mirrors :func:`repro.util.ids.ring_distance` exactly; inputs
    broadcast like numpy ufuncs.  Returns the distance as a (hi, lo)
    pair to be compared lexicographically.
    """
    dhi, dlo = _sub_words(ahi, alo, bhi, blo)
    zero = np.zeros_like(dhi)
    nhi, nlo = _sub_words(zero, np.zeros_like(dlo), dhi, dlo)
    neg_smaller = (nhi < dhi) | ((nhi == dhi) & (nlo < dlo))
    return np.where(neg_smaller, nhi, dhi), np.where(neg_smaller, nlo, dlo)


#: masks[s] keeps the low ``s`` bits of a uint64 word (s in [0, 64]);
#: indexing by a shift array sidesteps numpy's undefined behaviour for
#: per-element shifts of 64.
_LOW_MASKS = np.array(
    [(1 << s) - 1 for s in range(64)] + [_WORD_MASK], dtype=np.uint64
)


def clz64(values: np.ndarray) -> np.ndarray:
    """Elementwise count-leading-zeros of uint64 words (clz(0) == 64).

    Bit-smear to the right then popcount — exact for the full 64-bit
    range (a float log2 would lose the low bits past 2**53).
    """
    x = np.asarray(values, dtype=np.uint64).copy()
    for s in (1, 2, 4, 8, 16, 32):
        x |= x >> np.uint64(s)
    return (64 - np.bitwise_count(x)).astype(np.int64)


def shared_prefix_bits_words(ahi, alo, bhi, blo) -> np.ndarray:
    """Elementwise length (in bits) of the common 128-bit prefix.

    ``shared_prefix_digits(a, b, b_bits)`` is this divided by
    ``b_bits`` (floor) — the vectorised twin of
    :func:`repro.util.ids.shared_prefix_digits`, used by the batched
    packet plane to pick routing rows for whole packet fronts at once.
    """
    xhi = np.asarray(ahi, dtype=np.uint64) ^ np.asarray(bhi, dtype=np.uint64)
    xlo = np.asarray(alo, dtype=np.uint64) ^ np.asarray(blo, dtype=np.uint64)
    return np.where(xhi != 0, clz64(xhi), 64 + clz64(xlo))


def shift_right_words(hi, lo, shift) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise logical right shift of 128-bit (hi, lo) pairs.

    ``shift`` may be a scalar or a per-element array in [0, 128];
    shifts of >= 128 yield zero.  Per-element shift amounts of exactly
    0 or 64 are handled explicitly (numpy's word shifts are undefined
    at the word width).
    """
    hi = np.asarray(hi, dtype=np.uint64)
    lo = np.asarray(lo, dtype=np.uint64)
    s = np.asarray(shift, dtype=np.int64)
    hi, lo, s = np.broadcast_arrays(hi, lo, s)
    big = s >= 64
    s1 = np.where(big, s - 64, s)
    s1 = np.clip(s1, 0, 64)
    su = np.where(s1 >= 64, 0, s1).astype(np.uint64)
    shifted_hi = np.where(s1 >= 64, 0, hi >> su)
    # carry the low bits of hi into lo: hi << (64 - s1), guarded for
    # s1 == 0 (shift by 64 is undefined on uint64 words)
    carry_amt = np.where(s1 == 0, 1, 64 - s1).astype(np.uint64)
    carry = np.where(s1 == 0, 0, hi << carry_amt)
    small_lo = (lo >> su) | carry
    out_hi = np.where(big, 0, shifted_hi).astype(np.uint64)
    out_lo = np.where(big, shifted_hi, small_lo).astype(np.uint64)
    return out_hi, out_lo


def clear_low_words(hi, lo, nbits) -> tuple[np.ndarray, np.ndarray]:
    """Zero the low ``nbits`` bits of 128-bit (hi, lo) pairs.

    The prefix-bucket lower bound of the packet plane: an id masked to
    its first ``128 - nbits`` bits is the smallest id in that bucket.
    ``nbits`` may be scalar or per-element, in [0, 128].
    """
    hi = np.asarray(hi, dtype=np.uint64)
    lo = np.asarray(lo, dtype=np.uint64)
    n = np.asarray(nbits, dtype=np.int64)
    hi, lo, n = np.broadcast_arrays(hi, lo, n)
    lo_bits = np.clip(n, 0, 64)
    hi_bits = np.clip(n - 64, 0, 64)
    return hi & ~_LOW_MASKS[hi_bits], lo & ~_LOW_MASKS[lo_bits]


def digit_words(hi, lo, row, b_bits: int) -> np.ndarray:
    """Elementwise ``row``-th base-``2**b_bits`` digit of 128-bit ids.

    Row 0 is the most significant digit — the vectorised twin of
    :func:`repro.util.ids.id_digit`.  ``row`` may be scalar or a
    per-element array.
    """
    row = np.asarray(row, dtype=np.int64)
    shift = 128 - b_bits * (row + 1)
    _, low = shift_right_words(hi, lo, shift)
    return (low & np.uint64((1 << b_bits) - 1)).astype(np.int64)


def add_pow2_words(hi, lo, nbits) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise (value + 2**nbits) mod 2**128 on (hi, lo) pairs.

    The exclusive upper bound of a prefix bucket/run: lower bound plus
    the bucket width.  ``nbits`` in [0, 128]; 128 adds a full wrap
    (identity).
    """
    hi = np.asarray(hi, dtype=np.uint64)
    lo = np.asarray(lo, dtype=np.uint64)
    n = np.asarray(nbits, dtype=np.int64)
    hi, lo, n = np.broadcast_arrays(hi, lo, n)
    lo_add = np.where(n < 64, np.uint64(1) << n.clip(0, 63).astype(np.uint64), 0)
    hi_add = np.where(
        (n >= 64) & (n < 128),
        np.uint64(1) << (n - 64).clip(0, 63).astype(np.uint64),
        0,
    )
    new_lo = lo + lo_add
    carry = (new_lo < lo).astype(np.uint64)
    return (hi + hi_add + carry).astype(np.uint64), new_lo.astype(np.uint64)


def less_words(ahi, alo, bhi, blo) -> np.ndarray:
    """Elementwise a < b on 128-bit (hi, lo) pairs."""
    ahi = np.asarray(ahi, dtype=np.uint64)
    bhi = np.asarray(bhi, dtype=np.uint64)
    return (ahi < bhi) | ((ahi == bhi) & (np.asarray(alo, dtype=np.uint64)
                                          < np.asarray(blo, dtype=np.uint64)))


def merge_insert_positions(at, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Index plan for merging ``k`` presorted elements into an ``n``-array.

    ``at`` are the leftmost insertion points (``searchsorted`` output,
    ascending) of the new elements against the existing array.  Returns
    ``(target, keep)``: ``target[j]`` is the position of new element
    ``j`` in the merged ``n + k`` array, and ``keep`` masks the slots
    occupied by the original elements (in their original order).

    One plan serves every aligned companion array — the compact engine
    scatters ``hi``, ``lo`` *and* ``alive`` through the same indices —
    where repeated ``np.insert`` calls would redo the index arithmetic
    and a full copy per array.
    """
    at = np.asarray(at, dtype=np.intp)
    k = len(at)
    target = at + np.arange(k, dtype=np.intp)
    keep = np.ones(n + k, dtype=bool)
    keep[target] = False
    return target, keep


def replica_table_words(
    sorted_hi: np.ndarray,
    sorted_lo: np.ndarray,
    key_hi: np.ndarray,
    key_lo: np.ndarray,
    k: int,
) -> np.ndarray:
    """128-bit twin of :func:`replica_table`.

    ``(sorted_hi, sorted_lo)`` must be numerically ascending and
    duplicate-free.  Returns ``(len(keys), k)`` indices, closest-first
    with ties toward the smaller id — the
    :func:`repro.util.ids.closest_ids` ranking on the real ring.
    """
    n = len(sorted_hi)
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > n:
        raise ValueError(f"k={k} exceeds population {n}")
    key_hi = np.atleast_1d(np.asarray(key_hi, dtype=np.uint64))
    key_lo = np.atleast_1d(np.asarray(key_lo, dtype=np.uint64))

    if 2 * k >= n:
        cand = np.broadcast_to(np.arange(n), (len(key_hi), n))
    else:
        pos = searchsorted_words(sorted_hi, sorted_lo, key_hi, key_lo)
        offsets = np.arange(-k, k)
        cand = (pos[:, None] + offsets[None, :]) % n

    cand_hi = sorted_hi[cand]
    cand_lo = sorted_lo[cand]
    dist_hi, dist_lo = ring_distance_words(
        cand_hi, cand_lo, key_hi[:, None], key_lo[:, None]
    )
    # lexsort ranks by the last key first: distance (hi then lo), then
    # the candidate id (hi then lo) to break ties toward the smaller id.
    order = np.lexsort((cand_lo, cand_hi, dist_lo, dist_hi), axis=-1)
    return np.take_along_axis(cand, order[:, :k], axis=1)
