"""Closed-form expectations for TAP's failure/corruption behaviour.

These are the analytic counterparts of the paper's simulations, used
to cross-check Monte-Carlo results in the test-suite and to annotate
benchmark output with expected values.

Model: N nodes, a uniformly random subset of size ``round(p*N)`` is
failed (or malicious); each tunnel has ``l`` hops with independent
uniformly-placed hopids, each replicated on ``k`` nodes.  Because the
k-closest sets of independent uniform keys are (asymptotically)
independent uniform k-subsets, hop events are hypergeometric.
"""

from __future__ import annotations

from scipy.special import comb


def _hyper_all_in_subset(n_total: int, n_subset: int, k: int) -> float:
    """P(all k draws land in the marked subset), without replacement."""
    if k > n_subset:
        return 0.0
    return float(comb(n_subset, k, exact=False) / comb(n_total, k, exact=False))


def _hyper_any_in_subset(n_total: int, n_subset: int, k: int) -> float:
    """P(at least one of k draws is in the marked subset)."""
    if n_subset <= 0:
        return 0.0
    if k > n_total - n_subset:
        return 1.0
    none = comb(n_total - n_subset, k, exact=False) / comb(n_total, k, exact=False)
    return float(1.0 - none)


def tunnel_failure_prob_current(p: float, length: int, n_nodes: int | None = None) -> float:
    """Current tunneling: a fixed-node tunnel fails iff any relay fails.

    ``1 - (1-p)^l`` asymptotically; with ``n_nodes`` the exact
    without-replacement form is used.
    """
    _check(p, length)
    if n_nodes is None:
        return 1.0 - (1.0 - p) ** length
    failed = round(p * n_nodes)
    survive = comb(n_nodes - failed, length) / comb(n_nodes, length)
    return float(1.0 - survive)


def tunnel_failure_prob_tap(
    p: float, length: int, k: int, n_nodes: int | None = None
) -> float:
    """TAP: a hop fails iff *all k* replicas fail → ``1 - (1 - p^k)^l``."""
    _check(p, length)
    if k < 1:
        raise ValueError("k must be >= 1")
    if n_nodes is None:
        hop_fail = p**k
    else:
        failed = round(p * n_nodes)
        hop_fail = _hyper_all_in_subset(n_nodes, failed, k)
    return 1.0 - (1.0 - hop_fail) ** length


def tha_disclosure_prob(p: float, k: int, n_nodes: int | None = None) -> float:
    """P(adversary learns one THA) = P(any of k holders malicious)."""
    _check(p, 1)
    if k < 1:
        raise ValueError("k must be >= 1")
    if n_nodes is None:
        return 1.0 - (1.0 - p) ** k
    malicious = round(p * n_nodes)
    return _hyper_any_in_subset(n_nodes, malicious, k)


def tunnel_corruption_prob(
    p: float, length: int, k: int, n_nodes: int | None = None
) -> float:
    """Case-1 corruption (§6): adversary knows *all* hops' THAs."""
    return tha_disclosure_prob(p, k, n_nodes) ** length


def first_and_tail_prob(p: float, k: int, n_nodes: int | None = None) -> float:
    """Case-2 compromise (§6): adversary controls the first *and* tail
    tunnel hop node (timing analysis); approximated as the two roots
    being malicious independently."""
    root_malicious = p if n_nodes is None else round(p * n_nodes) / n_nodes
    del k  # the root is one specific node; k does not enter case 2
    return root_malicious**2


def expected_route_hops(n_nodes: int, b_bits: int = 4) -> float:
    """Pastry's ``log_{2^b} N`` expected overlay route length."""
    import math

    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if n_nodes == 1:
        return 0.0
    return math.log(n_nodes, 2**b_bits)


def _check(p: float, length: int) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"fraction p={p} outside [0, 1]")
    if length < 1:
        raise ValueError("tunnel length must be >= 1")
