"""Anonymity metrics from the paper's security analysis (§6).

* the responder's guess probability ``1/(N-1)``;
* the confidence a malicious tunnel hop has that its immediate
  predecessor is the initiator (mix homogeneity argument);
* anonymity-set entropy and the normalised *degree of anonymity*
  (Diaz et al. / Serjantov–Danezis), the standard way to score the
  probability distributions the adversary ends up with.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def responder_guess_probability(n_nodes: int) -> float:
    """§6: the responder guesses the initiator with prob ``1/(N-1)``.

    All other nodes are equally likely to be the initiator because the
    request exits from a tunnel tail unrelated to the initiator.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    return 1.0 / (n_nodes - 1)


def predecessor_confidence(length: int, position_known: bool = False, position: int = 1) -> float:
    """Confidence that a malicious hop's predecessor is the initiator.

    With mix homogeneity a malicious hop node cannot tell whether it is
    the first hop: the predecessor is the initiator only if it is.
    Without position knowledge each of the ``length`` positions is
    equally likely, giving ``1/length``.  If the adversary somehow
    *knows* the position, confidence is 1 at the first hop, else 0.
    """
    if length < 1:
        raise ValueError("tunnel length must be >= 1")
    if position_known:
        if not 1 <= position <= length:
            raise ValueError("position outside tunnel")
        return 1.0 if position == 1 else 0.0
    return 1.0 / length


def anonymity_set_entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy (bits) of the adversary's initiator distribution.

    Zero-probability entries are allowed and contribute nothing; the
    distribution must sum to 1 (±1e-9).
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or len(probs) == 0:
        raise ValueError("need a non-empty 1-D probability vector")
    if np.any(probs < -1e-12):
        raise ValueError("negative probability")
    total = probs.sum()
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ValueError(f"probabilities sum to {total}, not 1")
    nz = probs[probs > 0]
    return float(-(nz * np.log2(nz)).sum())


def degree_of_anonymity(probabilities: Sequence[float]) -> float:
    """Normalised entropy ``d = H(X) / log2(N)`` in [0, 1].

    ``d = 1`` means the adversary learned nothing (uniform over N
    candidates); ``d = 0`` means fully identified.  For N == 1 the
    initiator is trivially identified and d = 0.
    """
    probs = np.asarray(probabilities, dtype=float)
    n = len(probs)
    if n <= 1:
        return 0.0
    h_max = math.log2(n)
    return anonymity_set_entropy(probs) / h_max


def uniform_with_suspect(n_candidates: int, suspect_prob: float) -> np.ndarray:
    """Distribution where one suspect has ``suspect_prob`` and the rest
    share the remainder uniformly — the shape timing-analysis evidence
    produces.  Convenience builder for the metrics above."""
    if n_candidates < 2:
        raise ValueError("need at least two candidates")
    if not 0.0 <= suspect_prob <= 1.0:
        raise ValueError("suspect_prob outside [0, 1]")
    rest = (1.0 - suspect_prob) / (n_candidates - 1)
    out = np.full(n_candidates, rest, dtype=float)
    out[0] = suspect_prob
    return out
