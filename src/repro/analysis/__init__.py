"""Analysis layer: vectorised Monte-Carlo model, metrics, closed forms.

* :mod:`repro.analysis.idspace` — NumPy id-ring model computing the
  exact same replica-set mapping as :mod:`repro.past`, vectorised for
  the paper's 10^4-node, 5,000-tunnel experiments;
* :mod:`repro.analysis.anonymity` — anonymity metrics from §6
  (responder guess probability, predecessor confidence, anonymity-set
  entropy / degree of anonymity);
* :mod:`repro.analysis.theory` — closed-form expectations used to
  cross-check the simulations (tunnel failure and corruption
  probabilities, expected route lengths).
"""

from repro.analysis.idspace import IdSpaceModel, replica_table
from repro.analysis.anonymity import (
    responder_guess_probability,
    predecessor_confidence,
    anonymity_set_entropy,
    degree_of_anonymity,
)
from repro.analysis.theory import (
    tunnel_failure_prob_current,
    tunnel_failure_prob_tap,
    tha_disclosure_prob,
    tunnel_corruption_prob,
    first_and_tail_prob,
    expected_route_hops,
)

__all__ = [
    "IdSpaceModel",
    "replica_table",
    "responder_guess_probability",
    "predecessor_confidence",
    "anonymity_set_entropy",
    "degree_of_anonymity",
    "tunnel_failure_prob_current",
    "tunnel_failure_prob_tap",
    "tha_disclosure_prob",
    "tunnel_corruption_prob",
    "first_and_tail_prob",
    "expected_route_hops",
]
