"""Command-line entry point: regenerate any figure of the paper.

Usage::

    tap-repro fig2 [--fast] [--csv out.csv]
    tap-repro all  [--fast] [--outdir results/]
    tap-repro fig6 [--fast] [--metrics-out metrics.json] [--audit]

``--fast`` runs the scaled-down configs (same shapes, ~100x quicker);
without it the paper-scale parameters are used.

``--metrics-out`` threads a :class:`repro.obs.MetricsRegistry` through
every runner that supports it and writes the final snapshot (counters,
gauges, per-hop latency histograms with p50/p95/p99) as JSON — plus a
sibling ``.csv`` of tidy per-instrument rows.  ``--audit`` enables
:class:`repro.obs.InvariantAuditor` checks inside supporting runners
(the run aborts on the first invariant violation).
"""

from __future__ import annotations

import argparse
import inspect
import pathlib
import sys

from repro.experiments import (
    ComparisonConfig,
    ReplyDurabilityConfig,
    run_reply_durability,
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    HintStalenessConfig,
    ScatterConfig,
    SecureRoutingConfig,
    SessionSurvivalConfig,
    TimingAttackConfig,
    TradeoffConfig,
    render_table,
    rows_to_csv,
    run_anonymity_comparison,
    run_fig2,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    run_hint_staleness,
    run_scatter,
    run_secure_routing,
    run_session_survival,
    run_timing_attack,
    run_tradeoff,
)

_FIGURES = {
    "fig2": (Fig2Config, run_fig2, "tunnel failures vs node failures"),
    "fig3": (Fig3Config, run_fig3, "corruption vs malicious fraction"),
    "fig4a": (Fig4Config, run_fig4a, "corruption vs replication factor"),
    "fig4b": (Fig4Config, run_fig4b, "corruption vs tunnel length"),
    "fig5": (Fig5Config, run_fig5, "corruption over time under churn"),
    "fig6": (Fig6Config, run_fig6, "transfer latency vs network size"),
}

#: extension experiments beyond the paper's figures (run by name, or
#: via 'extensions'; excluded from 'all', which regenerates the paper)
_EXTENSIONS = {
    "tradeoff": (TradeoffConfig, run_tradeoff, "k/l functionality-anonymity surface"),
    "hints": (HintStalenessConfig, run_hint_staleness, "IP-hint staleness under churn"),
    "scatter": (ScatterConfig, run_scatter, "scattered vs uniform anchor selection"),
    "timing": (TimingAttackConfig, run_timing_attack, "timing analysis vs defences"),
    "secure-routing": (SecureRoutingConfig, run_secure_routing,
                       "verified lookups vs routing interception"),
    "sessions": (SessionSurvivalConfig, run_session_survival,
                 "long-running session survival under churn"),
    "comparison": (ComparisonConfig, run_anonymity_comparison,
                   "TAP vs Crowds vs Onion Routing balance point"),
    "reply-durability": (ReplyDurabilityConfig, run_reply_durability,
                         "anonymous-email reply survival after churn"),
}


_ALL_RUNNERS = {**_FIGURES, **_EXTENSIONS}


def _run_one(
    name: str,
    fast: bool,
    seed: int | None,
    metrics=None,
    audit: bool = False,
) -> list[dict]:
    config_cls, runner, _ = _ALL_RUNNERS[name]
    config = config_cls.fast() if fast else config_cls()
    if seed is not None:
        from dataclasses import replace

        config = replace(config, seed=seed)
    kwargs = {}
    params = inspect.signature(runner).parameters
    if metrics is not None and "metrics" in params:
        kwargs["metrics"] = metrics
    if audit and "audit" in params:
        kwargs["audit"] = True
    return runner(config, **kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tap-repro",
        description="Regenerate the figures of the TAP paper (ICPP 2004).",
    )
    parser.add_argument(
        "figure",
        choices=[*_FIGURES, *_EXTENSIONS, "all", "extensions"],
        help="which figure/extension to regenerate ('all' = the "
             "paper's figures; 'extensions' = the beyond-paper suite)",
    )
    parser.add_argument("--fast", action="store_true",
                        help="scaled-down config (quick, same shapes)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment seed")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        help="also write rows as CSV to this path")
    parser.add_argument("--outdir", type=pathlib.Path, default=None,
                        help="with 'all': write one CSV per figure here")
    parser.add_argument("--metrics-out", type=pathlib.Path, default=None,
                        help="write a repro.obs metrics snapshot (JSON, plus "
                             "a sibling .csv of per-instrument rows)")
    parser.add_argument("--audit", action="store_true",
                        help="run invariant audits inside supporting runners "
                             "(abort on the first violation)")
    args = parser.parse_args(argv)

    metrics = None
    if args.metrics_out is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()

    if args.figure == "all":
        names = list(_FIGURES)
    elif args.figure == "extensions":
        names = list(_EXTENSIONS)
    else:
        names = [args.figure]
    for name in names:
        rows = _run_one(name, args.fast, args.seed,
                        metrics=metrics, audit=args.audit)
        _, _, description = _ALL_RUNNERS[name]
        print(render_table(rows, title=f"{name}: {description}"))
        if args.csv is not None and len(names) == 1:
            args.csv.write_text(rows_to_csv(rows))
            print(f"wrote {args.csv}")
        if args.outdir is not None:
            args.outdir.mkdir(parents=True, exist_ok=True)
            target = args.outdir / f"{name}.csv"
            target.write_text(rows_to_csv(rows))
            print(f"wrote {target}")
    if metrics is not None:
        from repro.experiments.runner import metrics_rows

        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_out.write_text(metrics.to_json() + "\n")
        csv_path = args.metrics_out.with_suffix(".csv")
        csv_path.write_text(rows_to_csv(metrics_rows(metrics)))
        print(f"wrote {args.metrics_out} and {csv_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
