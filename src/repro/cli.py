"""Command-line entry point: regenerate any figure of the paper.

Usage::

    tap-repro fig2 [--fast] [--csv out.csv]
    tap-repro all  [--fast] [--outdir results/]
    tap-repro fig6 [--fast] [--metrics-out metrics.json] [--audit]
    tap-repro fig6 [--fast] [--trace-out trace.json] [--trace-redact]
    tap-repro trace trace.json [--csv breakdown.csv]
    tap-repro chaos [--plan lossy] [--seed S] [--fast] [--list-plans]
    tap-repro report results/ [--json report.json] [--md report.md]
    tap-repro gate results/ [--slo slo.toml]

``--fast`` runs the scaled-down configs (same shapes, ~100x quicker);
without it the paper-scale parameters are used.

``--metrics-out`` threads a :class:`repro.obs.MetricsRegistry` through
every runner that supports it and writes the final snapshot (counters,
gauges, per-hop latency histograms with p50/p95/p99) as JSON — plus a
sibling ``.csv`` of tidy per-instrument rows.  ``--metrics-format``
selects ``json`` (default), ``jsonl`` (one instrument per line, for
log shippers), or ``openmetrics`` (Prometheus exposition text).
``--audit`` enables
:class:`repro.obs.InvariantAuditor` checks inside supporting runners
(the run aborts on the first invariant violation).

``--trace-out`` threads a :class:`repro.obs.SpanTracer` (and an
:class:`repro.obs.EventTrace`) through supporting runners and writes a
Chrome trace-event JSON — open it in Perfetto or ``chrome://tracing``
— plus a sibling ``.events.jsonl`` of the structured event trace.
``--trace-redact`` applies the anonymity-aware redaction to the
export.  ``tap-repro trace FILE`` reconstructs the span trees of such
an export and prints the critical path of the slowest trace plus a
per-phase latency breakdown (crypto / routing / hint-probe / repair).

``tap-repro chaos`` runs live sessions under a seeded
:mod:`repro.faults` plan and reports availability / MTTR against a
no-policy baseline; same seed + same plan replays byte-identically
(``--assert-deterministic`` proves it, ``--assert-availability`` turns
the availability bar into an exit code for CI).

Every ``run`` / ``chaos`` invocation that writes artifacts also drops
a ``manifest.json`` run ledger beside them (``--manifest-out`` moves
it): git sha, full config + seeds, rows digests, artifact hashes, and
a canonical-core digest that is byte-identical for any ``--workers``
value.  ``tap-repro report DIR`` aggregates every manifest, metrics
snapshot, chaos report, and span trace under ``DIR`` into one
consolidated document (markdown via ``--md``, JSON via ``--json``);
``tap-repro gate DIR --slo slo.toml`` evaluates the declarative SLOs
against the report's indicators and exits 2 on violation — the CI
contract.
"""

from __future__ import annotations

import argparse
import inspect
import pathlib
import sys

from repro.experiments import (
    ComparisonConfig,
    DurabilityConfig,
    ReplyDurabilityConfig,
    run_durability,
    run_reply_durability,
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    HintStalenessConfig,
    ScatterConfig,
    SecureRoutingConfig,
    SessionSurvivalConfig,
    TimingAttackConfig,
    TradeoffConfig,
    render_table,
    rows_to_csv,
    run_anonymity_comparison,
    run_fig2,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    run_hint_staleness,
    run_scatter,
    run_scale_churn,
    run_scale_latency,
    run_secure_routing,
    run_session_survival,
    run_timing_attack,
    run_tradeoff,
    ScaleChurnConfig,
    ScaleLatencyConfig,
)

_FIGURES = {
    "fig2": (Fig2Config, run_fig2, "tunnel failures vs node failures"),
    "fig3": (Fig3Config, run_fig3, "corruption vs malicious fraction"),
    "fig4a": (Fig4Config, run_fig4a, "corruption vs replication factor"),
    "fig4b": (Fig4Config, run_fig4b, "corruption vs tunnel length"),
    "fig5": (Fig5Config, run_fig5, "corruption over time under churn"),
    "fig6": (Fig6Config, run_fig6, "transfer latency vs network size"),
}

#: extension experiments beyond the paper's figures (run by name, or
#: via 'extensions'; excluded from 'all', which regenerates the paper)
_EXTENSIONS = {
    "tradeoff": (TradeoffConfig, run_tradeoff, "k/l functionality-anonymity surface"),
    "hints": (HintStalenessConfig, run_hint_staleness, "IP-hint staleness under churn"),
    "scatter": (ScatterConfig, run_scatter, "scattered vs uniform anchor selection"),
    "timing": (TimingAttackConfig, run_timing_attack, "timing analysis vs defences"),
    "secure-routing": (SecureRoutingConfig, run_secure_routing,
                       "verified lookups vs routing interception"),
    "sessions": (SessionSurvivalConfig, run_session_survival,
                 "long-running session survival under churn"),
    "comparison": (ComparisonConfig, run_anonymity_comparison,
                   "TAP vs Crowds vs Onion Routing balance point"),
    "reply-durability": (ReplyDurabilityConfig, run_reply_durability,
                         "anonymous-email reply survival after churn"),
    "scale-churn": (ScaleChurnConfig, run_scale_churn,
                    "compact-engine replica survival at 10^5 nodes"),
    "scale-latency": (ScaleLatencyConfig, run_scale_latency,
                      "batched direct-vs-tunnel latency at 10^5 nodes"),
    "durability": (DurabilityConfig, run_durability,
                   "k-replication vs (k,n) erasure under chaos"),
}


_ALL_RUNNERS = {**_FIGURES, **_EXTENSIONS}


def _run_one(
    name: str,
    fast: bool,
    seed: int | None,
    metrics=None,
    audit: bool = False,
    tracer=None,
    event_trace=None,
    workers: int | None = None,
    million: bool = False,
    volatile_out: dict | None = None,
) -> tuple[list[dict], object]:
    config_cls, runner, _ = _ALL_RUNNERS[name]
    if million:
        if not hasattr(config_cls, "million"):
            raise SystemExit(
                f"error: {name} has no million-node configuration "
                f"(--million applies to scale-churn and scale-latency)"
            )
        config = config_cls.million()
    else:
        config = config_cls.fast() if fast else config_cls()
    if seed is not None:
        from dataclasses import replace

        config = replace(config, seed=seed)
    kwargs = {}
    params = inspect.signature(runner).parameters
    if metrics is not None and "metrics" in params:
        kwargs["metrics"] = metrics
    if audit and "audit" in params:
        kwargs["audit"] = True
    if tracer is not None and "tracer" in params:
        kwargs["tracer"] = tracer
    if event_trace is not None and "event_trace" in params:
        kwargs["event_trace"] = event_trace
    if workers is not None and "workers" in params:
        kwargs["workers"] = workers
    if volatile_out is not None and "volatile_out" in params:
        kwargs["volatile_out"] = volatile_out
    return runner(config, **kwargs), config


def _row_summary(name: str, rows: list[dict], config=None) -> dict:
    """Headline numbers recorded in the manifest, per runner."""
    if name == "scale-churn":
        from repro.experiments.scale_churn import summarize_rows

        return summarize_rows(rows, config)
    if name == "scale-latency":
        from repro.experiments.scale_latency import summarize_rows

        return summarize_rows(rows, config)
    if name == "durability":
        from repro.experiments.durability import summarize_rows

        return summarize_rows(rows)
    return {}


def _trace_main(argv: list[str]) -> int:
    """The ``tap-repro trace FILE`` subcommand: critical-path report."""
    parser = argparse.ArgumentParser(
        prog="tap-repro trace",
        description="Analyse a Chrome trace written by --trace-out: "
                    "critical path + per-phase latency breakdown.",
    )
    parser.add_argument("path", type=pathlib.Path,
                        help="trace JSON written by --trace-out")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        help="also write the phase breakdown as CSV")
    args = parser.parse_args(argv)

    from repro.experiments import render_table, rows_to_csv
    from repro.obs.critical_path import (
        render_critical_path,
        summarize_trace_file,
    )

    try:
        summary = summarize_trace_file(args.path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot analyse {args.path}: {exc}", file=sys.stderr)
        return 1
    if not summary["spans"]:
        print(f"error: {args.path} contains no spans", file=sys.stderr)
        return 1

    print(f"{summary['spans']} spans in {summary['traces']} traces, "
          f"{summary['end_to_end_s']:.6f} s end-to-end\n")
    print(render_table(
        [
            {
                "phase": row["phase"],
                "time_s": row["time_s"],
                "share": row["share"],
                "spans": row["spans"],
                "links": row["links"],
            }
            for row in summary["breakdown"]
        ],
        title="per-phase latency attribution (self time)",
    ))
    if summary["slowest"] is not None:
        print(render_critical_path(summary["slowest"]))
    if args.csv is not None:
        args.csv.write_text(rows_to_csv(summary["breakdown"]))
        print(f"wrote {args.csv}")
    return 0


def _chaos_main(argv: list[str]) -> int:
    """The ``tap-repro chaos`` subcommand: seeded fault injection.

    Exit codes: 0 ok, 2 availability below ``--assert-availability``,
    3 determinism violation under ``--assert-deterministic``.
    """
    parser = argparse.ArgumentParser(
        prog="tap-repro chaos",
        description="Run TAP sessions under a deterministic fault plan "
                    "and report availability / MTTR.  Same seed + same "
                    "plan => byte-identical report and event trace.",
    )
    parser.add_argument("--plan", default="lossy",
                        help="named fault plan (see --list-plans)")
    parser.add_argument("--list-plans", action="store_true",
                        help="list the shipped fault plans and exit")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the chaos seed (default 2004)")
    parser.add_argument("--fast", action="store_true",
                        help="scaled-down run (100 nodes, 12 rounds)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the round count")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the overlay size")
    parser.add_argument("--sessions", type=int, default=None,
                        help="override the concurrent session count")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the no-policy comparison run")
    parser.add_argument("--report-out", type=pathlib.Path, default=None,
                        help="write the canonical report JSON here")
    parser.add_argument("--events-out", type=pathlib.Path, default=None,
                        help="write the event trace JSONL here")
    parser.add_argument("--manifest-out", type=pathlib.Path, default=None,
                        help="write the run-ledger manifest here (default: "
                             "manifest.json next to --report-out)")
    parser.add_argument("--assert-availability", type=float, default=None,
                        metavar="X", help="exit 2 if availability < X")
    parser.add_argument("--assert-deterministic", action="store_true",
                        help="run twice and exit 3 if the digests differ")
    parser.add_argument("--workers", "--parallel", dest="workers", type=int,
                        default=None, metavar="N",
                        help="worker processes for the policy / baseline / "
                             "replay runs (negative = all cores); every "
                             "run is deterministic, so results are "
                             "identical for any value")
    args = parser.parse_args(argv)

    from dataclasses import replace

    from repro.faults import (
        NAMED_PLANS,
        ChaosConfig,
        availability_report,
        canonical_json,
        named_plan,
        run_chaos_jobs,
    )

    if args.list_plans:
        for name in sorted(NAMED_PLANS):
            plan = NAMED_PLANS[name]
            print(f"{name:12s} {plan.description}")
        return 0
    try:
        plan = named_plan(args.plan)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1

    config = ChaosConfig.fast() if args.fast else ChaosConfig()
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.sessions is not None:
        overrides["sessions"] = args.sessions
    if overrides:
        config = replace(config, **overrides)

    import time

    t0 = time.perf_counter()
    # The policy run, the no-policy baseline, and the determinism
    # replay are independent deterministic runs — one job list, fanned
    # out when --workers asks for it.
    jobs = [(plan, config, True)]
    if not args.no_baseline:
        jobs.append((plan, config, False))
    if args.assert_deterministic:
        jobs.append((plan, config, True))
    results = run_chaos_jobs(jobs, workers=args.workers)
    report = results[0]
    baseline = results[1] if not args.no_baseline else None
    replay = results[-1] if args.assert_deterministic else None

    rows = [dict(r) for r in report["rows"]]
    print(render_table(rows, title=f"chaos '{plan.name}': per-session health"))
    print(availability_report(report, baseline=baseline))

    written: list[tuple[pathlib.Path, str]] = []
    if args.report_out is not None:
        args.report_out.parent.mkdir(parents=True, exist_ok=True)
        args.report_out.write_text(canonical_json(report))
        print(f"wrote {args.report_out}")
        written.append((args.report_out, "chaos-report"))
    if args.events_out is not None:
        args.events_out.parent.mkdir(parents=True, exist_ok=True)
        args.events_out.write_text(report["events_jsonl"])
        print(f"wrote {args.events_out}")
        written.append((args.events_out, "events"))

    manifest_path = args.manifest_out
    if manifest_path is None and written:
        manifest_path = written[0][0].parent / "manifest.json"
    if manifest_path is not None:
        from repro.obs.manifest import (
            artifact_entry,
            build_manifest,
            config_dict,
            write_manifest,
        )

        def _arm(rep):
            return {
                "rows": len(rep["rows"]),
                "digest": rep["digest"],
                "summary": dict(rep["summary"]),
            }

        results = {"chaos": _arm(report)}
        if baseline is not None:
            results["chaos-baseline"] = _arm(baseline)
        manifest = build_manifest(
            f"chaos {plan.name}",
            configs={"chaos": config_dict(config)},
            results=results,
            seed=config.seed,
            artifacts=[
                artifact_entry(path, kind, base=manifest_path.parent)
                for path, kind in written
            ],
            extra={"plan": plan.name, "baseline": not args.no_baseline},
            volatile={
                "wall_time_s": round(time.perf_counter() - t0, 6),
                "timestamp": time.time(),
                "workers": args.workers,
                "argv": list(argv),
            },
        )
        manifest = write_manifest(manifest, manifest_path)
        print(f"wrote {manifest_path} (digest {manifest['digest'][:16]}...)")

    if args.assert_deterministic:
        if replay["digest"] != report["digest"]:
            print(
                f"DETERMINISM VIOLATION: replay digest "
                f"{replay['digest']} != {report['digest']}",
                file=sys.stderr,
            )
            return 3
        print(f"deterministic replay ok ({report['digest'][:16]}...)")
    if args.assert_availability is not None:
        avail = report["summary"]["availability"]
        if avail < args.assert_availability:
            print(
                f"AVAILABILITY BELOW THRESHOLD: {avail:.4f} < "
                f"{args.assert_availability:.4f}",
                file=sys.stderr,
            )
            return 2
        print(f"availability {avail:.4f} >= {args.assert_availability:.4f} ok")
    return 0


def _report_main(argv: list[str]) -> int:
    """``tap-repro report DIR``: consolidate manifests + artifacts."""
    parser = argparse.ArgumentParser(
        prog="tap-repro report",
        description="Aggregate every run manifest, metrics snapshot, "
                    "chaos report, and span trace under a results "
                    "directory into one consolidated report.",
    )
    parser.add_argument("results_dir", type=pathlib.Path,
                        help="directory holding run artifacts")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="also write the report as JSON here")
    parser.add_argument("--md", type=pathlib.Path, default=None,
                        help="also write the markdown report here")
    args = parser.parse_args(argv)

    if not args.results_dir.is_dir():
        print(f"error: {args.results_dir} is not a directory",
              file=sys.stderr)
        return 1
    import json as _json

    from repro.obs.report import build_report, render_report

    report = build_report(args.results_dir)
    markdown = render_report(report)
    print(markdown)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            _json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    if args.md is not None:
        args.md.parent.mkdir(parents=True, exist_ok=True)
        args.md.write_text(markdown)
        print(f"wrote {args.md}")
    return 0


def _gate_main(argv: list[str]) -> int:
    """``tap-repro gate DIR --slo slo.toml``: SLO gate for CI.

    Exit codes: 0 all objectives met, 1 usage/parse error, 2 violation.
    """
    parser = argparse.ArgumentParser(
        prog="tap-repro gate",
        description="Evaluate declarative SLOs against the consolidated "
                    "report of a results directory; exit 2 on violation.",
    )
    parser.add_argument("results_dir", type=pathlib.Path,
                        help="directory holding run artifacts")
    parser.add_argument("--slo", type=pathlib.Path,
                        default=pathlib.Path("slo.toml"),
                        help="SLO definition file (default ./slo.toml)")
    args = parser.parse_args(argv)

    from repro.obs.report import build_report
    from repro.obs.slo import (
        GATE_EXIT_VIOLATION,
        SLOError,
        evaluate_slos,
        load_slos,
        render_slo_results,
        slo_violations,
    )

    try:
        slos = load_slos(args.slo)
    except (OSError, SLOError, ValueError) as exc:
        print(f"error: cannot load {args.slo}: {exc}", file=sys.stderr)
        return 1
    if not args.results_dir.is_dir():
        print(f"error: {args.results_dir} is not a directory",
              file=sys.stderr)
        return 1
    report = build_report(args.results_dir)
    results = evaluate_slos(slos, report["indicators"])
    print(render_slo_results(results))
    violations = slo_violations(results)
    if violations:
        print(f"\nSLO GATE FAILED: {len(violations)} objective(s) violated",
              file=sys.stderr)
        return GATE_EXIT_VIOLATION
    print("\nall SLOs met")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "run":
        # 'tap-repro run fig2' is an explicit alias of 'tap-repro fig2'.
        argv = argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] == "gate":
        return _gate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="tap-repro",
        description="Regenerate the figures of the TAP paper (ICPP 2004).",
    )
    parser.add_argument(
        "figure",
        choices=[*_FIGURES, *_EXTENSIONS, "all", "extensions"],
        help="which figure/extension to regenerate ('all' = the "
             "paper's figures; 'extensions' = the beyond-paper suite)",
    )
    parser.add_argument("--fast", action="store_true",
                        help="scaled-down config (quick, same shapes)")
    parser.add_argument("--million", action="store_true",
                        help="the N=10^6 operating point (scale-churn / "
                             "scale-latency only): chunked routing, "
                             "shared-memory base sharding, sampled "
                             "scalar verification")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment seed")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        help="also write rows as CSV to this path")
    parser.add_argument("--outdir", type=pathlib.Path, default=None,
                        help="with 'all': write one CSV per figure here")
    parser.add_argument("--metrics-out", type=pathlib.Path, default=None,
                        help="write a repro.obs metrics snapshot (default "
                             "JSON plus a sibling .csv of per-instrument "
                             "rows; see --metrics-format)")
    parser.add_argument("--metrics-format", default="json",
                        choices=("json", "jsonl", "openmetrics"),
                        help="serialisation for --metrics-out: 'json' "
                             "(snapshot + CSV sibling), 'jsonl' (one "
                             "instrument per line), or 'openmetrics' "
                             "(Prometheus text exposition)")
    parser.add_argument("--manifest-out", type=pathlib.Path, default=None,
                        help="write the run-ledger manifest here (default: "
                             "manifest.json next to the first artifact "
                             "written; no artifacts, no manifest)")
    parser.add_argument("--audit", action="store_true",
                        help="run invariant audits inside supporting runners "
                             "(abort on the first violation)")
    parser.add_argument("--trace-out", type=pathlib.Path, default=None,
                        help="write a repro.obs span trace (Chrome trace-event "
                             "JSON for Perfetto/chrome://tracing, plus a "
                             "sibling .events.jsonl event trace)")
    parser.add_argument("--trace-redact", action="store_true",
                        help="apply anonymity-aware redaction to the span "
                             "export (per-observer attribute stripping)")
    parser.add_argument("--workers", "--parallel", dest="workers", type=int,
                        default=None, metavar="N",
                        help="worker processes for independent trials "
                             "(negative = all cores); rows are identical "
                             "for any value — compare the printed digests")
    parser.add_argument("--assert-deterministic", action="store_true",
                        help="re-run each figure (without telemetry) and "
                             "exit 3 if the rows digests differ — the CI "
                             "determinism contract")
    args = parser.parse_args(argv)

    metrics = None
    if args.metrics_out is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    tracer = event_trace = None
    if args.trace_out is not None:
        from repro.obs import EventTrace, SpanTracer

        tracer = SpanTracer()
        event_trace = EventTrace()

    if args.figure == "all":
        names = list(_FIGURES)
    elif args.figure == "extensions":
        names = list(_EXTENSIONS)
    else:
        names = [args.figure]
    import time

    from repro.perf import rows_digest

    t0 = time.perf_counter()
    written: list[tuple[pathlib.Path, str, bool]] = []  # (path, kind, volatile)
    configs: dict = {}
    results: dict = {}
    runner_volatile: dict = {}
    run_seed = args.seed
    for name in names:
        one_volatile: dict = {}
        rows, config = _run_one(name, args.fast, args.seed,
                                metrics=metrics, audit=args.audit,
                                tracer=tracer, event_trace=event_trace,
                                workers=args.workers, million=args.million,
                                volatile_out=one_volatile)
        if one_volatile:
            runner_volatile[name] = one_volatile
        _, _, description = _ALL_RUNNERS[name]
        print(render_table(rows, title=f"{name}: {description}"))
        print(f"{name} rows digest: {rows_digest(rows)}")
        if args.assert_deterministic:
            # The replay runs without telemetry on purpose: rows must
            # be identical with instrumentation on or off.
            replay_rows, _ = _run_one(name, args.fast, args.seed,
                                      workers=args.workers,
                                      million=args.million)
            if rows_digest(replay_rows) != rows_digest(rows):
                print(
                    f"DETERMINISM VIOLATION: {name} replay digest "
                    f"{rows_digest(replay_rows)} != {rows_digest(rows)}",
                    file=sys.stderr,
                )
                return 3
            print(f"{name} deterministic replay ok")
        from repro.obs.manifest import config_dict

        configs[name] = config_dict(config)
        results[name] = {
            "rows": len(rows),
            "digest": rows_digest(rows),
            "summary": _row_summary(name, rows, config),
        }
        if run_seed is None:
            run_seed = getattr(config, "seed", None)
        if args.csv is not None and len(names) == 1:
            args.csv.parent.mkdir(parents=True, exist_ok=True)
            args.csv.write_text(rows_to_csv(rows))
            print(f"wrote {args.csv}")
            written.append((args.csv, "csv", False))
        if args.outdir is not None:
            args.outdir.mkdir(parents=True, exist_ok=True)
            target = args.outdir / f"{name}.csv"
            target.write_text(rows_to_csv(rows))
            print(f"wrote {target}")
            written.append((target, "csv", False))
    if metrics is not None:
        from repro.obs.export import write_metrics

        for path in write_metrics(metrics, args.metrics_out,
                                  args.metrics_format):
            print(f"wrote {path}")
            written.append((path, "metrics" if path.suffix != ".csv"
                            else "metrics-csv", False))
    if tracer is not None:
        args.trace_out.parent.mkdir(parents=True, exist_ok=True)
        count = tracer.dump(args.trace_out, redact=args.trace_redact)
        events_path = args.trace_out.with_suffix(".events.jsonl")
        n_events = event_trace.dump(events_path)
        print(f"wrote {args.trace_out} ({count} spans, "
              f"{tracer.dropped} dropped) and {events_path} "
              f"({n_events} events)")
        # span exports carry wall clocks: real bytes, volatile hash
        written.append((args.trace_out, "trace", True))
        written.append((events_path, "events", False))

    manifest_path = args.manifest_out
    if manifest_path is None and written:
        manifest_path = written[0][0].parent / "manifest.json"
    if manifest_path is not None:
        from repro.obs.manifest import (
            artifact_entry,
            build_manifest,
            write_manifest,
        )

        manifest = build_manifest(
            f"run {args.figure}",
            configs=configs,
            results=results,
            seed=run_seed,
            artifacts=[
                artifact_entry(path, kind, volatile=volatile,
                               base=manifest_path.parent)
                for path, kind, volatile in written
            ],
            extra={"fast": bool(args.fast), "audit": bool(args.audit),
                   "million": bool(args.million)},
            volatile={
                "wall_time_s": round(time.perf_counter() - t0, 6),
                "timestamp": time.time(),
                "workers": args.workers,
                "argv": list(argv),
                # per-runner machine timings (e.g. per-worker snapshot
                # restore / shared-segment attach); volatile is outside
                # the manifest's core digest by construction
                **({"runners": runner_volatile} if runner_volatile else {}),
            },
        )
        manifest = write_manifest(manifest, manifest_path)
        print(f"wrote {manifest_path} (digest {manifest['digest'][:16]}...)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
