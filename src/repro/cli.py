"""Command-line entry point: regenerate any figure of the paper.

Usage::

    tap-repro fig2 [--fast] [--csv out.csv]
    tap-repro all  [--fast] [--outdir results/]

``--fast`` runs the scaled-down configs (same shapes, ~100x quicker);
without it the paper-scale parameters are used.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import (
    ComparisonConfig,
    ReplyDurabilityConfig,
    run_reply_durability,
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    HintStalenessConfig,
    ScatterConfig,
    SecureRoutingConfig,
    SessionSurvivalConfig,
    TimingAttackConfig,
    TradeoffConfig,
    render_table,
    rows_to_csv,
    run_anonymity_comparison,
    run_fig2,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    run_hint_staleness,
    run_scatter,
    run_secure_routing,
    run_session_survival,
    run_timing_attack,
    run_tradeoff,
)

_FIGURES = {
    "fig2": (Fig2Config, run_fig2, "tunnel failures vs node failures"),
    "fig3": (Fig3Config, run_fig3, "corruption vs malicious fraction"),
    "fig4a": (Fig4Config, run_fig4a, "corruption vs replication factor"),
    "fig4b": (Fig4Config, run_fig4b, "corruption vs tunnel length"),
    "fig5": (Fig5Config, run_fig5, "corruption over time under churn"),
    "fig6": (Fig6Config, run_fig6, "transfer latency vs network size"),
}

#: extension experiments beyond the paper's figures (run by name, or
#: via 'extensions'; excluded from 'all', which regenerates the paper)
_EXTENSIONS = {
    "tradeoff": (TradeoffConfig, run_tradeoff, "k/l functionality-anonymity surface"),
    "hints": (HintStalenessConfig, run_hint_staleness, "IP-hint staleness under churn"),
    "scatter": (ScatterConfig, run_scatter, "scattered vs uniform anchor selection"),
    "timing": (TimingAttackConfig, run_timing_attack, "timing analysis vs defences"),
    "secure-routing": (SecureRoutingConfig, run_secure_routing,
                       "verified lookups vs routing interception"),
    "sessions": (SessionSurvivalConfig, run_session_survival,
                 "long-running session survival under churn"),
    "comparison": (ComparisonConfig, run_anonymity_comparison,
                   "TAP vs Crowds vs Onion Routing balance point"),
    "reply-durability": (ReplyDurabilityConfig, run_reply_durability,
                         "anonymous-email reply survival after churn"),
}


_ALL_RUNNERS = {**_FIGURES, **_EXTENSIONS}


def _run_one(name: str, fast: bool, seed: int | None) -> list[dict]:
    config_cls, runner, _ = _ALL_RUNNERS[name]
    config = config_cls.fast() if fast else config_cls()
    if seed is not None:
        from dataclasses import replace

        config = replace(config, seed=seed)
    return runner(config)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tap-repro",
        description="Regenerate the figures of the TAP paper (ICPP 2004).",
    )
    parser.add_argument(
        "figure",
        choices=[*_FIGURES, *_EXTENSIONS, "all", "extensions"],
        help="which figure/extension to regenerate ('all' = the "
             "paper's figures; 'extensions' = the beyond-paper suite)",
    )
    parser.add_argument("--fast", action="store_true",
                        help="scaled-down config (quick, same shapes)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment seed")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        help="also write rows as CSV to this path")
    parser.add_argument("--outdir", type=pathlib.Path, default=None,
                        help="with 'all': write one CSV per figure here")
    args = parser.parse_args(argv)

    if args.figure == "all":
        names = list(_FIGURES)
    elif args.figure == "extensions":
        names = list(_EXTENSIONS)
    else:
        names = [args.figure]
    for name in names:
        rows = _run_one(name, args.fast, args.seed)
        _, _, description = _ALL_RUNNERS[name]
        print(render_table(rows, title=f"{name}: {description}"))
        if args.csv is not None and len(names) == 1:
            args.csv.write_text(rows_to_csv(rows))
            print(f"wrote {args.csv}")
        if args.outdir is not None:
            args.outdir.mkdir(parents=True, exist_ok=True)
            target = args.outdir / f"{name}.csv"
            target.write_text(rows_to_csv(rows))
            print(f"wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
