"""Worker-side observability capture and parent-side merge.

A parallel trial cannot write into the parent's
:class:`~repro.obs.MetricsRegistry` / :class:`~repro.obs.SpanTracer` /
:class:`~repro.obs.EventTrace` — it runs in another process.  Instead,
each trial builds *local* instances (:func:`local_obs`), instruments
against them exactly as the serial path would, and ships them back as
a :class:`TrialObs` payload (:func:`capture_obs`).  The parent folds
payloads in trial order (:func:`merge_obs`):

* metrics merge via :meth:`MetricsRegistry.merge_from` (counters and
  histograms accumulate, gauges last-write-win);
* spans are adopted via :meth:`SpanTracer.absorb`, which remaps the
  workers' locally-allocated trace/span ids onto the parent's counters
  while preserving parent links;
* events re-sequence under the parent trace's monotone counter via
  :meth:`EventTrace.absorb`.

Because the merge consumes trials in submission order, the merged
registries/buffers are identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TrialObs:
    """Picklable observability payload of one trial.

    ``volatile`` carries machine-dependent side facts (wall-clock
    timings such as the worker's shared-segment attach cost) that must
    reach the run manifest's volatile section without ever entering
    rows — rows stay a pure function of the config.
    """

    metrics: object | None = None
    spans: list | None = None
    events: list | None = None
    volatile: dict | None = None


def local_obs(want_metrics: bool, want_tracer: bool, want_events: bool):
    """Worker-side obs instances mirroring what the parent asked for.

    Returns ``(metrics, tracer, event_trace)`` with ``None`` for the
    dimensions the parent did not request, so disabled instrumentation
    stays free inside workers too.
    """
    metrics = tracer = event_trace = None
    if want_metrics:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    if want_tracer:
        from repro.obs import SpanTracer

        tracer = SpanTracer()
    if want_events:
        from repro.obs import EventTrace

        event_trace = EventTrace()
    return metrics, tracer, event_trace


def capture_obs(metrics, tracer, event_trace, volatile=None) -> TrialObs | None:
    """Package a trial's local obs state for the return trip."""
    if (metrics is None and tracer is None and event_trace is None
            and not volatile):
        return None
    return TrialObs(
        metrics=metrics,
        spans=list(tracer.finished) if tracer is not None else None,
        events=list(event_trace) if event_trace is not None else None,
        volatile=volatile or None,
    )


def merge_obs(payloads, metrics=None, tracer=None, event_trace=None) -> None:
    """Fold :class:`TrialObs` payloads into parent obs objects.

    ``payloads`` must be in trial order (what :func:`repro.perf.run_trials`
    returns); the fold is then deterministic for any worker count.
    """
    for payload in payloads:
        if payload is None:
            continue
        if metrics is not None and payload.metrics is not None:
            metrics.merge_from(payload.metrics)
        if tracer is not None and payload.spans:
            tracer.absorb(payload.spans)
        if event_trace is not None and payload.events:
            event_trace.absorb(payload.events)


def collect_volatile(payloads) -> list[dict]:
    """The non-empty per-trial volatile dicts, in trial order.

    Runners fold these into the manifest's volatile section (never
    into rows): machine timings may vary per run, digests may not.
    """
    return [
        payload.volatile
        for payload in payloads
        if payload is not None and payload.volatile
    ]
