"""Copy-on-write snapshot/fork for the overlay + storage stack.

Experiment runners pay a full ``TapSystem.bootstrap`` per repetition —
N node-state constructions just to reach the first TAP message.  Every
repetition of one sweep point starts from the *same* overlay, so the
construction can be amortised: build one base system, capture an
immutable :class:`SystemSnapshot`, and :meth:`~SystemSnapshot.fork` an
independent system per trial.

Semantics
---------
* A snapshot is **immutable and picklable**: the captured leaf sets,
  routing cells and stored objects are plain tuples/dicts of ints and
  bytes, safe to ship to ``ProcessPoolExecutor`` workers (see
  ``run_trials(shared=...)``).
* A fork is **independent**: node and storage state is materialised
  lazily from the snapshot on first access (:class:`_ForkNodes`), and
  every materialisation is a fresh copy — mutations in one fork are
  invisible to the snapshot, the base system and every other fork.
* A fork is **equivalent** to a fresh build: ``TapSystem.bootstrap(n,
  seed=rep, overlay_seed=base).rows_digest == TapSystem.fork`` of the
  base snapshot with ``seed=rep`` — the property the fork-equivalence
  tests pin byte-for-byte, including after fail/revive cycles.

Epoch bookkeeping carries over verbatim: the restored network resumes
at the captured ``membership_epoch``, so downstream epoch-keyed caches
(route cache, ``entry_for_key`` memo, replica-set memo) behave exactly
as they would on the base system.
"""

from __future__ import annotations

from typing import Callable

from repro.past.replication import ReplicatedStore
from repro.past.storage import StoredObject
from repro.pastry.network import PastryNetwork
from repro.pastry.node import PastryNode
from repro.util.rng import SeedSequenceFactory


class _ForkNodes(dict):
    """``node_id -> PastryNode`` mapping materialised lazily from a
    :class:`NetworkSnapshot`.

    Reads of never-touched nodes build the node from the snapshot on
    demand (``__missing__``); iteration yields the snapshot's node
    order (insertion order of the captured network) followed by any
    ids added after the fork, so code that walks ``network.nodes``
    sees exactly what it would on a fresh build.
    """

    def __init__(self, snap: "NetworkSnapshot", network: PastryNetwork):
        super().__init__()
        self._snap = snap
        self._network = network
        #: base ids removed after the fork (tombstones — without them a
        #: ``del`` would "resurrect" the snapshot copy via __missing__)
        self._deleted: set[int] = set()
        #: ids added after the fork, in insertion order
        self._extra: list[int] = []

    # -- lazy materialisation ------------------------------------------
    def __missing__(self, node_id: int) -> PastryNode:
        if node_id in self._deleted or node_id not in self._snap.leafs:
            raise KeyError(node_id)
        node = self._materialise(node_id)
        super().__setitem__(node_id, node)
        return node

    def _materialise(self, node_id: int) -> PastryNode:
        snap = self._snap
        node = PastryNode(node_id, snap.b_bits, snap.leaf_set_size)
        node.leaf_set.bulk_load(snap.leafs[node_id])
        cells = snap.cells.get(node_id)
        if cells:
            node.routing_table.load_cells(cells)
        node.alive = node_id not in snap.dead
        self._network._attach_ref_hooks(node)
        return node

    # -- dict protocol over base ∪ extra -------------------------------
    def _base_has(self, node_id) -> bool:
        try:
            return node_id in self._snap.leafs and node_id not in self._deleted
        except TypeError:  # unhashable key — mirror dict semantics
            return False

    def __contains__(self, node_id) -> bool:
        return super().__contains__(node_id) or self._base_has(node_id)

    def __setitem__(self, node_id, node) -> None:
        if not super().__contains__(node_id) and not self._base_has(node_id):
            self._extra.append(node_id)
        self._deleted.discard(node_id)
        super().__setitem__(node_id, node)

    def __delitem__(self, node_id) -> None:
        if node_id in self._snap.leafs:
            if node_id in self._deleted:
                raise KeyError(node_id)
            self._deleted.add(node_id)
            super().pop(node_id, None)
            return
        super().__delitem__(node_id)
        self._extra.remove(node_id)

    def get(self, node_id, default=None):
        try:
            return self[node_id]
        except KeyError:
            return default

    def __len__(self) -> int:
        return len(self._snap.leafs) - len(self._deleted) + len(self._extra)

    def __iter__(self):
        deleted = self._deleted
        for nid in self._snap.order:
            if nid not in deleted:
                yield nid
        yield from self._extra

    def keys(self):
        return list(self)

    def values(self):
        return [self[nid] for nid in self]

    def items(self):
        return [(nid, self[nid]) for nid in self]


class NetworkSnapshot:
    """Immutable, picklable capture of a :class:`PastryNetwork`."""

    __slots__ = (
        "b_bits", "leaf_set_size", "eager_repair", "membership_epoch",
        "order", "sorted_alive", "dead", "leafs", "cells",
    )

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @classmethod
    def capture(cls, network: PastryNetwork) -> "NetworkSnapshot":
        leafs = {}
        cells = {}
        dead = set()
        for nid, node in network.nodes.items():
            leafs[nid] = tuple(node.leaf_set._members)
            cells[nid] = dict(node.routing_table._cells)
            if not node.alive:
                dead.add(nid)
        return cls(
            b_bits=network.b_bits,
            leaf_set_size=network.leaf_set_size,
            eager_repair=network.eager_repair,
            membership_epoch=network.membership_epoch,
            order=tuple(network.nodes),
            sorted_alive=tuple(network._sorted_alive),
            dead=frozenset(dead),
            leafs=leafs,
            cells=cells,
        )

    def restore(self, metrics=None, tracer=None) -> PastryNetwork:
        """An independent network resuming from the captured state.

        O(1) in the network size: nodes materialise lazily on first
        access, so a fork that only routes through a few hundred nodes
        never pays for the rest.
        """
        net = PastryNetwork(
            b_bits=self.b_bits,
            leaf_set_size=self.leaf_set_size,
            eager_repair=self.eager_repair,
            metrics=metrics,
            tracer=tracer,
        )
        net._sorted_alive = list(self.sorted_alive)
        net.membership_epoch = self.membership_epoch
        net.nodes = _ForkNodes(self, net)
        return net


class StoreSnapshot:
    """Immutable, picklable capture of a :class:`ReplicatedStore`."""

    __slots__ = ("k", "objects", "storage_keys", "holders")

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @classmethod
    def capture(cls, store: ReplicatedStore) -> "StoreSnapshot":
        objects = {}
        storage_keys = {}
        for nid, storage in store.storages.items():
            keys = tuple(storage.keys())
            if not keys:
                continue
            storage_keys[nid] = keys
            for key in keys:
                if key not in objects:
                    obj = storage.lookup(key)
                    objects[key] = (
                        obj.value, obj.delete_proof_hash, tuple(obj.meta.items())
                    )
        return cls(
            k=store.k,
            objects=objects,
            storage_keys=storage_keys,
            holders={
                key: tuple(sorted(holders))
                for key, holders in store._holders.items()
            },
        )

    def restore(self, network: PastryNetwork, metrics=None, tracer=None) -> ReplicatedStore:
        store = ReplicatedStore(network, self.k, metrics=metrics, tracer=tracer)
        # One fresh StoredObject per key, shared by its holders — the
        # same aliasing ``ReplicatedStore._place`` produces, but never
        # shared with the base store or any sibling fork.
        copies = {
            key: StoredObject(key, value, proof, dict(meta))
            for key, (value, proof, meta) in self.objects.items()
        }
        for nid, keys in self.storage_keys.items():
            storage = store.storage_of(nid)
            for key in keys:
                storage.insert(copies[key], overwrite=True)
        store._holders = {key: set(h) for key, h in self.holders.items()}
        store._sorted_keys = sorted(store._holders)
        return store


class SystemSnapshot:
    """Picklable capture of a whole :class:`~repro.core.TapSystem`."""

    __slots__ = ("network", "store")

    def __init__(self, network: NetworkSnapshot, store: StoreSnapshot):
        self.network = network
        self.store = store

    @classmethod
    def capture(cls, system) -> "SystemSnapshot":
        if system.tap_nodes:
            raise ValueError(
                "snapshot a system before creating TAP state: per-node "
                "rng streams and anchor state are not capturable"
            )
        return cls(
            NetworkSnapshot.capture(system.network),
            StoreSnapshot.capture(system.store),
        )

    def fork(self, seed: int, metrics=None, event_trace=None, tracer=None):
        """An independent :class:`~repro.core.TapSystem` on a fork of
        the captured substrates, with fresh seed streams rooted at
        ``seed`` — equivalent to ``TapSystem.bootstrap(n, seed=seed,
        overlay_seed=<base seed>)`` byte for byte."""
        from repro.core.system import TapSystem

        network = self.network.restore()
        store = self.store.restore(network)
        return TapSystem(
            network, store, SeedSequenceFactory(seed),
            metrics=metrics, event_trace=event_trace, tracer=tracer,
        )


#: Process-local snapshot memo for :func:`base_snapshot`; bounded and
#: cleared wholesale (snapshots are large, tokens few).
_SNAPSHOT_CACHE: dict = {}
_SNAPSHOT_CACHE_LIMIT = 16


def base_snapshot(token, build: Callable[[], "SystemSnapshot"]):
    """Build-once cache for base snapshots, keyed by ``token``.

    Runners key the token by everything that determines the base
    system (seed, size, topology knobs); serial reps and same-process
    workers then share one bootstrap per distinct base.
    """
    snap = _SNAPSHOT_CACHE.get(token)
    if snap is None:
        if len(_SNAPSHOT_CACHE) >= _SNAPSHOT_CACHE_LIMIT:
            _SNAPSHOT_CACHE.clear()
        snap = _SNAPSHOT_CACHE[token] = build()
    return snap
