"""Performance engineering: parallel deterministic trial execution.

``repro.perf`` is the execution layer under every experiment runner:

* :func:`run_trials` fans independent trials (Monte-Carlo repetitions,
  sweep points, chaos jobs) out over a ``ProcessPoolExecutor`` and
  returns their results **in submission order**, so any fold over them
  is order-deterministic;
* :func:`derive_trial_seed` derives the per-trial seed stream
  (:func:`repro.util.rng.derive_seed` under a fixed ``"trial"``
  label), so trial *i* draws the same randomness whether it runs
  serially, in any worker, or alone;
* :class:`TrialObs` + :func:`merge_obs` carry worker-side
  :mod:`repro.obs` state (metrics registries, span buffers, event
  traces) back to the parent process and fold it in trial order;
* :func:`canonical_json` / :func:`rows_digest` give every runner a
  stable result fingerprint — the parallelism safety gate is that the
  digest is identical for ``--workers 1`` and ``--workers N``.

The combination makes "parallel" an execution detail rather than a
semantic one: experiment rows are a pure function of the config.
"""

from repro.perf.compact import CompactOverlay, CompactSnapshot
from repro.perf.digest import canonical_json, rows_digest
from repro.perf.merge import (
    TrialObs,
    capture_obs,
    collect_volatile,
    local_obs,
    merge_obs,
)
from repro.perf.parallel import (
    derive_trial_seed,
    effective_workers,
    resolve_workers,
    run_trials,
    shared_payload,
)
from repro.perf.shm import SharedCompactSnapshot, share_base, shm_available
from repro.perf.snapshot import (
    NetworkSnapshot,
    StoreSnapshot,
    SystemSnapshot,
    base_snapshot,
)

__all__ = [
    "CompactOverlay",
    "CompactSnapshot",
    "canonical_json",
    "rows_digest",
    "TrialObs",
    "capture_obs",
    "collect_volatile",
    "local_obs",
    "merge_obs",
    "SharedCompactSnapshot",
    "share_base",
    "shm_available",
    "derive_trial_seed",
    "effective_workers",
    "resolve_workers",
    "run_trials",
    "shared_payload",
    "NetworkSnapshot",
    "StoreSnapshot",
    "SystemSnapshot",
    "base_snapshot",
]
