"""Vectorised packet plane over the compact overlay engine.

:func:`route_many` advances a whole batch of packets one hop per
iteration with NumPy kernels, making the same forwarding decision as
``CompactOverlay._next_hop`` for every packet — a tested hop-for-hop
contract against both the scalar router and the object engine via the
materialisation bridge (``tests/perf/test_packet.py``).

Per iteration, the active front splits into three vectorised branches
that mirror the scalar rule exactly:

* **leaf-covered** — ``searchsorted_words`` span test against the far
  leaf-window edges, then a lexicographic min over the ±reach window
  (ring distance first, smaller id on ties);
* **prefix bucket** — the routing cell for (row, key digit) is the
  first alive id at or past the bucket lower bound
  (:func:`repro.pastry.bulk.bucket_bounds` semantics via
  ``clear_low_words`` + ``searchsorted_words``);
* **run-scan fallback** — when the bucket is empty, every qualifying
  "known" candidate (leaf member or populated cell sharing no shorter
  prefix with the key) provably lies inside the contiguous run of
  alive ids sharing the key's first ``row`` digits, so the batch scans
  those runs as flattened segments: a run member is a cell entry iff
  its alive predecessor does not reach one digit deeper
  (``smallest_id_buckets`` semantics), a leaf member iff its ring
  *position* is within ±reach, and the segment winner is the
  lexicographic (distance, id) min among strictly-closer candidates.

Dead sources fail immediately (the scalar ``route`` raises instead —
batches must keep their row alignment); all other packets terminate
exactly where the scalar loop would, including the MAX_HOPS limit.

**Chunked execution.**  Every entry point takes a ``chunk_size``: the
batch then streams through fixed-size windows, so peak memory is
bounded by the chunk, not the batch — the per-iteration trail copies
of a 10^6-packet front would otherwise dominate RSS.  Each packet's
route is an independent pure function of overlay state, and the
latency model draws its uniforms sequentially per packet, so results
(and experiment row digests) are bitwise identical for **any** chunk
size, including none.  The per-chunk work arrays come from the
overlay's reusable scratch pool (``CompactOverlay._scratch_buf``),
accounted by ``scratch_nbytes``.

Everything here is a pure function of overlay state and inputs — no
ambient randomness; the latency model draws from a caller-supplied
Generator so experiment rows stay digest-identical across workers.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.idspace import (
    _sub_words,
    add_pow2_words,
    clear_low_words,
    less_words,
    ring_distance_words,
    searchsorted_words,
    shared_prefix_bits_words,
    unpack_words,
)
from repro.pastry.bulk import leaf_reach
from repro.util.ids import ID_BITS

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.compact import CompactOverlay

_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)

#: default for the ``run_scan_cap`` parameter of :func:`route_many`:
#: fallback runs wider than this go through the scalar ``_next_hop``
#: instead of the segmented scan.  A run of width w only arises when w
#: alive ids share the key's whole current prefix, so uniform rings
#: never approach the cap past row 0 — and row 0 runs (the whole ring)
#: only reach the fallback on tiny or pathologically clustered
#: populations.  Pass a different cap to tune the scan/scalar
#: trade-off (e.g. clustered 10^6 rings); the forwarding decision is
#: identical either way, so any value routes the same.
RUN_SCAN_CAP = 4096


class BatchRouteResult:
    """Result of routing a batch of packets in lockstep.

    Scalar fields mirror :class:`repro.pastry.network.RouteResult` per
    packet: ``hops[i]`` edges traversed, ``success[i]`` responsibility
    reached (False for dead sources and hop-limit casualties), and
    ``dest_pos[i]`` the *global* overlay position where the packet
    stopped.  ``path(i)`` reconstructs the full id path lazily from
    the per-iteration trail, which is stored as one segment per
    execution chunk (``(chunk start, per-iteration position arrays)``)
    so a chunked run never holds batch-sized trail copies.
    """

    __slots__ = (
        "_overlay",
        "key_hi",
        "key_lo",
        "src_pos",
        "dest_pos",
        "hops",
        "success",
        "_trail",
        "_trail_starts",
    )

    def __init__(self, overlay, key_hi, key_lo, src_pos, dest_pos, hops,
                 success, trail):
        self._overlay = overlay
        self.key_hi = key_hi
        self.key_lo = key_lo
        self.src_pos = src_pos
        self.dest_pos = dest_pos
        self.hops = hops
        self.success = success
        self._trail = trail
        self._trail_starts = [start for start, _ in trail]

    def __len__(self) -> int:
        return len(self.src_pos)

    def path(self, i: int) -> list[int]:
        """The id path of packet ``i`` (source first, stop last).

        The trail repeats the final position once a packet settles, so
        the path is the prefix up to the first consecutive repeat —
        the same termination the scalar loop uses.
        """
        if not 0 <= i < len(self.src_pos):
            raise IndexError(f"packet index {i} out of range")
        seg = bisect_right(self._trail_starts, i) - 1
        start, arrays = self._trail[seg]
        local = i - start
        positions: list[int] = []
        for arr in arrays:
            g = int(arr[local])
            if positions and g == positions[-1]:
                break
            positions.append(g)
        hi = self._overlay.hi
        lo = self._overlay.lo
        return [(int(hi[g]) << 64) | int(lo[g]) for g in positions]

    def dest_ids(self) -> list[int]:
        """Ids at each packet's stop position."""
        return unpack_words(
            self._overlay.hi[self.dest_pos], self._overlay.lo[self.dest_pos]
        )


class TunnelBatchResult:
    """Result of routing a batch of stitched tunnel paths.

    ``leg_hops[t, j]`` is the hop count of tunnel ``t``'s ``j``-th leg
    (the last column is the exit leg to the destination key);
    ``hops[t]`` is their sum — junction nodes are shared between legs,
    so stitched underlying links are exactly additive.  ``success[t]``
    requires every leg to settle; ``dest_pos[t]`` is the final global
    position (the key root when successful).
    """

    __slots__ = ("leg_hops", "hops", "success", "dest_pos", "legs")

    def __init__(self, leg_hops, hops, success, dest_pos, legs):
        self.leg_hops = leg_hops
        self.hops = hops
        self.success = success
        self.dest_pos = dest_pos
        self.legs = legs

    def __len__(self) -> int:
        return len(self.hops)


def route_many(overlay: "CompactOverlay", src_pos, key_hi, key_lo, *,
               chunk_size: int | None = None,
               run_scan_cap: int | None = None,
               ) -> BatchRouteResult:
    """Route one key per packet from global positions ``src_pos``.

    Hop-for-hop identical to ``overlay.route`` for every packet whose
    source is alive; dead sources come back with ``success=False``,
    zero hops and ``dest_pos == src_pos`` (scalar ``route`` raises —
    a batch keeps row alignment instead, so sweeps over churned
    overlays need no pre-filtering).

    ``chunk_size`` bounds peak memory: the batch streams through
    windows of at most that many in-flight packets, reusing the
    overlay's scratch buffers, with per-chunk trail segments instead
    of batch-sized per-iteration copies.  Routing decisions are per
    packet, so results are bitwise identical for any chunk size
    (``None`` routes the whole batch at once).

    ``run_scan_cap`` replaces the old module-constant monkeypatch
    target: fallback runs wider than the cap are rescued by the scalar
    rule instead of the segmented scan (default
    :data:`RUN_SCAN_CAP`; the decision itself is cap-independent).
    """
    src_pos = np.asarray(src_pos, dtype=np.intp)
    key_hi = np.atleast_1d(np.asarray(key_hi, dtype=np.uint64))
    key_lo = np.atleast_1d(np.asarray(key_lo, dtype=np.uint64))
    num = len(src_pos)
    if not (len(key_hi) == len(key_lo) == num):
        raise ValueError("src_pos and key words must have equal length")
    if run_scan_cap is None:
        run_scan_cap = RUN_SCAN_CAP
    if chunk_size is None or chunk_size >= num or num == 0:
        bounds = [(0, num)]
    elif chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    else:
        bounds = [
            (start, min(start + chunk_size, num))
            for start in range(0, num, chunk_size)
        ]

    ahi, alo, idx = overlay._alive_arrays()
    reach = leaf_reach(len(ahi), overlay.leaf_set_size) if len(ahi) else 0
    offsets = np.arange(-reach, reach + 1)

    dest_pos = src_pos.copy()
    hops = np.zeros(num, dtype=np.int64)
    success = np.zeros(num, dtype=bool)
    trail: list[tuple[int, list[np.ndarray]]] = []
    for start, end in bounds:
        segment = _route_chunk(
            overlay, ahi, alo, idx, offsets, reach,
            src_pos[start:end], key_hi[start:end], key_lo[start:end],
            dest_pos[start:end], hops[start:end], success[start:end],
            run_scan_cap,
        )
        trail.append((start, segment))

    return BatchRouteResult(
        overlay, key_hi, key_lo, src_pos, dest_pos, hops, success, trail
    )


def _route_chunk(overlay, ahi, alo, idx, offsets, reach,
                 src, kh, kl, dest, hops, success, run_scan_cap):
    """Advance one packet window to termination, writing into the
    caller's ``dest``/``hops``/``success`` views; returns the chunk's
    per-iteration trail.  Work arrays come from the overlay scratch
    pool, so back-to-back chunks reuse one allocation."""
    n = len(ahi)
    num = len(src)
    alive_src = overlay.alive[src] if num else np.zeros(0, dtype=bool)
    done = overlay._scratch_buf("packet.done", num, bool)
    np.logical_not(alive_src, out=done)
    # alive positions, valid where the source is alive
    cur = overlay._scratch_buf("packet.cur", num, np.intp)
    cur[:] = 0
    if n and num:
        cur[alive_src] = np.searchsorted(idx, src[alive_src])
    trail = [src.copy()]

    for _ in range(overlay.MAX_HOPS):
        act = np.flatnonzero(~done)
        if len(act) == 0:
            break
        nxt = _next_hops(
            overlay, ahi, alo, cur[act], kh[act], kl[act],
            offsets, reach, run_scan_cap,
        )
        arrived = nxt == cur[act]
        moved = act[~arrived]
        cur[moved] = nxt[~arrived]
        dest[moved] = idx[nxt[~arrived]]
        hops[moved] += 1
        done[act[arrived]] = True
        success[act[arrived]] = True
        trail.append(dest.copy())

    # anything still active hit the hop limit: done, success stays False
    return trail


def _next_hops(overlay, ahi, alo, cpos, kh, kl, offsets, reach,
               run_scan_cap=RUN_SCAN_CAP):
    """One forwarding decision per active packet (alive positions)."""
    n = len(ahi)
    num = len(cpos)
    nid_hi = ahi[cpos]
    nid_lo = alo[cpos]
    nxt = np.empty(num, dtype=np.intp)

    if n <= overlay.leaf_set_size:
        covered = np.ones(num, dtype=bool)
    else:
        half = overlay.leaf_set_size // 2
        cw = (cpos + half) % n
        ccw = (cpos - half) % n
        span_hi, span_lo = _sub_words(ahi[cw], alo[cw], ahi[ccw], alo[ccw])
        rel_hi, rel_lo = _sub_words(kh, kl, ahi[ccw], alo[ccw])
        covered = ~less_words(span_hi, span_lo, rel_hi, rel_lo)

    cov = np.flatnonzero(covered)
    if len(cov):
        # min over the ±reach window plus self by (distance, id)
        cand = (cpos[cov, None] + offsets[None, :]) % n
        ch = ahi[cand]
        cl = alo[cand]
        dh, dl = ring_distance_words(ch, cl, kh[cov, None], kl[cov, None])
        order = np.lexsort((cl, ch, dl, dh), axis=-1)
        best = order[:, 0]
        nxt[cov] = cand[np.arange(len(cov)), best]

    unc = np.flatnonzero(~covered)
    if len(unc):
        # uncovered implies key != nid, so the shared prefix is < 128
        # bits and the target row's shift is non-negative
        bits = shared_prefix_bits_words(nid_hi[unc], nid_lo[unc],
                                        kh[unc], kl[unc])
        row = bits // overlay.b_bits
        shift = ID_BITS - overlay.b_bits * (row + 1)
        # cell entry = first alive id at/past the bucket lower bound,
        # provided it still shares the key's first row+1 digits
        lo_hi, lo_lo = clear_low_words(kh[unc], kl[unc], shift)
        pos = searchsorted_words(ahi, alo, lo_hi, lo_lo)
        probe = np.where(pos < n, pos, 0)
        p_hi, p_lo = clear_low_words(ahi[probe], alo[probe], shift)
        found = (pos < n) & (p_hi == lo_hi) & (p_lo == lo_lo)
        nxt[unc[found]] = pos[found]
        miss = np.flatnonzero(~found)
        if len(miss):
            fb = unc[miss]
            nxt[fb] = _fallback_hops(
                overlay, ahi, alo, cpos[fb], kh[fb], kl[fb], row[miss],
                reach, run_scan_cap,
            )
    return nxt


def _fallback_hops(overlay, ahi, alo, cpos, kh, kl, row, reach,
                   run_scan_cap=RUN_SCAN_CAP):
    """Vectorised twin of the scalar rare-case rule.

    Every scalar candidate — a leaf member or populated routing cell
    sharing at least ``row`` digits with the key — lies inside the
    contiguous run of alive ids sharing the key's first ``row``
    digits, so each packet scans its run as one flattened segment.
    """
    n = len(ahi)
    num = len(cpos)
    b = overlay.b_bits
    run_bits = ID_BITS - b * row
    lo_hi, lo_lo = clear_low_words(kh, kl, run_bits)
    up_hi, up_lo = add_pow2_words(lo_hi, lo_lo, run_bits)
    start = searchsorted_words(ahi, alo, lo_hi, lo_lo)
    end = searchsorted_words(ahi, alo, up_hi, up_lo)
    # an upper bound of exactly 2^128 wraps to zero: the run reaches
    # the top of the ring (incl. row 0, where the run is the whole ring)
    end = np.where((up_hi == 0) & (up_lo == 0), n, end)
    lens = end - start

    out = np.empty(num, dtype=np.intp)
    big = lens > run_scan_cap
    for j in np.flatnonzero(big):
        # degenerate clustering: defer to the scalar rule wholesale
        apos = int(cpos[j])
        nxt_id = overlay._next_hop(apos, (int(kh[j]) << 64) | int(kl[j]))
        out[j] = overlay._alive_pos_of(nxt_id)
    small = np.flatnonzero(~big)
    if len(small) == 0:
        return out

    s_start = start[small]
    s_len = lens[small]
    total = int(s_len.sum())
    seg = np.repeat(np.arange(len(small)), s_len)
    seg_base = np.concatenate(([0], np.cumsum(s_len)[:-1]))
    p = (np.arange(total) - seg_base[seg] + s_start[seg]).astype(np.intp)

    m_hi = ahi[p]
    m_lo = alo[p]
    kh_s = kh[small][seg]
    kl_s = kl[small][seg]
    apos_s = cpos[small][seg]
    nid_hi_s = ahi[apos_s]
    nid_lo_s = alo[apos_s]

    own_dh, own_dl = ring_distance_words(nid_hi_s, nid_lo_s, kh_s, kl_s)
    dh, dl = ring_distance_words(m_hi, m_lo, kh_s, kl_s)
    closer = less_words(dh, dl, own_dh, own_dl)

    # leaf membership is positional: within ±reach of the node's slot
    dpos = (p - apos_s) % n
    leaf = np.minimum(dpos, n - dpos) <= reach

    # cell membership: the smallest alive id of its deepest bucket
    # under nid — true iff the alive predecessor does not also share
    # one digit more than (m, nid) do, or m is the very first alive id
    row_m = shared_prefix_bits_words(m_hi, m_lo, nid_hi_s, nid_lo_s) // b
    prev = np.maximum(p - 1, 0)
    prev_row = shared_prefix_bits_words(ahi[prev], alo[prev], m_hi, m_lo) // b
    entry = (p == 0) | (prev_row <= row_m)

    qual = closer & (leaf | entry)
    # segmented lexicographic min of (distance, id); sentinel keys for
    # non-qualifiers (real distances never exceed 2^127)
    dh = np.where(qual, dh, _U64_MAX)
    dl = np.where(qual, dl, _U64_MAX)
    sm_hi = np.where(qual, m_hi, _U64_MAX)
    sm_lo = np.where(qual, m_lo, _U64_MAX)
    order = np.lexsort((sm_lo, sm_hi, dl, dh, seg))
    first = np.unique(seg[order], return_index=True)[1]
    win = order[first]
    # no qualifying candidate: stay put (the scalar rule terminates)
    out[small] = np.where(qual[win], p[win], cpos[small])
    return out


def route_tunnels(overlay: "CompactOverlay", src_pos, hop_key_hi, hop_key_lo,
                  dest_key_hi, dest_key_lo, keep_legs: bool = False, *,
                  chunk_size: int | None = None,
                  run_scan_cap: int | None = None,
                  ) -> TunnelBatchResult:
    """Build one TAP tunnel per packet and route the exit leg, batched.

    ``hop_key_hi``/``hop_key_lo`` are (T, L) word arrays — one random
    relay key per tunnel hop; each leg routes the whole batch from the
    previous junction to the next hop key's root, then the final leg
    routes to the destination key.  Stitching drops the duplicated
    junction node, so total underlying hops are the per-leg sums.

    A tunnel fails as soon as any leg fails; later legs for that
    packet keep routing from the last good junction (deterministic,
    cheap, and masked out of every statistic by ``success``).

    ``chunk_size``/``run_scan_cap`` pass straight through to each
    leg's :func:`route_many`; leg stitching is per packet, so tunnel
    results are chunk-size invariant too.
    """
    src_pos = np.asarray(src_pos, dtype=np.intp)
    hop_key_hi = np.asarray(hop_key_hi, dtype=np.uint64)
    hop_key_lo = np.asarray(hop_key_lo, dtype=np.uint64)
    num, tunnel_len = hop_key_hi.shape
    leg_hops = np.zeros((num, tunnel_len + 1), dtype=np.int64)
    success = np.ones(num, dtype=bool)
    current = src_pos.copy()
    legs: list[BatchRouteResult] = []
    for j in range(tunnel_len):
        res = route_many(overlay, current, hop_key_hi[:, j], hop_key_lo[:, j],
                         chunk_size=chunk_size, run_scan_cap=run_scan_cap)
        success &= res.success
        leg_hops[:, j] = res.hops
        current = np.where(res.success, res.dest_pos, current)
        if keep_legs:
            legs.append(res)
    res = route_many(overlay, current, dest_key_hi, dest_key_lo,
                     chunk_size=chunk_size, run_scan_cap=run_scan_cap)
    success &= res.success
    leg_hops[:, tunnel_len] = res.hops
    current = np.where(res.success, res.dest_pos, current)
    if keep_legs:
        legs.append(res)
    return TunnelBatchResult(
        leg_hops, leg_hops.sum(axis=1), success, current, legs
    )


def latency_sums(rng: np.random.Generator, hops, min_latency_s: float,
                 max_latency_s: float, *,
                 chunk_size: int | None = None) -> np.ndarray:
    """Per-packet end-to-end latency: sum of per-hop U[min, max] draws.

    One flat draw of ``hops.sum()`` link latencies on the caller's
    seed stream, folded per packet with ``np.add.reduceat`` — the
    batched twin of the fig6 per-leg loop.  Zero-hop packets cost 0 s.

    ``chunk_size`` bounds the draw buffer to one packet window at a
    time.  A Generator's uniform stream is sequential, so chunked
    draws concatenate bitwise-identically to one flat draw — chunked
    output equals unchunked output exactly, not just statistically.
    """
    hops = np.asarray(hops, dtype=np.int64)
    if (hops < 0).any():
        raise ValueError("negative hop counts")
    num = len(hops)
    out = np.zeros(num, dtype=np.float64)
    if chunk_size is None or chunk_size >= num or num == 0:
        bounds = [(0, num)]
    elif chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    else:
        bounds = [
            (start, min(start + chunk_size, num))
            for start in range(0, num, chunk_size)
        ]
    for start, end in bounds:
        h = hops[start:end]
        total = int(h.sum())
        if total == 0:
            continue
        draws = rng.uniform(min_latency_s, max_latency_s, size=total)
        ends = np.cumsum(h)
        nz = h > 0
        out[start:end][nz] = np.add.reduceat(draws, (ends - h)[nz])
    return out
