"""Compact array-backed overlay engine for 10^5–10^6-node simulation.

The object engine (:class:`repro.pastry.PastryNetwork`) spends its
memory and bootstrap time on per-node objects — a ``PastryNode`` with a
``LeafSet`` and a ``RoutingTable`` each — which caps practical overlay
sizes around 10^4.  But the whole canonical overlay is a *derived view*
of one thing: the sorted alive id set.  Leaf sets are ±reach index
windows in sorted order, routing cells are smallest-id prefix-bucket
slices, and both are exactly what :meth:`PastryNetwork.build` computes
(see :mod:`repro.pastry.bulk`).  This module therefore keeps only:

* the id population as aligned ``(hi, lo)`` uint64 word arrays, sorted
  numerically (128-bit ids don't fit a NumPy dtype; the two-word
  kernels live in :mod:`repro.analysis.idspace`);
* an aligned boolean ``alive`` array plus a ``membership_epoch``
  counter (the same epoch contract the object engine's caches use);

and derives everything else on demand: replica sets via the vectorised
128-bit kernels, leaf windows and routing cells per node when routing
or materialising.  Bootstrap at N=10^5 is an array sort; fail/revive is
a flag write; join is an array merge.

Equivalence contract (pinned by ``tests/perf/test_compact.py``):

1. **Bootstrap**: materialising every node of a compact overlay yields
   byte-for-byte the rows of ``PastryNetwork.build`` on the same ids.
2. **Churn is canonical maintenance**: after any fail/revive/join
   sequence the compact overlay's derived state equals a *fresh*
   ``PastryNetwork.build`` over the current alive set — the state the
   object engine's repair protocols provably converge to.
3. **Observable equality**: sorted alive ids, replica sets and route
   destinations match the eagerly-repaired object engine event for
   event under the strict auditor.

The materialisation bridge (:meth:`CompactOverlay.to_network_snapshot`)
produces a :class:`~repro.perf.snapshot.NetworkSnapshot` whose per-node
state is computed lazily, so packet-level spot-checks on a 10^5-node
compact overlay materialise only the nodes a route actually touches.
:class:`CompactSnapshot` is the picklable capture for sharding trials
across workers via ``run_trials(shared=...)``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.idspace import (
    merge_insert_positions,
    pack_ids,
    replica_table_words,
    searchsorted_words,
    unpack_words,
)
from repro.pastry.bulk import bucket_bounds, leaf_reach
from repro.pastry.constants import DEFAULT_B_BITS, DEFAULT_LEAF_SET_SIZE
from repro.pastry.network import RouteResult, RoutingError
from repro.util.ids import (
    ID_BITS,
    ID_SPACE,
    id_digit,
    random_id,
    ring_distance,
    shared_prefix_digits,
)
from repro.util.rng import SeedSequenceFactory

_U64_MAX = np.iinfo(np.uint64).max
_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def _pack_scalar(value: int) -> tuple[np.uint64, np.uint64]:
    return np.uint64(value >> _WORD_BITS), np.uint64(value & _WORD_MASK)


def _unpack_scalar(hi, lo) -> int:
    return (int(hi) << _WORD_BITS) | int(lo)


class CompactOverlay:
    """A whole Pastry ring as sorted word arrays plus an alive mask."""

    #: same routing safety valve as :class:`PastryNetwork`
    MAX_HOPS = 256

    def __init__(
        self,
        hi: np.ndarray,
        lo: np.ndarray,
        alive: np.ndarray,
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
        membership_epoch: int = 0,
    ):
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise ValueError("leaf-set capacity must be an even number >= 2")
        #: aligned word arrays, numerically ascending, duplicate-free
        self.hi = hi
        self.lo = lo
        #: aligned liveness flags; positions never move on fail/revive
        self.alive = alive
        self.b_bits = b_bits
        self.leaf_set_size = leaf_set_size
        #: bumped on every alive-set change (same contract as the
        #: object engine); keys the derived alive-view cache
        self.membership_epoch = membership_epoch
        self._view_epoch = -1
        self._view: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._count_epoch = -1
        self._alive_count = 0
        #: named reusable scratch buffers (chunked packet plane); grown
        #: geometrically, never shrunk, accounted by scratch_nbytes
        self._scratch: dict[str, np.ndarray] = {}
        #: optional MetricsRegistry; hot paths pay one None check
        self._metrics = None

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def instrument(self, metrics) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` (None detaches).

        Membership changes then maintain ``compact.*`` counters and
        gauges: one counter bump plus an alive-fraction gauge per
        membership *event* (a whole vectorised fail/join batch), so
        the cost is O(alive-scan) per churn round, not per node —
        the sampling discipline that keeps 10^5-node telemetry within
        the <5% overhead gate.  Detached overlays pay a single None
        check.  The attachment is runtime-only: snapshots never carry
        it, so pickled shards stay slim.
        """
        self._metrics = metrics
        if metrics is not None:
            self._note_membership()

    def _note_membership(self, counter: str | None = None, nodes: int = 0) -> None:
        metrics = self._metrics
        if counter is not None:
            metrics.counter(counter).inc()
            metrics.counter(counter + "_nodes").inc(nodes)
        metrics.gauge("compact.membership_epoch").set(self.membership_epoch)
        metrics.gauge("compact.alive_fraction").set(
            self.num_alive / self.size if self.size else 0.0
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_ids(
        cls,
        node_ids,
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ) -> "CompactOverlay":
        """Overlay over the given 128-bit ids (any iterable of ints)."""
        ids = sorted({int(v) for v in node_ids})
        hi, lo = pack_ids(ids)
        return cls(hi, lo, np.ones(len(ids), dtype=bool), b_bits, leaf_set_size)

    @classmethod
    def bootstrap(
        cls,
        num_nodes: int,
        seed: int = 0,
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ) -> "CompactOverlay":
        """The *same* id population as ``TapSystem.bootstrap(n, seed)``.

        Draws from the identical ``"node-ids"`` stream, so a compact
        overlay and an object system bootstrapped with one seed hold
        the same ring — the basis of the equivalence tests.
        """
        id_rng = SeedSequenceFactory(seed).pyrandom("node-ids")
        ids: set[int] = set()
        while len(ids) < num_nodes:
            ids.add(random_id(id_rng))
        return cls.from_ids(ids, b_bits, leaf_set_size)

    @classmethod
    def random(
        cls,
        num_nodes: int,
        seed: int = 0,
        b_bits: int = DEFAULT_B_BITS,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
    ) -> "CompactOverlay":
        """Fully vectorised uniform bootstrap for 10^5–10^6 scale.

        Unlike :meth:`bootstrap` the ids come from a NumPy stream (the
        Python-rng draw loop would dominate at this scale), so the
        population does not match an object-engine system — use it for
        scale runs, :meth:`bootstrap`/:meth:`from_ids` for equivalence.
        Duplicate pairs are redrawn in place, preserving draw order for
        the survivors (same policy as ``IdSpaceModel.draw_unique_ids``).
        """
        rng = SeedSequenceFactory(seed).numpy("compact-ids")
        hi = rng.integers(0, _U64_MAX, size=num_nodes, dtype=np.uint64)
        lo = rng.integers(0, _U64_MAX, size=num_nodes, dtype=np.uint64)
        while True:
            order = np.lexsort((lo, hi))
            shi, slo = hi[order], lo[order]
            dup_sorted = np.zeros(num_nodes, dtype=bool)
            dup_sorted[1:] = (shi[1:] == shi[:-1]) & (slo[1:] == slo[:-1])
            if not dup_sorted.any():
                break
            dup = order[dup_sorted]
            hi[dup] = rng.integers(0, _U64_MAX, size=len(dup), dtype=np.uint64)
            lo[dup] = rng.integers(0, _U64_MAX, size=len(dup), dtype=np.uint64)
        return cls(shi, slo, np.ones(num_nodes, dtype=bool), b_bits, leaf_set_size)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total tracked positions, alive and dead."""
        return len(self.hi)

    @property
    def num_alive(self) -> int:
        """Alive population, cached per membership epoch.

        The telemetry path reads this on every membership event and
        every round row; caching turns repeat reads within an epoch
        into attribute lookups instead of 10^5-element mask sums.
        """
        if self._count_epoch != self.membership_epoch:
            self._alive_count = int(self.alive.sum())
            self._count_epoch = self.membership_epoch
        return self._alive_count

    def _alive_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(hi, lo, global positions) of the alive set, epoch-cached."""
        if self._view_epoch != self.membership_epoch:
            idx = np.flatnonzero(self.alive)
            self._view = (self.hi[idx], self.lo[idx], idx)
            self._view_epoch = self.membership_epoch
        return self._view

    def alive_positions(self) -> np.ndarray:
        """Ascending *global* positions of the alive set, epoch-cached.

        The public accessor scale trials use instead of re-running
        ``np.flatnonzero(overlay.alive)`` per round — at 10^6 nodes
        that is a fresh 8 MB temporary per call; this returns the same
        values from the derived-view cache.  Callers must treat the
        array as read-only (it backs the routing view of this epoch).
        """
        return self._alive_arrays()[2]

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Resident bytes of the canonical arrays (id words + alive).

        17 bytes per tracked node: the whole overlay state, measured
        rather than guessed — at N=10^6 this is ~17 MB, which is why
        the compact engine reaches populations the object engine's
        per-node containers cannot.
        """
        return int(self.hi.nbytes) + int(self.lo.nbytes) + int(self.alive.nbytes)

    @property
    def scratch_nbytes(self) -> int:
        """Bytes held by derived caches and reusable scratch buffers.

        Covers the epoch-keyed alive view (hi/lo/positions of the
        alive set) plus every named buffer the chunked packet plane
        has parked on this overlay.  ``nbytes + scratch_nbytes`` is
        the engine's whole steady-state footprint; per-call
        temporaries are bounded by the routing chunk size on top.
        """
        total = 0
        if self._view is not None:
            total += sum(int(arr.nbytes) for arr in self._view)
        total += sum(int(arr.nbytes) for arr in self._scratch.values())
        return total

    def _scratch_buf(self, name: str, size: int, dtype) -> np.ndarray:
        """A reusable scratch array of at least ``size`` elements.

        Grown geometrically and kept for the overlay's lifetime, so
        successive chunks (and successive rounds) stream through the
        same allocation instead of churning ``size``-element
        temporaries.  Contents are unspecified — callers initialise
        what they read.
        """
        buf = self._scratch.get(name)
        if buf is None or buf.dtype != np.dtype(dtype) or len(buf) < size:
            grow = 0 if buf is None or buf.dtype != np.dtype(dtype) else 2 * len(buf)
            buf = np.empty(max(size, grow), dtype=dtype)
            self._scratch[name] = buf
        return buf[:size]

    def ids_list(self) -> list[int]:
        """All tracked ids, ascending (alive and dead)."""
        return unpack_words(self.hi, self.lo)

    def alive_ids(self) -> list[int]:
        """Ascending ids of alive nodes (fresh list)."""
        ahi, alo, _ = self._alive_arrays()
        return unpack_words(ahi, alo)

    def positions_of(self, node_ids) -> np.ndarray:
        """Global array positions of the given ids; KeyError if absent."""
        values = [int(v) for v in node_ids]
        khi, klo = pack_ids(values)
        pos = searchsorted_words(self.hi, self.lo, khi, klo)
        probe = np.where(pos < self.size, pos, 0)
        found = (pos < self.size) & (self.hi[probe] == khi) & (self.lo[probe] == klo)
        if not found.all():
            missing = values[int(np.flatnonzero(~found)[0])]
            raise KeyError(f"unknown node id {missing:#x}")
        return pos

    def __contains__(self, node_id: int) -> bool:
        """Is this id tracked (alive or tombstoned)?"""
        try:
            self.positions_of([node_id])
        except KeyError:
            return False
        return True

    def is_alive(self, node_id: int) -> bool:
        try:
            pos = self.positions_of([node_id])
        except KeyError:
            return False
        return bool(self.alive[pos[0]])

    def fail(self, node_ids) -> None:
        """Crash nodes (by id); dead positions keep their array slot."""
        self.fail_positions(self.positions_of(node_ids))

    def revive(self, node_ids) -> None:
        self.revive_positions(self.positions_of(node_ids))

    def _shift_alive_count(self, delta: int) -> None:
        """Carry the alive-count cache across an epoch bump (O(delta)
        bookkeeping instead of a fresh 10^5-element mask sum); call
        immediately *before* ``membership_epoch += 1``."""
        if self._count_epoch == self.membership_epoch:
            self._alive_count += delta
            self._count_epoch = self.membership_epoch + 1

    def fail_positions(self, positions) -> None:
        """Crash nodes by global array position (the scale-trial path)."""
        positions = np.asarray(positions, dtype=np.intp)
        if self.alive[positions].any():
            self._shift_alive_count(
                -int(self.alive[np.unique(positions)].sum())
            )
            self.alive[positions] = False
            self.membership_epoch += 1
            if self._metrics is not None:
                self._note_membership("compact.fail_events", len(positions))

    def revive_positions(self, positions) -> None:
        positions = np.asarray(positions, dtype=np.intp)
        if not self.alive[positions].all():
            self._shift_alive_count(
                int((~self.alive[np.unique(positions)]).sum())
            )
            self.alive[positions] = True
            self.membership_epoch += 1
            if self._metrics is not None:
                self._note_membership("compact.revive_events", len(positions))

    def join(self, new_ids) -> None:
        """Admit new nodes, merging them into the sorted arrays.

        Joining an id that is present and alive raises (mirroring the
        object engine); joining a failed id revives it.  Because the
        compact state is canonical-by-construction, a join here equals
        the object engine's incremental join *plus* the maintenance
        convergence that follows it.
        """
        values = sorted({int(v) for v in new_ids})
        if not values:
            return
        nhi, nlo = pack_ids(values)
        pos = searchsorted_words(self.hi, self.lo, nhi, nlo)
        probe = np.where(pos < self.size, pos, 0)
        present = (pos < self.size) & (self.hi[probe] == nhi) & (self.lo[probe] == nlo)
        occupied = present & self.alive[probe]
        if occupied.any():
            taken = values[int(np.flatnonzero(occupied)[0])]
            raise ValueError(f"node {taken:#x} already in the overlay")
        # revive tombstoned ids in place, insert genuinely new ones;
        # every joined id ends alive and none was alive before (the
        # occupied check above raised otherwise)
        self._shift_alive_count(len(values))
        if present.any():
            self.alive[probe[present]] = True
        fresh = ~present
        if fresh.any():
            # one merge plan scatters all three aligned arrays (a
            # np.insert per array would redo the index computation and
            # a full copy each time — 3x the work at 10^6 nodes)
            target, keep = merge_insert_positions(pos[fresh], self.size)
            merged_hi = np.empty(len(keep), dtype=np.uint64)
            merged_lo = np.empty(len(keep), dtype=np.uint64)
            merged_alive = np.empty(len(keep), dtype=bool)
            merged_hi[target] = nhi[fresh]
            merged_lo[target] = nlo[fresh]
            merged_alive[target] = True
            merged_hi[keep] = self.hi
            merged_lo[keep] = self.lo
            merged_alive[keep] = self.alive
            self.hi = merged_hi
            self.lo = merged_lo
            self.alive = merged_alive
        self.membership_epoch += 1
        if self._metrics is not None:
            self._note_membership("compact.join_events", len(values))

    # ------------------------------------------------------------------
    # replica-set queries (vectorised, exact 128-bit)
    # ------------------------------------------------------------------
    def replica_positions(self, key_hi, key_lo, k: int) -> np.ndarray:
        """(M, k) *global* positions of each key's replica set.

        Closest-first, ties toward the smaller id — the
        :meth:`ReplicatedStore.replica_set` ranking.  ``k`` is clamped
        to the alive population like ``replica_candidates``.  Global
        positions are stable across fail/revive (not across join).
        """
        ahi, alo, idx = self._alive_arrays()
        if len(ahi) == 0:
            raise RoutingError("no alive nodes")
        table = replica_table_words(ahi, alo, key_hi, key_lo, min(k, len(ahi)))
        return idx[table]

    def replica_ids(self, keys, k: int) -> list[list[int]]:
        """Replica sets as id lists, for cross-validation against the
        object engine; use :meth:`replica_positions` in bulk paths."""
        khi, klo = pack_ids(int(key) for key in keys)
        table = self.replica_positions(khi, klo, k)
        return [
            unpack_words(self.hi[row], self.lo[row])
            for row in table
        ]

    def closest_alive(self, key: int) -> int:
        """Id of the alive node numerically closest to ``key``."""
        return self.replica_ids([key], 1)[0][0]

    def alive_mask(self, member_hi: np.ndarray, member_lo: np.ndarray) -> np.ndarray:
        """Elementwise: is this id currently tracked *and* alive?

        Works on any shape of id words — the survivor bookkeeping of
        the scale trials, robust across joins because it re-resolves
        positions from id content.
        """
        flat_hi = np.ravel(member_hi)
        flat_lo = np.ravel(member_lo)
        pos = searchsorted_words(self.hi, self.lo, flat_hi, flat_lo)
        probe = np.where(pos < self.size, pos, 0)
        found = (pos < self.size) & (self.hi[probe] == flat_hi) & (self.lo[probe] == flat_lo)
        out = found & self.alive[probe]
        return out.reshape(np.shape(member_hi))

    # ------------------------------------------------------------------
    # derived per-node canonical state
    # ------------------------------------------------------------------
    def _alive_id_at(self, apos: int) -> int:
        ahi, alo, _ = self._alive_arrays()
        return _unpack_scalar(ahi[apos], alo[apos])

    def _alive_pos_of(self, node_id: int) -> int | None:
        ahi, alo, _ = self._alive_arrays()
        khi, klo = _pack_scalar(node_id)
        pos = int(searchsorted_words(ahi, alo, khi, klo)[0])
        if pos < len(ahi) and ahi[pos] == khi and alo[pos] == klo:
            return pos
        return None

    def leaf_members(self, node_id: int) -> list[int]:
        """The canonical leaf set of an alive node (unordered ids)."""
        apos = self._alive_pos_of(node_id)
        if apos is None:
            raise KeyError(f"node {node_id:#x} is not alive")
        return self._leaf_member_ids(apos)

    def _leaf_member_ids(self, apos: int) -> list[int]:
        ahi, alo, _ = self._alive_arrays()
        n = len(ahi)
        reach = leaf_reach(n, self.leaf_set_size)
        if reach <= 0:
            return []
        positions = {(apos + off) % n for off in range(-reach, reach + 1) if off}
        return [self._alive_id_at(p) for p in positions]

    def _cell_entry(self, node_id: int, row: int, col: int) -> int | None:
        """Smallest alive id in the (row, prefix, col) bucket slice —
        the canonical cell entry (``PastryNetwork._find_node_for_cell``
        over the prefix run in sorted order)."""
        ahi, alo, _ = self._alive_arrays()
        lower, upper = bucket_bounds(node_id, row, col, self.b_bits)
        khi, klo = _pack_scalar(lower)
        pos = int(searchsorted_words(ahi, alo, khi, klo)[0])
        if pos < len(ahi):
            candidate = self._alive_id_at(pos)
            if lower <= candidate < upper:
                return candidate
        return None

    def node_cells(self, node_id: int) -> dict[tuple[int, int], int]:
        """The canonical routing-table cells of an alive node.

        Row depth is bounded by the shared prefix with the sorted
        neighbours, exactly as in the bulk builder — deeper rows are
        provably empty.
        """
        apos = self._alive_pos_of(node_id)
        if apos is None:
            raise KeyError(f"node {node_id:#x} is not alive")
        return self._node_cells(apos)

    def _node_cells(self, apos: int) -> dict[tuple[int, int], int]:
        ahi, alo, _ = self._alive_arrays()
        n = len(ahi)
        nid = self._alive_id_at(apos)
        if n == 1:
            return {}
        depth = 0
        if apos > 0:
            depth = shared_prefix_digits(nid, self._alive_id_at(apos - 1), self.b_bits)
        if apos < n - 1:
            depth = max(
                depth,
                shared_prefix_digits(nid, self._alive_id_at(apos + 1), self.b_bits),
            )
        cells: dict[tuple[int, int], int] = {}
        for row in range(min(ID_BITS // self.b_bits, depth + 1)):
            own_digit = id_digit(nid, row, self.b_bits)
            for col in range(1 << self.b_bits):
                if col == own_digit:
                    continue
                entry = self._cell_entry(nid, row, col)
                if entry is not None:
                    cells[(row, col)] = entry
        return cells

    # ------------------------------------------------------------------
    # routing (mirrors PastryNode.next_hop on the canonical state)
    # ------------------------------------------------------------------
    def _leaf_covers(self, apos: int, key: int) -> bool:
        ahi, alo, _ = self._alive_arrays()
        n = len(ahi)
        if n <= self.leaf_set_size:
            # the window wraps or under-fills: not "full", covers all
            return True
        half = self.leaf_set_size // 2
        cw_far = self._alive_id_at((apos + half) % n)
        ccw_far = self._alive_id_at((apos - half) % n)
        span = (cw_far - ccw_far) % ID_SPACE
        return (key - ccw_far) % ID_SPACE <= span

    def _next_hop(self, apos: int, key: int) -> int:
        """Pastry's forwarding rule over derived state; returns the
        next node id (itself when this node is responsible)."""
        nid = self._alive_id_at(apos)

        if self._leaf_covers(apos, key):
            pool = self._leaf_member_ids(apos)
            pool.append(nid)
            return min(pool, key=lambda x: (ring_distance(x, key), x))

        row = shared_prefix_digits(nid, key, self.b_bits)
        col = id_digit(key, row, self.b_bits)
        entry = self._cell_entry(nid, row, col)
        if entry is not None:
            return entry

        # Rare case: any known node with a no-shorter prefix that is
        # strictly closer.  "Known" for canonical state is the leaf
        # window plus every populated cell.
        own_dist = ring_distance(nid, key)
        known = set(self._leaf_member_ids(apos))
        known.update(self._node_cells(apos).values())
        best = None
        best_key = None
        for cand in known:
            if shared_prefix_digits(cand, key, self.b_bits) < row:
                continue
            dist = ring_distance(cand, key)
            if dist >= own_dist:
                continue
            cand_key = (dist, cand)
            if best_key is None or cand_key < best_key:
                best_key = cand_key
                best = cand
        return best if best is not None else nid

    def route(self, src_id: int, key: int) -> RouteResult:
        """Route ``key`` from ``src_id`` hop by hop on derived state.

        Identical decisions to ``PastryNetwork.route`` on the
        materialised network: canonical state never references dead
        nodes, so no failures are discovered en route.
        """
        apos = self._alive_pos_of(src_id)
        if apos is None:
            raise RoutingError(f"source {src_id:#x} is not alive")
        path = [src_id]
        for _ in range(self.MAX_HOPS):
            nxt = self._next_hop(apos, key)
            if nxt == path[-1]:
                return RouteResult(key, path, True, 0)
            path.append(nxt)
            apos = self._alive_pos_of(nxt)
        return RouteResult(key, path, False, 0, meta={"reason": "hop-limit"})

    # ------------------------------------------------------------------
    # batched packet plane (repro.perf.packet)
    # ------------------------------------------------------------------
    def route_many(self, src_pos, key_hi, key_lo, *,
                   chunk_size: int | None = None,
                   run_scan_cap: int | None = None):
        """Vectorised lockstep routing of a whole packet batch.

        ``src_pos`` are *global* positions; keys are (hi, lo) word
        arrays.  Hop-for-hop identical to :meth:`route` per packet
        (dead sources fail in-row instead of raising); see
        :mod:`repro.perf.packet`.  ``chunk_size`` streams the batch
        through bounded scratch windows (results are digest-identical
        for any value); ``run_scan_cap`` bounds the fallback run scan.
        """
        from repro.perf.packet import route_many

        return route_many(self, src_pos, key_hi, key_lo,
                          chunk_size=chunk_size, run_scan_cap=run_scan_cap)

    def route_many_ids(self, src_ids, keys):
        """ID-level convenience wrapper over :meth:`route_many`."""
        from repro.perf.packet import route_many

        key_hi, key_lo = pack_ids(keys)
        return route_many(self, self.positions_of(src_ids), key_hi, key_lo)

    def route_tunnels(self, src_pos, hop_key_hi, hop_key_lo,
                      dest_key_hi, dest_key_lo, keep_legs: bool = False, *,
                      chunk_size: int | None = None,
                      run_scan_cap: int | None = None):
        """Batched TAP tunnel construction + exit-leg routing; see
        :func:`repro.perf.packet.route_tunnels`."""
        from repro.perf.packet import route_tunnels

        return route_tunnels(
            self, src_pos, hop_key_hi, hop_key_lo,
            dest_key_hi, dest_key_lo, keep_legs=keep_legs,
            chunk_size=chunk_size, run_scan_cap=run_scan_cap,
        )

    # ------------------------------------------------------------------
    # snapshot / materialisation bridge
    # ------------------------------------------------------------------
    def snapshot(self) -> "CompactSnapshot":
        """Immutable, picklable capture (for ``run_trials(shared=...)``)."""
        return CompactSnapshot.capture(self)

    def to_network_snapshot(self):
        """A lazy :class:`~repro.perf.snapshot.NetworkSnapshot` view.

        ``restore()`` yields an object-engine :class:`PastryNetwork`
        whose nodes materialise on first access from the compact
        arrays — a packet-level route on a 10^5-node overlay touches
        only the handful of nodes on the path.
        """
        return self.snapshot().to_network_snapshot()

    def to_system_snapshot(self, replication_factor: int = 3):
        """A :class:`~repro.perf.snapshot.SystemSnapshot` with an empty
        store; ``fork(seed)`` then yields a full :class:`TapSystem` on
        the materialised overlay for end-to-end spot-checks."""
        from repro.perf.snapshot import StoreSnapshot, SystemSnapshot

        return SystemSnapshot(
            self.to_network_snapshot(),
            StoreSnapshot(
                k=replication_factor, objects={}, storage_keys={}, holders={}
            ),
        )


class CompactSnapshot:
    """Frozen copy of a :class:`CompactOverlay`; cheap to pickle/ship."""

    __slots__ = ("hi", "lo", "alive", "b_bits", "leaf_set_size",
                 "membership_epoch", "num_alive")

    def __init__(self, **fields):
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @property
    def nbytes(self) -> int:
        """Resident bytes of the captured arrays (id words + alive)."""
        return int(self.hi.nbytes) + int(self.lo.nbytes) + int(self.alive.nbytes)

    @classmethod
    def capture(cls, overlay: CompactOverlay) -> "CompactSnapshot":
        hi = overlay.hi.copy()
        lo = overlay.lo.copy()
        alive = overlay.alive.copy()
        for arr in (hi, lo, alive):
            arr.setflags(write=False)
        return cls(
            hi=hi,
            lo=lo,
            alive=alive,
            b_bits=overlay.b_bits,
            leaf_set_size=overlay.leaf_set_size,
            membership_epoch=overlay.membership_epoch,
            num_alive=overlay.num_alive,
        )

    def restore(self) -> CompactOverlay:
        """An independent mutable overlay resuming from this capture."""
        overlay = CompactOverlay(
            self.hi.copy(),
            self.lo.copy(),
            self.alive.copy(),
            self.b_bits,
            self.leaf_set_size,
            self.membership_epoch,
        )
        # seed the alive-count cache from capture time, so the first
        # num_alive read (the telemetry attach, the round rows) costs
        # an attribute lookup instead of a full mask sum
        overlay._alive_count = self.num_alive
        overlay._count_epoch = self.membership_epoch
        return overlay

    def _frozen_engine(self) -> CompactOverlay:
        """A private overlay sharing the read-only arrays (no copy);
        used by the lazy bridge mappings, never exposed for mutation."""
        return CompactOverlay(
            self.hi, self.lo, self.alive,
            self.b_bits, self.leaf_set_size, self.membership_epoch,
        )

    def to_network_snapshot(self):
        from repro.perf.snapshot import NetworkSnapshot

        engine = self._frozen_engine()
        ids = engine.ids_list()
        alive_flags = self.alive.tolist()
        sorted_alive = tuple(
            nid for nid, up in zip(ids, alive_flags) if up
        )
        dead = frozenset(nid for nid, up in zip(ids, alive_flags) if not up)
        index = {nid: pos for pos, nid in enumerate(ids)}
        return NetworkSnapshot(
            b_bits=self.b_bits,
            leaf_set_size=self.leaf_set_size,
            eager_repair=True,
            membership_epoch=self.membership_epoch,
            order=tuple(ids),
            sorted_alive=sorted_alive,
            dead=dead,
            leafs=_LazyLeafs(engine, index),
            cells=_LazyCells(engine, index),
        )


class _LazyBridgeView:
    """Shared plumbing of the lazy ``leafs``/``cells`` mappings the
    bridge hands to :class:`NetworkSnapshot`: membership over *all*
    tracked ids, per-node state computed from the compact arrays on
    first access.  Dead nodes materialise empty (they are tombstones;
    routing never consults them)."""

    def __init__(self, engine: CompactOverlay, index: dict[int, int]):
        self._engine = engine
        self._index = index

    def __contains__(self, node_id) -> bool:
        return node_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self):
        return iter(self._index)

    def _alive_position(self, node_id):
        pos = self._index.get(node_id)
        if pos is None:
            raise KeyError(node_id)
        if not self._engine.alive[pos]:
            return None
        return self._engine._alive_pos_of(node_id)

    def get(self, node_id, default=None):
        try:
            return self[node_id]
        except KeyError:
            return default


class _LazyLeafs(_LazyBridgeView):
    def __getitem__(self, node_id) -> tuple[int, ...]:
        apos = self._alive_position(node_id)
        if apos is None:
            return ()
        return tuple(self._engine._leaf_member_ids(apos))


class _LazyCells(_LazyBridgeView):
    def __getitem__(self, node_id) -> dict[tuple[int, int], int]:
        apos = self._alive_position(node_id)
        if apos is None:
            return {}
        return self._engine._node_cells(apos)
