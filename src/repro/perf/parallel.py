"""The parallel trial executor.

Experiment repetitions in this repo are *independent by construction*:
every trial derives its own seed streams from ``(base_seed, labels)``
via :func:`repro.util.rng.derive_seed`, so no trial reads generator
state another trial advanced.  That makes fan-out safe — the only
remaining source of nondeterminism would be merge order, which
:func:`run_trials` eliminates by returning results in submission
order regardless of completion order.

Workers are OS processes (``ProcessPoolExecutor``), so trial functions
and their arguments must be picklable **top-level** callables.  A
worker raising propagates to the caller — a failed trial fails the
experiment rather than silently dropping a repetition.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.util.rng import derive_seed


def derive_trial_seed(base_seed: int, rep: int) -> int:
    """The per-repetition seed: ``derive_seed(base_seed, "trial", rep)``.

    Hash-derived (not ``base_seed + rep``), so trial streams never
    collide with each other or with any other labelled stream of the
    same base seed.
    """
    return derive_seed(base_seed, "trial", rep)


def resolve_workers(workers: int | None, n_items: int) -> int:
    """Normalise a worker-count request against the work available.

    ``None``/``0``/``1`` mean serial; negative means "all cores";
    anything else is clamped to ``n_items`` (idle workers are pure
    startup cost).
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_items))


def effective_workers(workers: int | None, config) -> int | None:
    """The worker count a runner should use: an explicit ``workers``
    argument wins, else the config's ``workers`` field (default 1)."""
    if workers is not None:
        return workers
    return getattr(config, "workers", 1)


#: Trial-visible shared payload installed by :func:`run_trials`; read
#: it with :func:`shared_payload`.  In workers it is set once by the
#: pool initializer; in the serial path it is set around the loop.
_SHARED = None


def _set_shared(payload) -> None:
    global _SHARED
    _SHARED = payload


def shared_payload():
    """The ``shared=`` payload of the enclosing :func:`run_trials`
    call, or ``None`` when the trial runs standalone.

    Runners use this to ship one pickled base-overlay snapshot
    (:mod:`repro.perf.snapshot`) to every worker instead of each trial
    re-bootstrapping the overlay; trial functions must treat ``None``
    as "build fresh" so they stay callable outside :func:`run_trials`.
    """
    return _SHARED


def run_trials(
    trial: Callable,
    arglists: Sequence[tuple],
    workers: int | None = 1,
    shared=None,
) -> list:
    """Run ``trial(*args)`` for every ``args`` tuple, possibly in parallel.

    Results come back in submission order, so folding them is
    deterministic for any worker count — the property the serial ==
    parallel digest gate checks.  With an effective worker count of 1
    the trials run inline (no executor, no pickling).

    ``shared`` is an optional read-only payload made visible to every
    trial via :func:`shared_payload`: pickled once per worker process
    (pool initializer) rather than once per trial, and restored around
    the serial loop so both paths observe identical state.
    """
    n = len(arglists)
    w = resolve_workers(workers, n)
    if w <= 1:
        if shared is None:
            return [trial(*args) for args in arglists]
        prev = _SHARED
        _set_shared(shared)
        try:
            return [trial(*args) for args in arglists]
        finally:
            _set_shared(prev)
    pool_kwargs = {}
    if shared is not None:
        pool_kwargs = {"initializer": _set_shared, "initargs": (shared,)}
    with ProcessPoolExecutor(max_workers=w, **pool_kwargs) as pool:
        futures = [pool.submit(trial, *args) for args in arglists]
        return [f.result() for f in futures]
