"""Canonical result fingerprints.

The parallel executor's safety gate is byte-equality: a figure run
with ``--workers 4`` must produce *exactly* the rows a serial run
produces.  "Exactly" needs a canonical encoding — dict ordering,
float repr, and numpy scalar types must not leak into the comparison.

:func:`canonical_json` pins all three: keys sorted, separators fixed,
numpy scalars coerced to their Python equivalents (``repr`` of a
``np.float64`` round-trips identically to the ``float`` it wraps, so
coercion never changes the digested value — it only makes the encoder
accept it).  :func:`rows_digest` is the SHA-256 of that encoding.
"""

from __future__ import annotations

import hashlib
import json


def _coerce(obj):
    """JSON fallback for numpy scalars/arrays without importing numpy.

    Both ``np.generic`` scalars and ``np.ndarray`` expose ``tolist()``,
    which returns the exact Python-native equivalent (scalar or nested
    list), so one hook covers every numpy type a row can carry.
    """
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"not canonically serialisable: {type(obj).__name__}")


def canonical_json(obj) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, numpy-safe."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_coerce
    )


def rows_digest(rows) -> str:
    """SHA-256 hexdigest of the canonical encoding of ``rows``."""
    return hashlib.sha256(canonical_json(rows).encode("utf-8")).hexdigest()
