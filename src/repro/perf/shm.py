"""Zero-copy snapshot sharding over ``multiprocessing.shared_memory``.

``run_trials(shared=...)`` ships its payload to every worker through
the pool-initializer pickle.  For a :class:`~repro.perf.compact.
CompactSnapshot` that pickle *is* the arrays — 17 MB at N=10^6, paid
once per worker and again as a resident copy inside each.  This module
replaces the array payload with a named shared-memory segment:

* :meth:`SharedCompactSnapshot.publish` copies the snapshot's three
  arrays into **one** ``SharedMemory`` block (layout ``hi | lo |
  alive``) owned by the publishing process;
* pickling a :class:`SharedCompactSnapshot` serialises *metadata only*
  (segment name, element count, overlay parameters) — a few hundred
  bytes regardless of N;
* workers attach lazily on first array access and map the same
  physical pages read-only, so forking a 10^6-node base costs page
  tables, not copies.  The attach time is recorded in
  ``attach_seconds`` (0 for the publisher), which runners surface in
  the manifest's volatile section as the per-worker deserialisation
  cost.

Equivalence contract: ``view()``/``restore()`` produce arrays bitwise
identical to the plain snapshot's, so experiment rows (and digests)
cannot depend on whether a base was shipped by pickle or by segment.
Publishers must :meth:`unlink` in a ``finally`` — on platforms or
sandboxes without ``/dev/shm`` the helpers degrade to plain snapshots
rather than failing the run.
"""

from __future__ import annotations

import time

import numpy as np

from repro.perf.compact import CompactSnapshot

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shm_available() -> bool:
    """Whether this platform can create shared-memory segments."""
    return _shared_memory is not None


#: Process-local attach memo: segment name -> (SharedMemory, views).
#: One worker runs many trials against the same base; the first trial
#: pays the (microsecond) attach, the rest reuse the mapping.
_ATTACHED: dict = {}


class SharedCompactSnapshot:
    """A :class:`CompactSnapshot` whose arrays live in one named
    shared-memory segment; pickles to metadata only."""

    __slots__ = (
        "name", "size", "b_bits", "leaf_set_size", "membership_epoch",
        "num_alive", "attach_seconds", "_segment", "_views", "_owner",
    )

    def __init__(self, name, size, b_bits, leaf_set_size,
                 membership_epoch, num_alive, segment=None, views=None,
                 owner=False):
        self.name = name
        self.size = size
        self.b_bits = b_bits
        self.leaf_set_size = leaf_set_size
        self.membership_epoch = membership_epoch
        self.num_alive = num_alive
        self.attach_seconds = 0.0
        self._segment = segment
        self._views = views
        self._owner = owner

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def publish(cls, snap: CompactSnapshot) -> "SharedCompactSnapshot":
        """Copy ``snap``'s arrays into a fresh segment owned by the
        caller (who must :meth:`unlink` when the fan-out is done)."""
        if _shared_memory is None:
            raise OSError("shared memory is not available on this platform")
        n = len(snap.hi)
        segment = _shared_memory.SharedMemory(create=True, size=max(1, 17 * n))
        views = _layout(segment.buf, n)
        hi, lo, alive = views
        hi[:] = snap.hi
        lo[:] = snap.lo
        alive[:] = snap.alive
        return cls(
            segment.name, n, snap.b_bits, snap.leaf_set_size,
            snap.membership_epoch, snap.num_alive,
            segment=segment, views=views, owner=True,
        )

    def unlink(self) -> None:
        """Destroy the segment (publisher only); idempotent, and safe
        when the OS already reclaimed it."""
        if not self._owner:
            return
        segment, self._segment, self._views = self._segment, None, None
        self._owner = False
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass

    # -- pickling: metadata only ---------------------------------------
    def __getstate__(self):
        return {
            "name": self.name,
            "size": self.size,
            "b_bits": self.b_bits,
            "leaf_set_size": self.leaf_set_size,
            "membership_epoch": self.membership_epoch,
            "num_alive": self.num_alive,
        }

    def __setstate__(self, state):
        for key, value in state.items():
            setattr(self, key, value)
        self.attach_seconds = 0.0
        self._segment = None
        self._views = None
        self._owner = False

    # -- lazy attach ----------------------------------------------------
    def _arrays(self):
        if self._views is None:
            cached = _ATTACHED.get(self.name)
            if cached is None:
                start = time.perf_counter()
                segment = _shared_memory.SharedMemory(name=self.name)
                views = _layout(segment.buf, self.size, writable=False)
                self.attach_seconds = time.perf_counter() - start
                cached = _ATTACHED[self.name] = (segment, views)
            self._segment, self._views = cached
        return self._views

    @property
    def hi(self) -> np.ndarray:
        return self._arrays()[0]

    @property
    def lo(self) -> np.ndarray:
        return self._arrays()[1]

    @property
    def alive(self) -> np.ndarray:
        return self._arrays()[2]

    @property
    def nbytes(self) -> int:
        """Segment bytes backing the shared arrays."""
        return 17 * self.size

    # -- snapshot protocol ---------------------------------------------
    def view(self) -> CompactSnapshot:
        """A plain :class:`CompactSnapshot` over the shared pages (no
        copy); arrays are read-only views."""
        hi, lo, alive = self._arrays()
        return CompactSnapshot(
            hi=hi, lo=lo, alive=alive,
            b_bits=self.b_bits,
            leaf_set_size=self.leaf_set_size,
            membership_epoch=self.membership_epoch,
            num_alive=self.num_alive,
        )

    def restore(self):
        """An independent mutable overlay (same contract as
        :meth:`CompactSnapshot.restore`; the copy leaves the segment
        untouched)."""
        return self.view().restore()


def _layout(buf, n: int, writable: bool = True):
    """The segment layout: ``hi[0:8n] | lo[8n:16n] | alive[16n:17n]``."""
    hi = np.ndarray((n,), dtype=np.uint64, buffer=buf, offset=0)
    lo = np.ndarray((n,), dtype=np.uint64, buffer=buf, offset=8 * n)
    alive = np.ndarray((n,), dtype=bool, buffer=buf, offset=16 * n)
    if not writable:
        for arr in (hi, lo, alive):
            arr.setflags(write=False)
    return hi, lo, alive


def share_base(bases: dict) -> tuple[dict, list[SharedCompactSnapshot]]:
    """Wrap every :class:`CompactSnapshot` in ``bases`` as a published
    shared segment; other values pass through untouched.

    Returns the payload to hand to ``run_trials(shared=...)`` plus the
    published segments the caller must :meth:`unlink` in a ``finally``.
    Falls back to the plain snapshots (empty publish list) when shared
    memory is unavailable or the OS refuses a segment — sharding is an
    optimisation, never a correctness dependency.
    """
    if not shm_available():
        return bases, []
    shared: dict = {}
    published: list[SharedCompactSnapshot] = []
    try:
        for token, value in bases.items():
            if isinstance(value, CompactSnapshot):
                shm_snap = SharedCompactSnapshot.publish(value)
                published.append(shm_snap)
                shared[token] = shm_snap
            else:
                shared[token] = value
    except OSError:
        for shm_snap in published:
            shm_snap.unlink()
        return bases, []
    return shared, published
