"""TapSystem: the public façade tying all substrates together.

A :class:`TapSystem` owns one Pastry overlay, one replicated store and
the TAP state of every participating node, and exposes the operations
a TAP user performs: deploy anchors, form tunnels, send messages,
retrieve files — plus the membership events (fail/leave/join) that
drive the fault-tolerance experiments.
"""

from __future__ import annotations

from repro.core.deploy import ThaDeployer
from repro.core.forwarding import ForwardTrace, TunnelForwarder
from repro.core.node import TapNode
from repro.core.retrieval import AnonymousRetrieval, RetrievalResult
from repro.core.tunnel import ReplyTunnel, Tunnel, TunnelFormationError, select_scattered
from repro.past.replication import ReplicatedStore
from repro.pastry.network import PastryNetwork
from repro.pastry.node import ip_for_id
from repro.util.ids import random_id
from repro.util.rng import SeedSequenceFactory


class TapSystem:
    """One simulated TAP deployment.

    Build one with :meth:`bootstrap` (fresh random overlay) or wrap
    pre-built substrates with the constructor.
    """

    def __init__(
        self,
        network: PastryNetwork,
        store: ReplicatedStore,
        seeds: SeedSequenceFactory,
        metrics=None,
        event_trace=None,
        tracer=None,
    ):
        self.network = network
        self.store = store
        self.seeds = seeds
        self.tap_nodes: dict[int, TapNode] = {}
        # ip_for_id is the single source of node IPs, so the hint index
        # is derivable from the ids alone — iterating keys (not nodes)
        # keeps copy-on-write forks from materialising every node here.
        self.ip_index: dict[str, int] = {
            ip_for_id(nid): nid for nid in network.nodes
        }
        self.forwarder = TunnelForwarder(network, store, self.tap_nodes, self.ip_index)
        self.deployer = ThaDeployer(network, store, seeds.pyrandom("deployer"))
        self.retrieval = AnonymousRetrieval(
            self.forwarder, store, seeds.pyrandom("retrieval")
        )
        self._form_rng = seeds.pyrandom("tunnel-form")
        self.metrics = None
        self.event_trace = None
        self.tracer = None
        #: set by :meth:`enable_auditing`
        self.auditor = None
        #: raise on audit violations (vs. collect in auditor.history)
        self.audit_strict = True
        if metrics is not None or event_trace is not None or tracer is not None:
            self.attach_observability(metrics, event_trace, tracer)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(
        cls,
        num_nodes: int,
        seed: int = 0,
        replication_factor: int = 3,
        b_bits: int = 4,
        leaf_set_size: int = 16,
        overlay_seed: int | None = None,
        metrics=None,
        event_trace=None,
        tracer=None,
    ) -> "TapSystem":
        """Random overlay of ``num_nodes`` with correct initial state.

        ``overlay_seed`` draws the node ids from a *different* root
        seed than the system's behavioural streams: ``bootstrap(n,
        seed=rep, overlay_seed=base)`` is the fresh-build reference
        that :meth:`fork` of a ``seed=base`` system must match byte
        for byte (the fork-equivalence contract).
        """
        seeds = SeedSequenceFactory(seed)
        id_seeds = seeds if overlay_seed is None else SeedSequenceFactory(overlay_seed)
        id_rng = id_seeds.pyrandom("node-ids")
        ids = set()
        while len(ids) < num_nodes:
            ids.add(random_id(id_rng))
        network = PastryNetwork.build(ids, b_bits=b_bits, leaf_set_size=leaf_set_size)
        store = ReplicatedStore(network, replication_factor)
        return cls(
            network, store, seeds,
            metrics=metrics, event_trace=event_trace, tracer=tracer,
        )

    def snapshot(self):
        """Immutable, picklable capture of the overlay + storage state.

        Returns a :class:`repro.perf.snapshot.SystemSnapshot`; call its
        :meth:`~repro.perf.snapshot.SystemSnapshot.fork` per repetition
        instead of re-bootstrapping.  Must be taken before any TAP
        state (anchors, tunnels) exists.
        """
        from repro.perf.snapshot import SystemSnapshot

        return SystemSnapshot.capture(self)

    def fork(
        self, seed: int, metrics=None, event_trace=None, tracer=None
    ) -> "TapSystem":
        """An independent system on a copy-on-write fork of this one's
        substrates, with fresh seed streams rooted at ``seed``."""
        return self.snapshot().fork(
            seed, metrics=metrics, event_trace=event_trace, tracer=tracer
        )

    # ------------------------------------------------------------------
    # observability (repro.obs)
    # ------------------------------------------------------------------
    def attach_observability(
        self, metrics=None, event_trace=None, tracer=None
    ) -> None:
        """Thread a :class:`repro.obs.MetricsRegistry`,
        :class:`repro.obs.EventTrace` and/or
        :class:`repro.obs.SpanTracer` through every substrate."""
        if metrics is not None:
            self.metrics = metrics
            self.network.metrics = metrics
            self.store.metrics = metrics
            self.forwarder.metrics = metrics
            metrics.gauge("pastry.population").set(self.network.size)
        if event_trace is not None:
            self.event_trace = event_trace
            self.forwarder.event_trace = event_trace
        if tracer is not None:
            self.tracer = tracer
            self.network.tracer = tracer
            self.store.tracer = tracer
            self.forwarder.tracer = tracer

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def install_faults(self, plan, protected=()):
        """Arm the synchronous engine with a fault plan's injector.

        ``protected`` node ids are exempt from Byzantine assignment
        (chaos runs keep initiators/servers honest: the faults under
        test are in the network, not the endpoints).  Returns the
        installed :class:`repro.faults.injectors.SyncFaultInjector`.
        """
        injector = plan.sync_injector(
            self.seeds.spawn("faults", plan.name),
            event_trace=self.event_trace, metrics=self.metrics,
        )
        if plan.byzantine is not None:
            exempt = set(protected)
            injector.assign_byzantine(
                [i for i in self.network.alive_ids if i not in exempt]
            )
        self.forwarder.faults = injector
        return injector

    def clear_faults(self) -> None:
        """Disarm fault injection (subsequent sends run clean)."""
        self.forwarder.faults = None

    def enable_auditing(self, strict: bool = True):
        """Run an :class:`repro.obs.InvariantAuditor` after every
        membership event this system performs.

        ``strict`` raises :class:`repro.obs.InvariantViolationError` on
        the first violation; otherwise reports accumulate in
        ``self.auditor.history``.  Returns the auditor.
        """
        from repro.obs.audit import InvariantAuditor

        self.auditor = InvariantAuditor(
            self.network, self.store, metrics=self.metrics
        )
        self.audit_strict = strict
        return self.auditor

    def _audit(self, context: str) -> None:
        if self.auditor is None:
            return
        if self.audit_strict:
            self.auditor.assert_clean(context)
        else:
            self.auditor.run(context)

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------
    def tap_node(self, node_id: int) -> TapNode:
        """TAP participant state for an overlay node (created lazily)."""
        tap = self.tap_nodes.get(node_id)
        if tap is None:
            pastry = self.network.nodes[node_id]
            tap = TapNode(pastry, self.seeds.pyrandom("tap-node", node_id))
            self.tap_nodes[node_id] = tap
        return tap

    def random_node_id(self, label: object = "pick") -> int:
        """A uniformly random alive node id (deterministic per label)."""
        rng = self.seeds.pyrandom("random-node", label)
        ids = self.network.alive_ids
        return ids[rng.randrange(len(ids))]

    # ------------------------------------------------------------------
    # THA deployment
    # ------------------------------------------------------------------
    def deploy_thas(
        self,
        owner: TapNode,
        count: int,
        relay_path_len: int | None = None,
        max_attempts: int = 5,
    ):
        """Generate and anonymously deploy ``count`` fresh anchors.

        Relay candidates are all alive TAP-capable nodes.  The paper
        suggests 3–5 anchors per deployment session; larger counts
        simply use longer bootstrap paths (or call repeatedly).
        """
        thas = [owner.new_tha() for _ in range(count)]
        candidates = [
            self.tap_node(nid)
            for nid in self._relay_candidate_ids(owner, count * 4)
        ]
        report = self.deployer.deploy(owner, thas, candidates, max_attempts)
        del relay_path_len  # path length == batch size in this deployer
        return report

    def _relay_candidate_ids(self, owner: TapNode, want: int) -> list[int]:
        rng = self.seeds.pyrandom("relay-candidates", owner.node_id, len(owner.owned_thas))
        ids = [i for i in self.network.alive_ids if i != owner.node_id]
        if len(ids) <= want:
            return ids
        return rng.sample(ids, want)

    # ------------------------------------------------------------------
    # tunnel formation
    # ------------------------------------------------------------------
    def form_tunnel(
        self,
        owner: TapNode,
        length: int,
        use_hints: bool = False,
        now: float = 0.0,
    ) -> Tunnel:
        """Form a forward tunnel from the owner's deployed anchors (§3.5)."""
        tr = self.tracer
        span = tr.start_span(
            "tunnel.form", observer="initiator",
            initiator=owner.node_id, length=length, hints=use_hints,
        ) if tr else None
        hops = self._claim_hops(owner, length)
        hints: list[str | None] = [None] * length
        if use_hints:
            hints = [self._resolve_hint(owner, h.hop_id) for h in hops]
        if span is not None:
            tr.finish(span)
        return Tunnel(hops=hops, hint_ips=hints, formed_at=now)

    def form_reply_tunnel(
        self,
        owner: TapNode,
        length: int,
        use_hints: bool = False,
        now: float = 0.0,
    ) -> ReplyTunnel:
        """Form a reply tunnel ending at a ``bid`` owned by the initiator."""
        tr = self.tracer
        span = tr.start_span(
            "tunnel.form", observer="initiator",
            initiator=owner.node_id, length=length, hints=use_hints,
            reply=True,
        ) if tr else None
        hops = self._claim_hops(owner, length)
        hints: list[str | None] = [None] * length
        if use_hints:
            hints = [self._resolve_hint(owner, h.hop_id) for h in hops]
        bid = owner.make_bid(self.network.alive_ids)
        if span is not None:
            tr.finish(span)
        return ReplyTunnel(hops=hops, hint_ips=hints, formed_at=now, bid=bid)

    def _claim_hops(self, owner: TapNode, length: int):
        """Select scattered anchors and mark them as belonging to a
        tunnel — §4 requires request and reply tunnels to be disjoint,
        so anchors in active tunnels are never reselected."""
        hops = select_scattered(
            owner.deployed_thas(), length, self._form_rng, self.network.b_bits
        )
        for tha in hops:
            tha.in_use = True
            tha.meta["formed_root"] = self.network.closest_alive(tha.hop_id)
        return hops

    def retire_tunnel(self, owner: TapNode, tunnel: Tunnel, delete: bool = False) -> None:
        """Release a tunnel's anchors for reuse, optionally deleting
        them from the DHT (presenting the owner's PW proofs)."""
        for tha in tunnel.hops:
            tha.in_use = False
            if delete:
                self.deployer.delete(owner, tha)

    def _resolve_hint(self, owner: TapNode, hop_id: int) -> str:
        """Footnote-3 cache: map a hopid to its hop node's current IP."""
        root = self.network.closest_alive(hop_id)
        ip = self.network.nodes[root].ip
        owner.hint_cache[hop_id] = (ip, root)
        return ip

    # ------------------------------------------------------------------
    # messaging / retrieval
    # ------------------------------------------------------------------
    def send(
        self,
        initiator: TapNode,
        tunnel: Tunnel,
        destination_id: int,
        payload: bytes,
    ) -> ForwardTrace:
        return self.forwarder.send(initiator, tunnel, destination_id, payload)

    def publish(self, content: bytes, name: bytes | None = None) -> int:
        return self.retrieval.publish(content, name)

    def retrieve(
        self,
        initiator: TapNode,
        fid: int,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
    ) -> RetrievalResult:
        return self.retrieval.retrieve(initiator, fid, forward_tunnel, reply_tunnel)

    def retrieve_resilient(
        self,
        initiator: TapNode,
        fid: int,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
        policy=None,
    ) -> RetrievalResult:
        """Policy-managed retrieval that reforms the implicated tunnel
        between attempts (fresh anchors via :meth:`deploy_thas`).

        The final result's ``meta["tunnels"]`` holds the tunnels in use
        after any reforms, so callers can keep them for later requests.
        """
        tunnels = {"forward": forward_tunnel, "reply": reply_tunnel}

        def reform(reason: str | None):
            which = "forward" if (reason or "").startswith("forward") else "reply"
            self.deploy_thas(initiator, count=len(tunnels[which].hops))
            self.retire_tunnel(initiator, tunnels[which])
            if which == "forward":
                tunnels["forward"] = self.form_tunnel(
                    initiator, len(forward_tunnel.hops)
                )
            else:
                tunnels["reply"] = self.form_reply_tunnel(
                    initiator, len(reply_tunnel.hops)
                )
            return tunnels["forward"], tunnels["reply"]

        result = self.retrieval.retrieve_resilient(
            initiator, fid, forward_tunnel, reply_tunnel,
            policy=policy, reform=reform,
        )
        result.meta["tunnels"] = (tunnels["forward"], tunnels["reply"])
        return result

    # ------------------------------------------------------------------
    # membership events (keep overlay + storage in lock-step)
    # ------------------------------------------------------------------
    def fail_node(self, node_id: int, repair: bool = True) -> None:
        """Crash a node; re-replicate its objects if ``repair``."""
        self.network.fail(node_id)
        if repair:
            self.store.on_fail(node_id)
            self._audit(f"fail {node_id:#x}")

    def fail_nodes(self, node_ids, repair_after: bool = True) -> None:
        """Simultaneous mass failure (Figure 2's model).

        All nodes drop *before* any repair runs — objects whose entire
        replica set is inside the failed set are lost, exactly the
        paper's simultaneous-failure scenario.
        """
        node_ids = list(node_ids)
        for nid in node_ids:
            self.network.fail(nid)
        if repair_after:
            for nid in node_ids:
                self.store.on_fail(nid)
            self._audit(f"mass-fail x{len(node_ids)}")

    def join_node(self, node_id: int) -> TapNode:
        self.network.join(node_id)
        self.ip_index[self.network.nodes[node_id].ip] = node_id
        self.store.on_join(node_id)
        self._audit(f"join {node_id:#x}")
        return self.tap_node(node_id)

    def revive_node(self, node_id: int) -> TapNode:
        """Bring a failed node back, reconciling its stale replicas.

        The revived node drops local objects the holder index no
        longer attributes to it (deleted or handed-off while it was
        away — resurrection guard) and adopts the replicas it is now
        responsible for, like a fresh join.
        """
        self.network.revive(node_id)
        self.store.on_revive(node_id)
        self._audit(f"revive {node_id:#x}")
        return self.tap_node(node_id)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TapSystem(nodes={self.network.size}, k={self.store.k}, "
            f"objects={len(self.store.all_keys())})"
        )
