"""Tunnel Hop Anchors (THAs): ``<hopid, K, H(PW)>`` (paper §3.1–§3.2).

A THA anchors one tunnel hop in the DHT.  ``hopid`` is the storage
key; the value — a small "file" in PAST terms — carries the symmetric
key ``K`` used to peel one onion layer and the password hash ``H(PW)``
guarding deletion.

Generation is node-specific and unlinkable: ``hopid = H(node_ID, hkey,
t)`` where ``hkey`` is secret and ``t`` a timestamp, so no outsider can
recompute the hopid for a suspected node (§3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.hashing import (
    derive_hopid,
    hash_password,
    random_key,
    random_password,
)
from repro.crypto.symmetric import SymmetricKey
from repro.util.serialize import pack_fields, unpack_fields


@dataclass(frozen=True)
class TunnelHopAnchor:
    """The public (stored) part of an anchor: what replica nodes see."""

    hop_id: int
    key: SymmetricKey
    pw_hash: bytes

    def __post_init__(self) -> None:
        if len(self.pw_hash) != 32:
            raise ValueError("pw_hash must be a 32-byte SHA-256 digest")


@dataclass
class OwnedTha:
    """An anchor together with the owner-only secrets.

    Only the initiator holds the password ``pw`` (deletion proof) and
    the metadata below; what is deployed into the DHT is
    ``anchor`` alone.
    """

    anchor: TunnelHopAnchor
    pw: bytes
    created_at: int
    deployed: bool = False
    #: set while the anchor belongs to a formed tunnel; §4 requires
    #: request and reply tunnels to be built from different anchors.
    in_use: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def hop_id(self) -> int:
        return self.anchor.hop_id

    @property
    def key(self) -> SymmetricKey:
        return self.anchor.key


def generate_tha(
    node_identifier: bytes,
    hkey: bytes,
    timestamp: int,
    rng: random.Random,
) -> OwnedTha:
    """Generate one node-specific anchor (§3.2).

    ``hopid`` comes from the keyed hash (collision-free across nodes,
    unlinkable to the generator); ``K`` and ``PW`` are fresh random
    bit-strings.
    """
    hop_id = derive_hopid(node_identifier, hkey, timestamp)
    key = SymmetricKey(random_key(rng))
    pw = random_password(rng)
    anchor = TunnelHopAnchor(hop_id, key, hash_password(pw))
    return OwnedTha(anchor=anchor, pw=pw, created_at=timestamp)


def tha_value_encode(anchor: TunnelHopAnchor) -> bytes:
    """Serialise the stored THA value ``K + H(PW)`` (the "file content")."""
    return pack_fields(anchor.key.key_bytes, anchor.pw_hash)


def tha_value_decode(hop_id: int, blob: bytes) -> TunnelHopAnchor:
    """Parse a stored THA value back into an anchor."""
    key_bytes, pw_hash = unpack_fields(blob, count=2)
    return TunnelHopAnchor(hop_id, SymmetricKey(key_bytes), pw_hash)
