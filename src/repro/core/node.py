"""Per-node TAP state layered on a Pastry node.

A :class:`TapNode` owns the secrets and caches a participant needs:

* ``hkey`` — the secret bit-string entering hopid derivation (§3.2);
* a lazily generated RSA key pair (bootstrap PKI, §3.3, and the
  temporary ``K_I`` role of §4);
* the THAs it has generated (with their passwords);
* pending-reply contexts keyed by ``bid`` (§4);
* the IP-hint cache for the §5 optimisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.tha import OwnedTha, generate_tha
from repro.crypto.asymmetric import RsaKeyPair
from repro.pastry.node import PastryNode
from repro.util.ids import ID_SPACE


@dataclass
class PendingReply:
    """What the initiator remembers while a reply is outstanding."""

    bid: int
    temp_keypair: RsaKeyPair
    reply_hops: list[int]
    callback: Callable[[Any], None] | None = None
    completed: bool = False


class TapNode:
    """TAP participant state.  One per overlay node that uses TAP."""

    def __init__(self, pastry_node: PastryNode, rng: random.Random):
        self.pastry = pastry_node
        self._rng = rng
        self.hkey: bytes = rng.getrandbits(128).to_bytes(16, "big")
        self._tha_counter = 0
        self._keypair: RsaKeyPair | None = None
        #: anchors this node generated, deployed or not
        self.owned_thas: list[OwnedTha] = []
        #: bid -> reply bookkeeping
        self.pending_replies: dict[int, PendingReply] = {}
        #: hopid -> (ip, node_id) believed current tunnel hop node (§5)
        self.hint_cache: dict[int, tuple[str, int]] = {}

    @property
    def node_id(self) -> int:
        return self.pastry.node_id

    @property
    def ip(self) -> str:
        return self.pastry.ip

    @property
    def keypair(self) -> RsaKeyPair:
        """Node key pair, generated on first use (keygen is costly)."""
        if self._keypair is None:
            self._keypair = RsaKeyPair.generate(self._rng, bits=512)
        return self._keypair

    # -- THA generation -------------------------------------------------
    def new_tha(self, timestamp: int | None = None) -> OwnedTha:
        """Generate (not yet deploy) a fresh node-specific anchor."""
        self._tha_counter += 1
        ts = timestamp if timestamp is not None else self._tha_counter
        tha = generate_tha(
            node_identifier=self.ip.encode(),
            hkey=self.hkey,
            timestamp=ts,
            rng=self._rng,
        )
        self.owned_thas.append(tha)
        return tha

    def deployed_thas(self) -> list[OwnedTha]:
        return [t for t in self.owned_thas if t.deployed]

    def discard_tha(self, tha: OwnedTha) -> None:
        """Forget a local anchor record (after deleting it from the DHT)."""
        try:
            self.owned_thas.remove(tha)
        except ValueError:
            pass

    # -- reply bookkeeping (§4) -----------------------------------------
    def make_bid(self, sorted_alive_ids: list[int]) -> int:
        """Pick an identifier whose numerically closest node is *this* node.

        The initiator must be the replica root of ``bid`` so the reply's
        final leg lands on it.  We draw ids uniformly from the arc
        between this node and its ring neighbours' midpoints — every
        point of that arc is provably closest to this node.
        """
        from bisect import bisect_left

        ids = sorted_alive_ids
        n = len(ids)
        if n == 0:
            raise ValueError("no alive nodes")
        if n == 1:
            return self._rng.getrandbits(128) % ID_SPACE
        pos = bisect_left(ids, self.node_id)
        if pos >= n or ids[pos] != self.node_id:
            raise ValueError("node is not in the alive id list")
        pred = ids[(pos - 1) % n]
        succ = ids[(pos + 1) % n]
        ccw_gap = (self.node_id - pred) % ID_SPACE
        cw_gap = (succ - self.node_id) % ID_SPACE
        # Stay strictly inside the half-gaps (quarter-gap margin) so
        # ties cannot hand the bid to a neighbour.
        lo = (self.node_id - max(1, ccw_gap // 4)) % ID_SPACE
        span = max(1, ccw_gap // 4) + max(1, cw_gap // 4)
        return (lo + self._rng.randrange(span + 1)) % ID_SPACE

    def register_pending(self, pending: PendingReply) -> None:
        self.pending_replies[pending.bid] = pending

    def match_reply(self, bid: int) -> PendingReply | None:
        """Recognise an incoming last-leg reply by its bid."""
        return self.pending_replies.get(bid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TapNode({self.node_id:#034x})"
