"""Periodic tunnel refresh (§7.2, Figure 5).

The paper's conclusion: in a churning network where malicious nodes
accumulate THAs, users should periodically *reform* their tunnels from
fresh anchors; refreshed tunnels keep the corruption rate flat while
unrefreshed ones decay.  :class:`RefreshPolicy` encapsulates when to
refresh and performs the reform: deploy fresh THAs, form a replacement
tunnel, delete the old anchors (presenting their passwords).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import TapNode
from repro.core.tunnel import Tunnel


@dataclass
class RefreshPolicy:
    """Refresh a tunnel every ``interval`` time units (0 = never)."""

    interval: float = 1.0

    def due(self, tunnel: Tunnel, now: float) -> bool:
        if self.interval <= 0:
            return False
        return (now - tunnel.formed_at) >= self.interval

    def refresh(self, system, owner: TapNode, tunnel: Tunnel, now: float) -> Tunnel:
        """Reform the tunnel with fresh anchors and retire the old ones.

        ``system`` is a :class:`repro.core.system.TapSystem` (typed
        loosely to avoid an import cycle).  Old anchors are deleted
        from the DHT with their PW proofs; deletion failures (e.g. all
        holders dead) are tolerated — the anchors simply age out of
        relevance once no tunnel references them.
        """
        fresh = system.deploy_thas(owner, count=tunnel.length)
        new_tunnel = system.form_tunnel(
            owner,
            length=tunnel.length,
            use_hints=any(ip is not None for ip in tunnel.hint_ips),
            now=now,
        )
        for tha in tunnel.hops:
            system.deployer.delete(owner, tha)
        del fresh  # anchors are tracked on the owner; variable kept for clarity
        return new_tunnel
