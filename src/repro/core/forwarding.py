"""The tunneling engine: layered forwarding with replica fail-over.

This module walks messages through tunnels exactly as the deployed
system would:

* each hop is *located* by hopid — the message is routed (real Pastry
  routing over node-local state) to the node currently numerically
  closest to the hopid;
* that node looks up the THA **in its own local storage** (it holds a
  replica iff the replication manager placed one there) and peels one
  layer of encryption with the real symmetric key;
* if the original tunnel hop node failed, routing lands on the
  promoted replica candidate, which succeeds iff re-replication kept a
  live copy — TAP's fault-tolerance claim, exercised literally;
* with the §5 optimisation, the peeled layer carries an IP hint that is
  tried first, falling back to DHT routing when stale.

Reply traversal (§4) is the same walk except termination: the last
identifier is a ``bid`` recognised by the *initiator's* pending-reply
table, not by an exit tag — intermediate hops cannot tell the
difference.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

from repro.core.node import TapNode
from repro.core.tha import tha_value_decode
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.crypto.onion import build_onion, build_reply_onion, peel_layer
from repro.crypto.symmetric import CipherError
from repro.past.replication import ReplicatedStore
from repro.past.storage import StorageError
from repro.pastry.network import PastryNetwork, RoutingError
from repro.util.serialize import SerializationError


class TunnelBroken(RuntimeError):
    """The message could not complete the tunnel (hop unreachable/lost)."""


def record_links(record: "HopRecord") -> int:
    """Physical links charged to one hop record.

    Path edges plus one for a timed-out hint probe (whose link never
    enters ``underlying_path``); a *stale* probe's link is already the
    first path edge, so it is not charged twice.
    """
    return max(0, len(record.underlying_path) - 1) + (
        1 if record.hint_timeout else 0
    )


@dataclass
class HopRecord:
    """Trace of locating and traversing one tunnel hop."""

    hop_id: int
    hop_node: int | None
    underlying_path: list[int] = field(default_factory=list)
    via_hint: bool = False
    #: the hint did not directly serve the hop (stale or dead)
    hint_failed: bool = False
    #: the hinted node was dead/unknown: the probe timed out and its
    #: link does not appear in ``underlying_path``
    hint_timeout: bool = False
    #: True when the node serving this hop is not the one that was the
    #: replica root when the tunnel was formed (fail-over happened).
    promoted: bool = False
    route_failures: int = 0


@dataclass
class ForwardTrace:
    """Complete record of one tunnel traversal."""

    records: list[HopRecord] = field(default_factory=list)
    success: bool = False
    failure_reason: str | None = None
    destination: int | None = None
    delivered_payload: bytes | None = None
    #: underlying path of the final (tail -> destination) leg
    exit_path: list[int] = field(default_factory=list)

    @property
    def overlay_hops(self) -> int:
        """Tunnel hops traversed (the paper's tunnel length l)."""
        return len(self.records)

    @property
    def underlying_hops(self) -> int:
        """Total physical-link traversals, the latency driver of Fig. 6."""
        total = sum(record_links(r) for r in self.records)
        total += max(0, len(self.exit_path) - 1)
        return total

    def full_underlying_path(self) -> list[int]:
        """Concatenated node sequence, deduplicating junction nodes."""
        path: list[int] = []
        for rec in self.records:
            seg = rec.underlying_path
            if path and seg and path[-1] == seg[0]:
                seg = seg[1:]
            path.extend(seg)
        seg = self.exit_path
        if path and seg and path[-1] == seg[0]:
            seg = seg[1:]
        path.extend(seg)
        return path


class TunnelForwarder:
    """Walks onions through tunnels over live overlay state."""

    def __init__(
        self,
        network: PastryNetwork,
        store: ReplicatedStore,
        tap_registry: dict[int, TapNode],
        ip_index: dict[str, int] | None = None,
        metrics=None,
        event_trace=None,
        tracer=None,
    ):
        self.network = network
        self.store = store
        self.tap_registry = tap_registry
        #: simulated-IP -> node id (the §5 hint resolver)
        self.ip_index = ip_index if ip_index is not None else {}
        #: optional :class:`repro.obs.MetricsRegistry`
        self.metrics = metrics
        #: optional :class:`repro.obs.EventTrace` of per-hop events
        self.event_trace = event_trace
        #: optional :class:`repro.obs.SpanTracer` of causal span trees
        self.tracer = tracer
        #: optional :class:`repro.faults.SyncFaultInjector` — consulted
        #: per message/leg/hop when installed (see
        #: :meth:`repro.core.system.TapSystem.install_faults`)
        self.faults = None

    def _observe_trace(self, kind: str, trace: ForwardTrace) -> None:
        m = self.metrics
        if m is not None:
            m.counter(f"tap.{kind}.sends").inc()
            if trace.success:
                m.counter(f"tap.{kind}.delivered").inc()
                m.histogram(f"tap.{kind}.underlying_hops").observe(
                    trace.underlying_hops
                )
                m.histogram(f"tap.{kind}.overlay_hops").observe(
                    trace.overlay_hops
                )
            else:
                m.counter(f"tap.{kind}.broken").inc()
            for rec in trace.records:
                if rec.via_hint:
                    m.counter("tap.hint.hits").inc()
                elif rec.hint_timeout:
                    m.counter("tap.hint.timeouts").inc()
                elif rec.hint_failed:
                    m.counter("tap.hint.stale").inc()
                if rec.promoted:
                    m.counter("tap.hop.promotions").inc()
        if self.event_trace is not None:
            self.event_trace.record(
                f"tap.{kind}",
                success=trace.success,
                overlay_hops=trace.overlay_hops,
                underlying_hops=trace.underlying_hops,
                failure_reason=trace.failure_reason,
                hops=[
                    {
                        "hop_node": rec.hop_node,
                        "links": max(0, len(rec.underlying_path) - 1),
                        "via_hint": rec.via_hint,
                        "hint_failed": rec.hint_failed,
                        "hint_timeout": rec.hint_timeout,
                        "promoted": rec.promoted,
                        "route_failures": rec.route_failures,
                    }
                    for rec in trace.records
                ],
            )

    # ------------------------------------------------------------------
    # hop location
    # ------------------------------------------------------------------
    def _locate_hop(
        self,
        from_node: int,
        hop_id: int,
        hint_ip: str,
        record: HopRecord,
    ) -> int:
        """Find the current tunnel hop node for ``hop_id``.

        Tries the IP hint first (§5), then Pastry routing.  Returns the
        node id that will process the hop; fills the trace record.
        """
        tr = self.tracer
        start = from_node
        if hint_ip:
            probe = tr.start_span("hint.probe", observer="hop",
                                  src=from_node, links=1) if tr else None
            hinted = self.ip_index.get(hint_ip)
            if hinted is not None and self.network.is_alive(hinted):
                if self.store.storage_of(hinted).contains(hop_id):
                    record.via_hint = True
                    record.underlying_path = [from_node, hinted]
                    if probe is not None:
                        tr.finish(probe, outcome="hit", hinted=hinted)
                    return hinted
                # Alive but no longer a replica holder: it forwards the
                # message into the DHT from where it sits.
                record.hint_failed = True
                start = hinted
                record.underlying_path = [from_node, hinted]
                if probe is not None:
                    tr.finish(probe, outcome="stale", hinted=hinted)
            else:
                # Dead or unknown: the probe times out; re-route from
                # the current hop node.
                record.hint_failed = True
                record.hint_timeout = True
                if probe is not None:
                    tr.finish(probe, outcome="timeout")
        try:
            route = self.network.route(start, hop_id)
        except RoutingError as exc:
            raise TunnelBroken(f"routing to hop {hop_id:#x} failed: {exc}") from exc
        if not route.success:
            raise TunnelBroken(f"routing to hop {hop_id:#x} did not converge")
        record.route_failures = route.failures
        if record.underlying_path and record.underlying_path[-1] == route.path[0]:
            record.underlying_path.extend(route.path[1:])
        else:
            record.underlying_path.extend(route.path)
        return route.destination

    def _peel_at(self, node_id: int, hop_id: int, blob: bytes):
        """The hop node's work: local THA lookup + one decryption."""
        tr = self.tracer
        cm = tr.span("onion.peel", observer="hop",
                     hop_node=node_id) if tr else nullcontext()
        with cm as span:
            storage = self.store.storage_of(node_id)
            try:
                stored = storage.lookup(hop_id)
            except StorageError as exc:
                if span is not None:
                    span.set(outcome="anchor_lost")
                if self.metrics is not None:
                    self.metrics.counter("tap.peel.anchor_lost").inc()
                raise TunnelBroken(
                    f"node {node_id:#x} is closest to hop {hop_id:#x} "
                    f"but holds no THA replica (anchor lost)"
                ) from exc
            anchor = tha_value_decode(hop_id, stored.value)
            try:
                return peel_layer(anchor.key, blob)
            except (CipherError, SerializationError) as exc:
                if span is not None:
                    span.set(outcome="decrypt_failed")
                if self.metrics is not None:
                    self.metrics.counter("tap.peel.decrypt_failures").inc()
                raise TunnelBroken(
                    f"layer decryption failed at {node_id:#x}"
                ) from exc

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    @staticmethod
    def _check_injected(
        faults, msg_fault, src: int, hop_node: int, index: int, kind: str
    ) -> None:
        """Apply installed fault verdicts to one located hop.

        Raises :class:`TunnelBroken` for partitioned legs, in-transit
        corruption scheduled for this leg, and Byzantine behaviour of
        the serving hop node — the same observable outcome (the
        initiator times out) a deployed system would see.
        """
        why = faults.check_leg(src, hop_node)
        if why:
            raise TunnelBroken(f"fault injected: {why} {src:#x}->{hop_node:#x}")
        if msg_fault is not None and msg_fault.corrupt_at == index:
            faults.note("message.corrupt", kind=kind, leg=index)
            raise TunnelBroken(
                f"fault injected: message corrupted on leg {index}"
            )
        byz = faults.byzantine_action(hop_node)
        if byz is not None:
            raise TunnelBroken(f"byzantine hop {hop_node:#x}: {byz}")

    # ------------------------------------------------------------------
    # forward traversal
    # ------------------------------------------------------------------
    def send(
        self,
        initiator: TapNode,
        tunnel: Tunnel,
        destination_id: int,
        payload: bytes,
        deliver: Callable[[int, bytes], None] | None = None,
        parent=None,
        max_links: int | None = None,
    ) -> ForwardTrace:
        """Send ``payload`` to ``destination_id`` through ``tunnel``.

        The exit payload is handed to ``deliver(responder_node_id,
        payload)`` if given; the trace always carries it too.  Raises
        nothing: failures are reported in the trace (like a deployed
        system, the initiator only observes a timeout).

        ``parent`` optionally attaches the traversal's span tree under
        a caller-owned span (session round trip, retrieval, ...).
        ``max_links`` caps the underlying links spent on this attempt
        — the synchronous engine's per-attempt timeout budget (see
        :class:`repro.core.resilience.ResiliencePolicy`).
        """
        tr = self.tracer
        cm = tr.span(
            "tap.forward", parent=parent, observer="initiator",
            initiator=initiator.node_id, **tunnel.span_attrs(),
        ) if tr else nullcontext()
        with cm as span:
            trace = self._send_impl(
                initiator, tunnel, destination_id, payload, deliver,
                max_links=max_links,
            )
            if span is not None:
                span.set(
                    success=trace.success,
                    overlay_hops=trace.overlay_hops,
                    links=trace.underlying_hops,
                )
                if trace.failure_reason:
                    span.set(error=trace.failure_reason)
        self._observe_trace("forward", trace)
        return trace

    def _send_impl(
        self,
        initiator: TapNode,
        tunnel: Tunnel,
        destination_id: int,
        payload: bytes,
        deliver: Callable[[int, bytes], None] | None = None,
        max_links: int | None = None,
    ) -> ForwardTrace:
        blob = build_onion(tunnel.onion_layers(), destination_id, payload)
        trace = ForwardTrace()
        tr = self.tracer
        faults = self.faults
        msg_fault = (
            faults.draw_message("forward", len(tunnel.hops) + 1)
            if faults is not None else None
        )
        current = initiator.node_id
        hop_id = tunnel.hops[0].hop_id
        hint_ip = tunnel.hint_ips[0] or ""
        expected_roots = {
            h.hop_id: h.meta.get("formed_root") for h in tunnel.hops
        }
        for index in range(len(tunnel.hops) + 1):
            record = HopRecord(hop_id=hop_id, hop_node=None)
            trace.records.append(record)
            cm = tr.span(
                "tap.hop", observer="hop", hop_index=index
            ) if tr else nullcontext()
            with cm as hop_span:
                try:
                    if msg_fault is not None and msg_fault.drop_at == index:
                        faults.note("message.drop", kind="forward", leg=index)
                        raise TunnelBroken(
                            f"fault injected: message dropped on leg {index}"
                        )
                    hop_node = self._locate_hop(current, hop_id, hint_ip, record)
                    record.hop_node = hop_node
                    if faults is not None:
                        self._check_injected(
                            faults, msg_fault, current, hop_node, index, "forward"
                        )
                    formed_root = expected_roots.get(hop_id)
                    if formed_root is not None and formed_root != hop_node:
                        record.promoted = True
                    peeled = self._peel_at(hop_node, hop_id, blob)
                    if max_links is not None and trace.underlying_hops > max_links:
                        raise TunnelBroken(
                            f"attempt budget exhausted: {trace.underlying_hops} "
                            f"links > {max_links} (simulated timeout)"
                        )
                except TunnelBroken as exc:
                    trace.failure_reason = str(exc)
                    if hop_span is not None:
                        hop_span.set(error=trace.failure_reason,
                                     links=record_links(record))
                    return trace
                if hop_span is not None:
                    hop_span.set(
                        hop_node=hop_node,
                        links=record_links(record),
                        via_hint=record.via_hint,
                        promoted=record.promoted,
                    )
                if peeled.is_exit:
                    trace.destination = peeled.next_id
                    trace.delivered_payload = peeled.inner
                    try:
                        exit_route = self.network.route(hop_node, peeled.next_id)
                    except RoutingError as exc:
                        trace.failure_reason = f"exit routing failed: {exc}"
                        if hop_span is not None:
                            hop_span.set(error=trace.failure_reason)
                        return trace
                    if not exit_route.success:
                        trace.failure_reason = "exit routing did not converge"
                        if hop_span is not None:
                            hop_span.set(error=trace.failure_reason)
                        return trace
                    trace.exit_path = exit_route.path
                    if max_links is not None and trace.underlying_hops > max_links:
                        trace.failure_reason = (
                            f"attempt budget exhausted: {trace.underlying_hops} "
                            f"links > {max_links} (simulated timeout)"
                        )
                        if hop_span is not None:
                            hop_span.set(error=trace.failure_reason)
                        return trace
                    trace.success = True
                    if hop_span is not None:
                        hop_span.set(
                            is_exit=True,
                            links=record_links(record)
                            + max(0, len(exit_route.path) - 1),
                        )
                    if deliver is not None:
                        deliver(exit_route.destination, peeled.inner)
                    return trace
            current = hop_node
            hop_id = peeled.next_id
            hint_ip = peeled.ip_hint
            blob = peeled.inner
        trace.failure_reason = "onion deeper than tunnel length (malformed)"
        return trace

    # ------------------------------------------------------------------
    # reply traversal (§4)
    # ------------------------------------------------------------------
    def send_reply(
        self,
        responder_id: int,
        first_hop_id: int,
        reply_blob: bytes,
        payload: bytes,
        max_hops: int = 32,
        parent=None,
        expected_roots: dict[int, int] | None = None,
        max_links: int | None = None,
    ) -> ForwardTrace:
        """Route a reply payload back along a reply tunnel.

        The responder knows only ``first_hop_id`` (in the clear, §4)
        and the opaque ``reply_blob``.  Traversal ends when the node
        closest to the current identifier recognises it as one of its
        pending ``bid`` values — from the outside indistinguishable
        from one more hop.

        ``parent`` attaches the span tree under a caller-owned span.
        ``expected_roots`` maps hop ids to their formed-time replica
        roots (the reply tunnel's ``formed_root`` metadata, known only
        to the initiator who formed it); when given, fail-over is
        recorded as ``promoted`` exactly as on the forward path.
        """
        tr = self.tracer
        cm = tr.span(
            "tap.reply", parent=parent, observer="exit",
            responder=responder_id,
        ) if tr else nullcontext()
        with cm as span:
            trace = self._send_reply_impl(
                responder_id, first_hop_id, reply_blob, payload,
                max_hops, expected_roots, max_links,
            )
            if span is not None:
                span.set(
                    success=trace.success,
                    overlay_hops=trace.overlay_hops,
                    links=trace.underlying_hops,
                )
                if trace.failure_reason:
                    span.set(error=trace.failure_reason)
        self._observe_trace("reply", trace)
        return trace

    def _send_reply_impl(
        self,
        responder_id: int,
        first_hop_id: int,
        reply_blob: bytes,
        payload: bytes,
        max_hops: int = 32,
        expected_roots: dict[int, int] | None = None,
        max_links: int | None = None,
    ) -> ForwardTrace:
        trace = ForwardTrace()
        tr = self.tracer
        faults = self.faults
        # A reply walk traverses tunnel_length + 1 identifiers (the
        # hops plus the terminating bid); the responder cannot know the
        # length, so the drop leg is sampled over the typical walk.
        msg_fault = (
            faults.draw_message("reply", 4) if faults is not None else None
        )
        current = responder_id
        hop_id = first_hop_id
        blob = reply_blob
        hint_ip = ""
        for index in range(max_hops):
            record = HopRecord(hop_id=hop_id, hop_node=None)
            trace.records.append(record)
            cm = tr.span(
                "tap.hop", observer="hop", hop_index=index
            ) if tr else nullcontext()
            with cm as hop_span:
                try:
                    if msg_fault is not None and msg_fault.drop_at == index:
                        faults.note("message.drop", kind="reply", leg=index)
                        raise TunnelBroken(
                            f"fault injected: reply dropped on leg {index}"
                        )
                    hop_node = self._locate_hop(current, hop_id, hint_ip, record)
                    if faults is not None:
                        self._check_injected(
                            faults, msg_fault, current, hop_node, index, "reply"
                        )
                    if max_links is not None and trace.underlying_hops > max_links:
                        raise TunnelBroken(
                            f"attempt budget exhausted: {trace.underlying_hops} "
                            f"links > {max_links} (simulated timeout)"
                        )
                except TunnelBroken as exc:
                    trace.failure_reason = str(exc)
                    if hop_span is not None:
                        hop_span.set(error=trace.failure_reason,
                                     links=record_links(record))
                    return trace
                record.hop_node = hop_node
                if expected_roots is not None:
                    formed_root = expected_roots.get(hop_id)
                    if formed_root is not None and formed_root != hop_node:
                        record.promoted = True
                if hop_span is not None:
                    hop_span.set(
                        hop_node=hop_node,
                        links=record_links(record),
                        via_hint=record.via_hint,
                        promoted=record.promoted,
                    )

                tap = self.tap_registry.get(hop_node)
                if tap is not None:
                    pending = tap.match_reply(hop_id)
                    if pending is not None:
                        pending.completed = True
                        trace.success = True
                        trace.destination = hop_node
                        trace.delivered_payload = payload
                        if hop_span is not None:
                            # initiator-only knowledge; stripped from
                            # this hop-observer span on redacted export
                            hop_span.set(delivered=True, matched_bid=hop_id)
                        if pending.callback is not None:
                            pending.callback(payload)
                        return trace
                try:
                    peeled = self._peel_at(hop_node, hop_id, blob)
                except TunnelBroken as exc:
                    trace.failure_reason = str(exc)
                    if hop_span is not None:
                        hop_span.set(error=trace.failure_reason)
                    return trace
            current = hop_node
            hop_id = peeled.next_id
            hint_ip = peeled.ip_hint
            blob = peeled.inner
        trace.failure_reason = "reply exceeded max hops (fakeonion cycle?)"
        return trace


def build_request_onion(tunnel: Tunnel, destination_id: int, payload: bytes) -> bytes:
    """Convenience mirror of the §2 construction (used by tests)."""
    return build_onion(tunnel.onion_layers(), destination_id, payload)


def build_reply_blob(reply_tunnel: ReplyTunnel, fake_onion: bytes) -> tuple[int, bytes]:
    """Convenience mirror of the §4 reply construction (used by tests)."""
    return build_reply_onion(reply_tunnel.onion_layers(), reply_tunnel.bid, fake_onion)
