"""CPU-puzzle payment for THA deployment (§3.3's DoS countermeasure).

"Malicious nodes can simply try to flood the system with random THAs
so that real THAs cannot be inserted. ... The usual way of
counteracting this type of attack is to charge the node for deploying
a THA.  This charge can take the form of anonymous e-cash or a
CPU-based payment system that forces the node to solve some puzzles
before deploying a THA."

Hashcash-style client puzzles: the deployer must find a nonce such
that ``SHA-256(hopid || nonce)`` has ``difficulty`` leading zero bits.
Verification is one hash; solving costs ~2^difficulty hashes — an
asymmetric charge that scales a flooder's cost linearly with the
number of anchors it tries to plant while adding negligible latency
to honest deployments (which need a handful of anchors, not millions).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.util.serialize import pack_int


class PuzzleError(ValueError):
    """Raised on malformed puzzle parameters."""


def _digest(hop_id: int, nonce: int) -> bytes:
    return hashlib.sha256(
        b"tap-puzzle" + pack_int(hop_id) + nonce.to_bytes(8, "big")
    ).digest()


def _leading_zero_bits(data: bytes) -> int:
    bits = 0
    for byte in data:
        if byte == 0:
            bits += 8
            continue
        # count high zero bits of the first non-zero byte
        bits += 8 - byte.bit_length()
        break
    return bits


def solve_puzzle(hop_id: int, difficulty: int, max_attempts: int | None = None) -> int:
    """Find a nonce whose digest has ``difficulty`` leading zero bits.

    Expected work ~2^difficulty hashes.  ``max_attempts`` bounds the
    search (for tests); exceeding it raises :class:`PuzzleError`.
    """
    if difficulty < 0 or difficulty > 64:
        raise PuzzleError(f"difficulty {difficulty} outside [0, 64]")
    if difficulty == 0:
        return 0
    counter = itertools.count()
    for nonce in counter:
        if max_attempts is not None and nonce >= max_attempts:
            raise PuzzleError(
                f"no solution within {max_attempts} attempts at difficulty {difficulty}"
            )
        if _leading_zero_bits(_digest(hop_id, nonce)) >= difficulty:
            return nonce
    raise AssertionError("unreachable")


def verify_puzzle(hop_id: int, nonce: int, difficulty: int) -> bool:
    """One-hash verification of a claimed solution."""
    if difficulty <= 0:
        return True
    if nonce < 0 or nonce >= 1 << 64:
        return False
    return _leading_zero_bits(_digest(hop_id, nonce)) >= difficulty


@dataclass(frozen=True)
class PuzzlePolicy:
    """Deployment charging policy enforced by storing nodes.

    ``difficulty`` of 0 disables charging (the paper's default
    evaluation setting); 12–20 bits are practical anti-flood settings
    (milliseconds for an honest node, days for a mass flooder).
    """

    difficulty: int = 0

    @property
    def enabled(self) -> bool:
        return self.difficulty > 0

    def charge(self, hop_id: int) -> int:
        """The deployer's side: pay the CPU cost, get the proof."""
        return solve_puzzle(hop_id, self.difficulty)

    def admit(self, hop_id: int, nonce: int) -> bool:
        """The storing node's side: verify before inserting."""
        return verify_puzzle(hop_id, nonce, self.difficulty)

    def expected_work(self) -> int:
        """Expected hash evaluations per deployment."""
        return 1 << self.difficulty if self.enabled else 0
