"""Event-driven TAP execution over the discrete-event network.

The synchronous engine (:mod:`repro.core.forwarding`) walks tunnels as
a pure computation; this module runs the *same protocol* as timed
messages over :class:`repro.simnet.SimNetwork`:

* every overlay routing step is one physical message with the link's
  propagation + serialization delay;
* dead next-hops are discovered by **timeout** (a round-trip charge),
  after which the waiting node repairs its routing state and re-sends
  — the deployed-system behaviour Figure 6's latency model abstracts;
* §5 IP hints become real direct sends, with the timeout-then-DHT
  fallback of the paper.

The emulation is cross-validated against the analytic path model in
the tests: on a failure-free overlay, the emulated end-to-end latency
of a transfer equals ``path_transfer_time`` over the recorded path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.node import TapNode
from repro.core.tha import tha_value_decode
from repro.core.tunnel import Tunnel
from repro.crypto.onion import build_onion, peel_layer
from repro.crypto.symmetric import CipherError
from repro.past.replication import ReplicatedStore
from repro.past.storage import StorageError
from repro.pastry.network import PastryNetwork
from repro.simnet.events import Simulator
from repro.simnet.network import SimMessage, SimNetwork
from repro.simnet.topology import Topology
from repro.util.serialize import SerializationError

#: control-plane message size (headers, hop ids, key material)
CONTROL_BITS = 8 * 1024


@dataclass
class EmuTrace:
    """Observable record of one emulated tunnel transmission."""

    started_at: float
    finished_at: float | None = None
    delivered: bool = False
    failed_reason: str | None = None
    destination: int | None = None
    payload: bytes | None = None
    #: physical node sequence the message actually travelled
    path: list[int] = field(default_factory=list)
    timeouts: int = 0
    hint_failures: int = 0
    on_done: Callable[["EmuTrace"], None] | None = None
    #: root :class:`repro.obs.Span` of this transmission (tracing only)
    span: object | None = None

    @property
    def latency(self) -> float:
        if self.finished_at is None:
            raise ValueError("transmission still in flight")
        return self.finished_at - self.started_at

    def _finish(self, now: float, delivered: bool, reason: str | None = None) -> None:
        if self.finished_at is not None:
            # Already finished (e.g. the deadline fired while a leg was
            # still in flight): first verdict wins, late events are void.
            return
        self.finished_at = now
        self.delivered = delivered
        self.failed_reason = reason
        if self.on_done is not None:
            self.on_done(self)


@dataclass
class _Envelope:
    """In-flight protocol message (the SimNetwork payload)."""

    kind: str  # "tunnel" (onion toward hop key) | "exit" (payload toward dest)
    key: int  # DHT key currently being routed toward
    blob: bytes  # remaining onion (tunnel) / application payload (exit)
    size_bits: float
    trace: EmuTrace
    via_hint: bool = False  # current leg is a direct hinted send
    #: sim time / source of the physical leg currently in flight
    leg_start: float = 0.0
    leg_from: int = 0


class TapEmulation:
    """Attach a TAP deployment to a discrete-event network and run it."""

    def __init__(
        self,
        network: PastryNetwork,
        store: ReplicatedStore,
        tap_registry: dict[int, TapNode],
        ip_index: dict[str, int],
        topology: Topology | None = None,
        simulator: Simulator | None = None,
        metrics=None,
        tracer=None,
    ):
        self.network = network
        self.store = store
        self.tap_registry = tap_registry
        self.ip_index = ip_index
        #: optional :class:`repro.obs.MetricsRegistry`
        self.metrics = metrics
        #: optional :class:`repro.obs.SpanTracer`; spans carry the
        #: simulated clock (``set_sim``), one leg span per physical send
        self.tracer = tracer
        self.simulator = simulator or Simulator()
        self.topology = topology or Topology(seed=0)
        self.net = SimNetwork(self.simulator, self.topology)
        self.net.on_drop = self._on_drop
        #: message-observation taps: callables ``(now, src, dst,
        #: size_bits)`` invoked on every physical delivery.  A local
        #: eavesdropper or malicious node subscribes here; it sees
        #: traffic metadata only (the payload is layer-encrypted).
        self.taps: list[Callable[[float, int, int, float], None]] = []
        #: content taps: ``(now, node_id, destination_id, size_bits)``
        #: invoked when a node peels an *exit* layer and thereby learns
        #: the destination (§6: a malicious node "can read messages
        #: addressed to nodes under its control").
        self.content_taps: list[Callable[[float, int, int, float], None]] = []
        for nid in network.nodes:
            if network.nodes[nid].alive:
                self.net.attach(nid, self._handle)

    @classmethod
    def from_system(cls, system, topology: Topology | None = None) -> "TapEmulation":
        """Wrap a :class:`repro.core.system.TapSystem`."""
        return cls(
            system.network,
            system.store,
            system.tap_nodes,
            system.ip_index,
            topology=topology,
            metrics=getattr(system, "metrics", None),
            tracer=getattr(system, "tracer", None),
        )

    # ------------------------------------------------------------------
    # liveness bridge: keep SimNetwork in step with the overlay oracle
    # ------------------------------------------------------------------
    def fail_node(self, node_id: int, repair: bool = True) -> None:
        """Crash a node in both the overlay and the message fabric."""
        self.network.fail(node_id)
        if repair:
            self.store.on_fail(node_id)
        self.net.fail(node_id)

    def revive_node(self, node_id: int) -> None:
        """Bring a node back in both the overlay and the message
        fabric, reconciling its stale replicas (resurrection guard)."""
        self.network.revive(node_id)
        self.store.on_revive(node_id)
        self.net.attach(node_id, self._handle)

    def install_faults(self, plan, seeds, event_trace=None, metrics=None):
        """Arm the message fabric with a fault plan's simnet injector.

        Pair lossy plans with ``send_through_tunnel``'s ``deadline_s``
        so silently dropped messages surface as initiator timeouts.
        Returns the installed injector.
        """
        injector = plan.simnet_injector(
            seeds, event_trace=event_trace,
            metrics=metrics if metrics is not None else self.metrics,
        )
        self.net.faults = injector
        return injector

    def clear_faults(self) -> None:
        self.net.faults = None

    def _finish_trace(
        self, trace: EmuTrace, now: float, delivered: bool, reason: str | None = None
    ) -> None:
        if trace.finished_at is not None:
            return
        trace._finish(now, delivered, reason)
        if trace.span is not None and self.tracer:
            trace.span.set_sim(trace.started_at, now)
            self.tracer.finish(
                trace.span,
                delivered=delivered,
                links=max(0, len(trace.path) - 1),
                timeouts=trace.timeouts,
                hint_failures=trace.hint_failures,
                error=reason,
            )
            trace.span = None
        m = self.metrics
        if m is None:
            return
        m.counter("emu.transmissions").inc()
        if delivered:
            m.counter("emu.delivered").inc()
            m.histogram("emu.latency_s").observe(trace.latency)
            m.histogram("emu.physical_hops").observe(max(0, len(trace.path) - 1))
        else:
            m.counter("emu.failed").inc()
        if trace.timeouts:
            m.counter("emu.timeouts").inc(trace.timeouts)
        if trace.hint_failures:
            m.counter("emu.hint_failures").inc(trace.hint_failures)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def send_through_tunnel(
        self,
        initiator: TapNode,
        tunnel: Tunnel,
        destination_id: int,
        payload: bytes,
        size_bits: float | None = None,
        on_done: Callable[[EmuTrace], None] | None = None,
        deadline_s: float | None = None,
    ) -> EmuTrace:
        """Inject a tunnel transmission; returns its (live) trace.

        Run ``emulation.simulator.run()`` to drive it to completion.
        ``size_bits`` models the application payload size (e.g. the
        paper's 2 Mb file) independent of the literal bytes carried.
        ``deadline_s`` is the initiator's transmission timeout on the
        simulated clock: if the message has not been delivered by then
        the trace finishes failed (``deadline exceeded``) — the way an
        initiator observes a silently dropped message (see
        :meth:`install_faults`).
        """
        blob = build_onion(tunnel.onion_layers(), destination_id, payload)
        bits = size_bits if size_bits is not None else 8.0 * len(payload)
        trace = EmuTrace(started_at=self.simulator.now, on_done=on_done)
        if self.tracer:
            trace.span = self.tracer.start_trace(
                "emu.request", observer="initiator",
                initiator=initiator.node_id, **tunnel.span_attrs(),
            )
        trace.path.append(initiator.node_id)
        env = _Envelope(
            kind="tunnel",
            key=tunnel.hops[0].hop_id,
            blob=blob,
            size_bits=bits + CONTROL_BITS,
            trace=trace,
        )
        first_hint = tunnel.hint_ips[0]
        if deadline_s is not None:
            self.simulator.schedule(
                deadline_s, self._deadline_expired, trace
            )
        self._dispatch(initiator.node_id, env, hint_ip=first_hint or "")
        return trace

    def _deadline_expired(self, trace: EmuTrace) -> None:
        if trace.finished_at is None:
            if self.metrics is not None:
                self.metrics.counter("emu.deadline_exceeded").inc()
            self._finish_trace(
                trace, self.simulator.now, False, "deadline exceeded"
            )

    def inject_cover_traffic(
        self,
        rng,
        messages: int,
        size_bits: float,
        over_seconds: float,
    ) -> list[EmuTrace]:
        """Schedule dummy point-to-point messages (the §2 trade-off).

        Each dummy is a single physical send between two random alive
        nodes at a uniform random time in ``[now, now + over_seconds]``,
        sized like real traffic.  The paper *declines* cover traffic for
        its bandwidth cost; this hook exists to quantify that decision
        (see the timing-attack bench).
        """
        traces = []
        alive = self.net.addresses
        for _ in range(messages):
            src, dst = rng.sample(alive, 2)
            trace = EmuTrace(started_at=self.simulator.now)
            env = _Envelope(
                kind="cover", key=dst, blob=b"", size_bits=size_bits, trace=trace
            )
            delay = rng.random() * over_seconds
            self.simulator.schedule(delay, self.net.send, src, dst, env, size_bits)
            traces.append(trace)
        return traces

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    def _dispatch(self, from_node: int, env: _Envelope, hint_ip: str = "") -> None:
        """Send an envelope one physical step toward its key."""
        if env.trace.finished_at is not None:
            return  # trace already concluded (deadline exceeded)
        if hint_ip:
            hinted = self.ip_index.get(hint_ip)
            if hinted is not None and hinted != from_node:
                env.via_hint = True
                env.leg_start = self.simulator.now
                env.leg_from = from_node
                self.net.send(from_node, hinted, env, env.size_bits)
                return
            env.trace.hint_failures += 1
        env.via_hint = False
        node = self.network.nodes[from_node]
        nxt = node.next_hop(env.key)
        if nxt is None:
            self._finish_trace(env.trace, self.simulator.now, False, "routing dead end")
            return
        if nxt == from_node:
            self._deliver_local(from_node, env)
            return
        env.leg_start = self.simulator.now
        env.leg_from = from_node
        self.net.send(from_node, nxt, env, env.size_bits)

    def _handle(self, net: SimNetwork, src: int, dst: int, payload) -> None:
        env: _Envelope = payload
        for tap in self.taps:
            tap(self.simulator.now, src, dst, env.size_bits)
        if env.trace.finished_at is not None:
            return  # trace already concluded (deadline exceeded)
        if env.kind == "cover":
            # Dummy traffic: absorbed at the first recipient (it cannot
            # be distinguished from real traffic by outsiders, but it
            # carries no onion to process).
            self._finish_trace(env.trace, self.simulator.now, True)
            return
        env.trace.path.append(dst)
        if env.trace.span is not None and self.tracer:
            # one leg span per physical delivery, on the simulated clock
            self.tracer.add_span(
                "hint.direct" if env.via_hint else "dht.route",
                parent=env.trace.span,
                sim_start=env.leg_start, sim_end=self.simulator.now,
                observer="hop", src=env.leg_from, dst=dst, links=1,
            )
        if env.via_hint:
            env.via_hint = False
            # Hinted leg arrived: serve locally if we hold the anchor,
            # else fall back to DHT routing from here (§5).
            if env.kind == "tunnel" and self.store.storage_of(dst).contains(env.key):
                self._deliver_local(dst, env)
            else:
                env.trace.hint_failures += 1
                self._dispatch(dst, env)
            return
        node = self.network.nodes[dst]
        nxt = node.next_hop(env.key)
        if nxt == dst or nxt is None:
            self._deliver_local(dst, env)
        else:
            env.leg_start = self.simulator.now
            env.leg_from = dst
            self.net.send(dst, nxt, env, env.size_bits)

    def _on_drop(self, record: SimMessage) -> None:
        """A message hit a dead node: its sender times out and retries.

        The timeout charge is one round-trip to the dead neighbour —
        the sender waited for an ack that never came.
        """
        env: _Envelope = record.payload
        if env.trace.finished_at is not None:
            return  # trace already concluded (deadline exceeded)
        env.trace.timeouts += 1
        sender, dead = record.src, record.dst
        if env.via_hint:
            env.via_hint = False
            env.trace.hint_failures += 1
        self.network.discover_failure(sender, dead)
        delay = 2.0 * self.topology.latency(sender, dead)
        if env.trace.span is not None and self.tracer:
            # the round-trip the sender wasted waiting on the dead node
            self.tracer.add_span(
                "failover.repair", parent=env.trace.span,
                sim_start=env.leg_start, sim_end=self.simulator.now + delay,
                observer="hop", event="timeout", src=sender, links=1,
            )
        self.simulator.schedule(delay, self._dispatch, sender, env)

    # ------------------------------------------------------------------
    # TAP protocol logic at the responsible node
    # ------------------------------------------------------------------
    def _deliver_local(self, node_id: int, env: _Envelope) -> None:
        now = self.simulator.now
        if env.kind == "exit":
            env.trace.destination = node_id
            env.trace.payload = env.blob
            self._finish_trace(env.trace, now, True)
            return

        # kind == "tunnel": this node must hold the hop's anchor.
        storage = self.store.storage_of(node_id)
        try:
            stored = storage.lookup(env.key)
        except StorageError:
            self._finish_trace(
                env.trace, now, False,
                f"node {node_id:#x} closest to hop {env.key:#x} holds no replica",
            )
            return
        anchor = tha_value_decode(env.key, stored.value)
        try:
            peeled = peel_layer(anchor.key, env.blob)
        except (CipherError, SerializationError):
            self._finish_trace(env.trace, now, False, f"decryption failed at {node_id:#x}")
            return
        if env.trace.span is not None and self.tracer:
            # instantaneous on the simulated clock (crypto is not part
            # of the latency model), still attributed to the trace
            self.tracer.add_span(
                "onion.peel", parent=env.trace.span,
                sim_start=now, sim_end=now,
                observer="hop", hop_node=node_id,
            )

        if peeled.is_exit:
            for tap in self.content_taps:
                tap(now, node_id, peeled.next_id, env.size_bits)
            env.kind = "exit"
            env.key = peeled.next_id
            env.blob = peeled.inner
            self._dispatch(node_id, env)
        else:
            env.key = peeled.next_id
            env.blob = peeled.inner
            self._dispatch(node_id, env, hint_ip=peeled.ip_hint)
