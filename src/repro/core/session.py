"""Long-standing anonymous sessions — the paper's motivating use case.

§1: "current tunneling techniques have a problem in maintaining
long-standing remote login sessions, if a node on a tunnel fails.
However, TAP can support long-standing remote login sessions in the
face of node failures."

A :class:`TapSession` is a bidirectional request/response channel from
an initiator to a server node:

* requests travel through the session's forward tunnel and carry a
  per-request sequence number plus the reply tunnel blob (§4 style);
* responses return over the session's reply tunnel to the initiator's
  ``bid``;
* the session *maintains itself*: failed round trips trigger a health
  probe of both tunnels and an automatic re-form of whichever is
  broken (fresh anchors, old ones deleted), then a retry — the
  behaviour that keeps an SSH-like session alive across hop-node
  churn.

The server side is a :class:`SessionServer`: an application callback
bound to an overlay node that turns request payloads into responses.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

from repro.core.node import PendingReply, TapNode
from repro.core.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientReply,
    anchors_reachable,
)
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.crypto.asymmetric import RsaKeyPair
from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


@dataclass
class SessionStats:
    """Observable health record of one session."""

    requests: int = 0
    responses: int = 0
    failures: int = 0
    retries: int = 0
    tunnel_reforms: int = 0
    #: responses that needed at least one retry (recovered, not clean)
    recovered_responses: int = 0
    #: last-known-good fallbacks served in place of a hard failure
    #: (counted under ``failures``, not ``responses``)
    degraded_responses: int = 0
    #: hedged tunnel health probes launched after ambiguous failures
    health_probes: int = 0
    #: reforms driven by a tripped circuit breaker (route-around)
    proactive_reforms: int = 0
    breaker_trips: int = 0
    #: total (virtual) retry backoff waited, deterministic per seed
    backoff_wait_s: float = 0.0

    @property
    def availability(self) -> float:
        """Requests answered by a genuine round trip (retried or not)."""
        return self.responses / self.requests if self.requests else 1.0

    @property
    def effective_availability(self) -> float:
        """Requests answered *cleanly* — first attempt, no recovery.

        ``availability`` counts a retried-then-successful request as
        fully available; chaos reports use this property to separate
        clean round trips from recovered ones.
        """
        if not self.requests:
            return 1.0
        return (self.responses - self.recovered_responses) / self.requests


class SessionServer:
    """Application endpoint: answers session requests at its node."""

    def __init__(self, node_id: int, handler: Callable[[bytes], bytes]):
        self.node_id = node_id
        self.handler = handler
        self.served = 0

    def serve(self, payload: bytes) -> bytes | None:
        """Decode a request, run the application handler, return the
        encoded response (None if the request is malformed)."""
        try:
            seq_b, body = unpack_fields(payload, count=2)
            seq = unpack_int(seq_b, width=8)
        except SerializationError:
            return None
        self.served += 1
        return pack_fields(pack_int(seq, width=8), self.handler(body))


class TapSession:
    """A self-healing anonymous request/response channel."""

    def __init__(
        self,
        system,
        initiator: TapNode,
        server: SessionServer,
        tunnel_length: int = 3,
        use_hints: bool = False,
        max_retries: int = 2,
        policy: ResiliencePolicy | None = None,
    ):
        self.system = system
        self.initiator = initiator
        self.server = server
        self.tunnel_length = tunnel_length
        self.use_hints = use_hints
        self.max_retries = max_retries
        #: optional :class:`repro.core.resilience.ResiliencePolicy`;
        #: when set, :meth:`request` routes through
        #: :meth:`request_resilient` (backoff, breakers, hedged
        #: probes, graceful degradation) instead of the legacy
        #: reform-and-retry loop
        self.policy = policy
        self.stats = SessionStats()
        #: shares the system's :class:`repro.obs.SpanTracer` (if any),
        #: so round-trip spans nest under session.request roots
        self.tracer = getattr(system, "tracer", None)
        self._seq = 0
        self.forward: Tunnel = system.form_tunnel(
            initiator, tunnel_length, use_hints=use_hints
        )
        self.reply: ReplyTunnel = system.form_reply_tunnel(
            initiator, tunnel_length, use_hints=use_hints
        )
        self._fake_rng = system.seeds.pyrandom("session-fake", initiator.node_id)
        # A lightweight long-lived keypair identifies the session's
        # pending replies (never used for session payload encryption —
        # the tunnels' layered crypto covers that).
        self._pending_keys = RsaKeyPair.generate(
            system.seeds.pyrandom("session-keys", initiator.node_id), 512
        )
        self._backoff_rng = system.seeds.pyrandom(
            "session-backoff", initiator.node_id
        )
        threshold = policy.breaker_threshold if policy else 3
        self._breakers = {
            "forward": CircuitBreaker(threshold),
            "reply": CircuitBreaker(threshold),
        }
        #: last successful response (the graceful-degradation fallback)
        self._last_known_good: bytes | None = None
        self._prober = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _reform(self, which: str) -> None:
        """Replace a broken tunnel with a fresh one (new anchors)."""
        tr = self.tracer
        cm = tr.span(
            "session.reform", observer="initiator",
            initiator=self.initiator.node_id, which=which,
        ) if tr else nullcontext()
        with cm:
            self.stats.tunnel_reforms += 1
            self.system.deploy_thas(self.initiator, count=self.tunnel_length)
            if which == "forward":
                self.system.retire_tunnel(self.initiator, self.forward)
                self.forward = self.system.form_tunnel(
                    self.initiator, self.tunnel_length, use_hints=self.use_hints
                )
            else:
                self.system.retire_tunnel(self.initiator, self.reply)
                self.reply = self.system.form_reply_tunnel(
                    self.initiator, self.tunnel_length, use_hints=self.use_hints
                )

    def _round_trip(
        self, body: bytes, seq: int, max_links: int | None = None
    ) -> tuple[bytes | None, str | None]:
        """One attempt: request out, response back.

        Returns ``(response, broken)``: on failure the response is
        ``None`` and ``broken`` names the tunnel the failure implicates
        (``"forward"``/``"reply"``, or ``None`` for a stale/malformed
        response that implicates neither).  The caller owns the repair
        decision — the legacy path reforms immediately, the policy
        path diagnoses via hedged probes first.
        """
        fake = make_fake_onion(self._fake_rng)
        first_reply_hop, reply_blob = build_reply_onion(
            self.reply.onion_layers(), self.reply.bid, fake
        )
        received: list[bytes] = []
        pending = PendingReply(
            bid=self.reply.bid,
            temp_keypair=self._pending_keys,
            reply_hops=self.reply.hop_ids,
            callback=received.append,
        )
        self.initiator.register_pending(pending)

        request = pack_fields(pack_int(seq, width=8), body)

        forward_broken = reply_broken = False

        def deliver(node_id: int, payload: bytes) -> None:
            nonlocal reply_broken
            if node_id != self.server.node_id:
                return  # request surfaced at the wrong node: dropped
            response = self.server.serve(payload)
            if response is None:
                return
            reply_trace = self.system.forwarder.send_reply(
                self.server.node_id, first_reply_hop, reply_blob, response,
                max_links=max_links,
            )
            reply_broken = not reply_trace.success

        trace = self.system.forwarder.send(
            self.initiator,
            self.forward,
            destination_id=self.server.node_id,
            payload=request,
            deliver=deliver,
            max_links=max_links,
        )
        forward_broken = not trace.success
        self.initiator.pending_replies.pop(self.reply.bid, None)

        if forward_broken:
            return None, "forward"
        if reply_broken or not received:
            return None, "reply"
        try:
            seq_b, response_body = unpack_fields(received[0], count=2)
            if unpack_int(seq_b, width=8) != seq:
                return None, None  # stale/replayed response
        except SerializationError:
            return None, None
        return response_body, None

    # ------------------------------------------------------------------
    # resilience plumbing (policy mode)
    # ------------------------------------------------------------------
    def _probe_health(self) -> dict[str, bool]:
        """Hedged health probes: check both tunnels together.

        The forward tunnel gets a live loop-back probe through the
        real engine; the reply tunnel (whose ``bid`` a probe must not
        reveal) gets the initiator-local anchor-reachability check.
        """
        if self._prober is None:
            from repro.extensions.tunnel_probe import TunnelProber

            self._prober = TunnelProber(self.system)
        tr = self.tracer
        cm = tr.span(
            "session.probe", observer="initiator",
            initiator=self.initiator.node_id,
        ) if tr else nullcontext()
        with cm as span:
            forward_ok = self._prober.probe(
                self.initiator, self.forward
            ).functional
            reply_ok = anchors_reachable(
                self.system.network, self.system.store, self.reply.hops
            )
            self.stats.health_probes += 2
            if span is not None:
                span.set(forward=forward_ok, reply=reply_ok)
        return {"forward": forward_ok, "reply": reply_ok}

    def _handle_failure(
        self, broken: str | None, policy: ResiliencePolicy,
        reformed: list[str],
    ) -> None:
        """Diagnose one failed attempt and repair what it implicates.

        Probed-unhealthy tunnels are reformed immediately (reactive
        repair, the legacy behaviour).  Ambiguous failures — probes
        say healthy, so likely transient loss — only feed the
        breakers: retrying without churning tunnels is the right move,
        until consecutive mysteries trip a breaker and force a
        proactive route-around reform.
        """
        if policy.hedged_probes:
            health = self._probe_health()
            suspects = tuple(w for w, ok in health.items() if not ok)
        else:
            suspects = (broken,) if broken else ()
        for which in ("forward", "reply"):
            breaker = self._breakers[which]
            if suspects and which not in suspects:
                continue
            if breaker.record_failure():
                self.stats.breaker_trips += 1
            if which in suspects:
                self._reform(which)
                reformed.append(which)
                breaker.on_reform()
            elif breaker.state == "open" and policy.proactive_reform:
                self._reform(which)
                reformed.append(which)
                self.stats.proactive_reforms += 1
                breaker.on_reform()

    def request_resilient(self, body: bytes) -> ResilientReply:
        """Send one request under the session's resilience policy.

        Bounded retries with deterministic backoff, hedged health
        probes, per-tunnel circuit breaking with proactive reform, and
        (when ``policy.degraded_ok``) a last-known-good fallback with
        an explicit ``degraded`` flag instead of a hard failure.
        """
        policy = self.policy or ResiliencePolicy(max_retries=self.max_retries)
        self._seq += 1
        seq = self._seq
        self.stats.requests += 1
        tr = self.tracer
        cm = tr.span(
            "session.request", observer="initiator",
            initiator=self.initiator.node_id, seq=seq, policy=True,
        ) if tr else nullcontext()
        reformed: list[str] = []
        waited = 0.0
        with cm as span:
            for attempt in range(1 + policy.max_retries):
                if attempt:
                    self.stats.retries += 1
                    delay = policy.backoff_delay(attempt, self._backoff_rng)
                    waited += delay
                    self.stats.backoff_wait_s += delay
                response, broken = self._round_trip(
                    body, seq, max_links=policy.attempt_link_budget
                )
                if response is not None:
                    self.stats.responses += 1
                    if attempt:
                        self.stats.recovered_responses += 1
                    for breaker in self._breakers.values():
                        breaker.record_success()
                    self._last_known_good = response
                    if span is not None:
                        span.set(success=True, attempts=attempt + 1,
                                 recovered=attempt > 0)
                    return ResilientReply(
                        response, recovered=attempt > 0,
                        attempts=attempt + 1, waited_s=waited,
                        reformed=tuple(reformed),
                    )
                self._handle_failure(broken, policy, reformed)
            self.stats.failures += 1
            attempts = 1 + policy.max_retries
            if policy.degraded_ok and self._last_known_good is not None:
                self.stats.degraded_responses += 1
                if span is not None:
                    span.set(success=False, degraded=True, attempts=attempts)
                return ResilientReply(
                    self._last_known_good, degraded=True,
                    attempts=attempts, waited_s=waited,
                    reformed=tuple(reformed),
                )
            if span is not None:
                span.set(success=False, attempts=attempts)
            return ResilientReply(
                None, attempts=attempts, waited_s=waited,
                reformed=tuple(reformed),
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def request(self, body: bytes) -> bytes | None:
        """Send one request; retries (with tunnel repair) on failure.

        With a :class:`ResiliencePolicy` attached this delegates to
        :meth:`request_resilient` (note a degraded fallback surfaces
        here as stale-but-served bytes); without one it is the legacy
        reform-on-failure loop, byte-compatible with the pre-policy
        behaviour.
        """
        if self.policy is not None:
            return self.request_resilient(body).value
        self._seq += 1
        seq = self._seq
        self.stats.requests += 1
        tr = self.tracer
        cm = tr.span(
            "session.request", observer="initiator",
            initiator=self.initiator.node_id, seq=seq,
        ) if tr else nullcontext()
        with cm as span:
            for attempt in range(1 + self.max_retries):
                if attempt:
                    self.stats.retries += 1
                response, broken = self._round_trip(body, seq)
                if response is not None:
                    self.stats.responses += 1
                    if attempt:
                        self.stats.recovered_responses += 1
                    if span is not None:
                        span.set(success=True, attempts=attempt + 1)
                    return response
                if broken is not None:
                    self._reform(broken)
            self.stats.failures += 1
            if span is not None:
                span.set(success=False, attempts=1 + self.max_retries)
            return None

    def close(self, delete_anchors: bool = True) -> None:
        """Tear the session down, retiring (and deleting) its anchors."""
        self.system.retire_tunnel(self.initiator, self.forward, delete=delete_anchors)
        self.system.retire_tunnel(self.initiator, self.reply, delete=delete_anchors)
