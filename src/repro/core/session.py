"""Long-standing anonymous sessions — the paper's motivating use case.

§1: "current tunneling techniques have a problem in maintaining
long-standing remote login sessions, if a node on a tunnel fails.
However, TAP can support long-standing remote login sessions in the
face of node failures."

A :class:`TapSession` is a bidirectional request/response channel from
an initiator to a server node:

* requests travel through the session's forward tunnel and carry a
  per-request sequence number plus the reply tunnel blob (§4 style);
* responses return over the session's reply tunnel to the initiator's
  ``bid``;
* the session *maintains itself*: failed round trips trigger a health
  probe of both tunnels and an automatic re-form of whichever is
  broken (fresh anchors, old ones deleted), then a retry — the
  behaviour that keeps an SSH-like session alive across hop-node
  churn.

The server side is a :class:`SessionServer`: an application callback
bound to an overlay node that turns request payloads into responses.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

from repro.core.node import PendingReply, TapNode
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.crypto.asymmetric import RsaKeyPair
from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


@dataclass
class SessionStats:
    """Observable health record of one session."""

    requests: int = 0
    responses: int = 0
    failures: int = 0
    retries: int = 0
    tunnel_reforms: int = 0

    @property
    def availability(self) -> float:
        return self.responses / self.requests if self.requests else 1.0


class SessionServer:
    """Application endpoint: answers session requests at its node."""

    def __init__(self, node_id: int, handler: Callable[[bytes], bytes]):
        self.node_id = node_id
        self.handler = handler
        self.served = 0

    def serve(self, payload: bytes) -> bytes | None:
        """Decode a request, run the application handler, return the
        encoded response (None if the request is malformed)."""
        try:
            seq_b, body = unpack_fields(payload, count=2)
            seq = unpack_int(seq_b, width=8)
        except SerializationError:
            return None
        self.served += 1
        return pack_fields(pack_int(seq, width=8), self.handler(body))


class TapSession:
    """A self-healing anonymous request/response channel."""

    def __init__(
        self,
        system,
        initiator: TapNode,
        server: SessionServer,
        tunnel_length: int = 3,
        use_hints: bool = False,
        max_retries: int = 2,
    ):
        self.system = system
        self.initiator = initiator
        self.server = server
        self.tunnel_length = tunnel_length
        self.use_hints = use_hints
        self.max_retries = max_retries
        self.stats = SessionStats()
        #: shares the system's :class:`repro.obs.SpanTracer` (if any),
        #: so round-trip spans nest under session.request roots
        self.tracer = getattr(system, "tracer", None)
        self._seq = 0
        self.forward: Tunnel = system.form_tunnel(
            initiator, tunnel_length, use_hints=use_hints
        )
        self.reply: ReplyTunnel = system.form_reply_tunnel(
            initiator, tunnel_length, use_hints=use_hints
        )
        self._fake_rng = system.seeds.pyrandom("session-fake", initiator.node_id)
        # A lightweight long-lived keypair identifies the session's
        # pending replies (never used for session payload encryption —
        # the tunnels' layered crypto covers that).
        self._pending_keys = RsaKeyPair.generate(
            system.seeds.pyrandom("session-keys", initiator.node_id), 512
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _reform(self, which: str) -> None:
        """Replace a broken tunnel with a fresh one (new anchors)."""
        tr = self.tracer
        cm = tr.span(
            "session.reform", observer="initiator",
            initiator=self.initiator.node_id, which=which,
        ) if tr else nullcontext()
        with cm:
            self.stats.tunnel_reforms += 1
            self.system.deploy_thas(self.initiator, count=self.tunnel_length)
            if which == "forward":
                self.system.retire_tunnel(self.initiator, self.forward)
                self.forward = self.system.form_tunnel(
                    self.initiator, self.tunnel_length, use_hints=self.use_hints
                )
            else:
                self.system.retire_tunnel(self.initiator, self.reply)
                self.reply = self.system.form_reply_tunnel(
                    self.initiator, self.tunnel_length, use_hints=self.use_hints
                )

    def _round_trip(self, body: bytes, seq: int) -> bytes | None:
        """One attempt: request out, response back.  None on failure."""
        fake = make_fake_onion(self._fake_rng)
        first_reply_hop, reply_blob = build_reply_onion(
            self.reply.onion_layers(), self.reply.bid, fake
        )
        received: list[bytes] = []
        pending = PendingReply(
            bid=self.reply.bid,
            temp_keypair=self._pending_keys,
            reply_hops=self.reply.hop_ids,
            callback=received.append,
        )
        self.initiator.register_pending(pending)

        request = pack_fields(pack_int(seq, width=8), body)

        forward_broken = reply_broken = False

        def deliver(node_id: int, payload: bytes) -> None:
            nonlocal reply_broken
            if node_id != self.server.node_id:
                return  # request surfaced at the wrong node: dropped
            response = self.server.serve(payload)
            if response is None:
                return
            reply_trace = self.system.forwarder.send_reply(
                self.server.node_id, first_reply_hop, reply_blob, response
            )
            reply_broken = not reply_trace.success

        trace = self.system.forwarder.send(
            self.initiator,
            self.forward,
            destination_id=self.server.node_id,
            payload=request,
            deliver=deliver,
        )
        forward_broken = not trace.success
        self.initiator.pending_replies.pop(self.reply.bid, None)

        if forward_broken:
            self._reform("forward")
            return None
        if reply_broken or not received:
            self._reform("reply")
            return None
        try:
            seq_b, response_body = unpack_fields(received[0], count=2)
            if unpack_int(seq_b, width=8) != seq:
                return None  # stale/replayed response
        except SerializationError:
            return None
        return response_body

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def request(self, body: bytes) -> bytes | None:
        """Send one request; retries (with tunnel repair) on failure."""
        self._seq += 1
        seq = self._seq
        self.stats.requests += 1
        tr = self.tracer
        cm = tr.span(
            "session.request", observer="initiator",
            initiator=self.initiator.node_id, seq=seq,
        ) if tr else nullcontext()
        with cm as span:
            for attempt in range(1 + self.max_retries):
                if attempt:
                    self.stats.retries += 1
                response = self._round_trip(body, seq)
                if response is not None:
                    self.stats.responses += 1
                    if span is not None:
                        span.set(success=True, attempts=attempt + 1)
                    return response
            self.stats.failures += 1
            if span is not None:
                span.set(success=False, attempts=1 + self.max_retries)
            return None

    def close(self, delete_anchors: bool = True) -> None:
        """Tear the session down, retiring (and deleting) its anchors."""
        self.system.retire_tunnel(self.initiator, self.forward, delete=delete_anchors)
        self.system.retire_tunnel(self.initiator, self.reply, delete=delete_anchors)
