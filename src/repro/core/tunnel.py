"""Tunnels: ordered sequences of deployed THAs (§3.5, §4).

Forming a tunnel selects already-deployed anchors whose hopids
*scatter* across the id space — distinct leading digits — so that no
single node is likely to hold (replicas of) several hops of the same
tunnel.  Reply tunnels additionally carry a ``bid`` whose numerically
closest node is the initiator, plus a ``fakeonion`` so the tail hop
cannot recognise itself as last (§4).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.core.tha import OwnedTha
from repro.crypto.onion import OnionLayer
from repro.util.ids import id_digit


class TunnelFormationError(RuntimeError):
    """Raised when not enough suitable THAs are available."""


@dataclass
class Tunnel:
    """A forward (request) tunnel: first hop first.

    ``hint_ips`` optionally records the believed IP of each hop's
    tunnel hop node for the §5 optimisation (parallel list, ``None``
    entries mean no hint).
    """

    hops: list[OwnedTha]
    hint_ips: list[str | None] = field(default_factory=list)
    formed_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.hops:
            raise TunnelFormationError("a tunnel needs at least one hop")
        if not self.hint_ips:
            self.hint_ips = [None] * len(self.hops)
        if len(self.hint_ips) != len(self.hops):
            raise ValueError("hint_ips must parallel hops")

    @property
    def length(self) -> int:
        return len(self.hops)

    @property
    def hop_ids(self) -> list[int]:
        return [h.hop_id for h in self.hops]

    def onion_layers(self) -> list[OnionLayer]:
        """Per-hop layer descriptors for :func:`repro.crypto.onion.build_onion`."""
        return [
            OnionLayer(h.hop_id, h.anchor.key, ip or "")
            for h, ip in zip(self.hops, self.hint_ips)
        ]

    def span_attrs(self) -> dict:
        """Structure attributes for the traversal's root span — shape
        only (length, hint coverage), never hop identities."""
        return {
            "tunnel_length": self.length,
            "hinted_hops": sum(1 for ip in self.hint_ips if ip),
        }


@dataclass
class ReplyTunnel(Tunnel):
    """A reply tunnel ``T_r``; ``bid`` routes the last leg back to the
    initiator (the initiator's own node must be numerically closest to
    ``bid``)."""

    bid: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bid == 0:
            raise ValueError("ReplyTunnel requires a bid")


def select_scattered(
    candidates: list[OwnedTha],
    length: int,
    rng: random.Random,
    b_bits: int = 4,
    scatter_digits: int = 1,
) -> list[OwnedTha]:
    """Pick ``length`` deployed THAs with scattered hopid prefixes (§3.5).

    Anchors are grouped by their leading ``scatter_digits`` digits and
    the selection draws from distinct groups whenever possible,
    relaxing the constraint only when there are fewer groups than
    requested hops (small candidate pools).  Raises
    :class:`TunnelFormationError` if fewer than ``length`` deployed
    candidates exist at all.
    """
    pool = [t for t in candidates if t.deployed and not t.in_use]
    if len(pool) < length:
        raise TunnelFormationError(
            f"need {length} deployed unused THAs, have {len(pool)}"
        )

    def prefix(t: OwnedTha) -> tuple[int, ...]:
        return tuple(id_digit(t.hop_id, r, b_bits) for r in range(scatter_digits))

    groups: dict[tuple[int, ...], list[OwnedTha]] = {}
    for tha in pool:
        groups.setdefault(prefix(tha), []).append(tha)
    group_keys = list(groups)
    rng.shuffle(group_keys)

    chosen: list[OwnedTha] = []
    # Round-robin over prefix groups: one anchor per distinct prefix
    # first, then wrap around for the remainder.
    for _round in itertools.count():
        progressed = False
        for gk in group_keys:
            bucket = groups[gk]
            if _round < len(bucket):
                chosen.append(bucket[_round])
                progressed = True
                if len(chosen) == length:
                    rng.shuffle(chosen)
                    return chosen
        if not progressed:  # pragma: no cover - len(pool) >= length guards this
            raise TunnelFormationError("exhausted THA groups")
    raise AssertionError("unreachable")
