"""TAP core: fault-tolerant anonymous tunnels over Pastry/PAST.

The package implements the paper's contribution end to end:

* :mod:`repro.core.tha` — tunnel hop anchors ``<hopid, K, H(PW)>``,
  node-specific collision-free generation (§3.1–§3.2);
* :mod:`repro.core.deploy` — anonymous THA deployment over an
  Onion-Routing bootstrap path, deletion with PW proof (§3.3–§3.4);
* :mod:`repro.core.tunnel` — tunnel formation with prefix-scattered
  anchor selection (§3.5) and reply tunnels with ``bid``/fakeonion (§4);
* :mod:`repro.core.node` — per-node TAP state (key pair, hop handling);
* :mod:`repro.core.forwarding` — the tunneling engine: layered
  decryption hop by hop, replica fail-over on node failure, and the §5
  IP-hint optimisation with DHT fallback;
* :mod:`repro.core.retrieval` — §4's anonymous file retrieval
  application over forward + reply tunnels;
* :mod:`repro.core.refresh` — periodic tunnel refresh (§7.2, Fig. 5);
* :mod:`repro.core.system` — :class:`~repro.core.system.TapSystem`,
  the façade tying the overlay, storage, and TAP logic together.

Quickstart::

    from repro import TapSystem
    sys_ = TapSystem.bootstrap(num_nodes=200, seed=42)
    alice = sys_.tap_node(sys_.random_node_id())
    sys_.deploy_thas(alice, count=10)
    tunnel = sys_.form_tunnel(alice, length=3)
    trace = sys_.send(alice, tunnel, destination_id=..., payload=b"hi")
"""

from repro.core.tha import TunnelHopAnchor, OwnedTha, generate_tha, tha_value_encode, tha_value_decode
from repro.core.tunnel import Tunnel, ReplyTunnel, select_scattered, TunnelFormationError
from repro.core.node import TapNode
from repro.core.deploy import ThaDeployer, DeploymentError
from repro.core.forwarding import TunnelForwarder, ForwardTrace, HopRecord, TunnelBroken
from repro.core.retrieval import AnonymousRetrieval, RetrievalResult
from repro.core.refresh import RefreshPolicy
from repro.core.system import TapSystem
from repro.core.session import TapSession, SessionServer, SessionStats
from repro.core.puzzles import PuzzlePolicy, solve_puzzle, verify_puzzle
from repro.core.emulation import TapEmulation, EmuTrace

__all__ = [
    "TunnelHopAnchor",
    "OwnedTha",
    "generate_tha",
    "tha_value_encode",
    "tha_value_decode",
    "Tunnel",
    "ReplyTunnel",
    "select_scattered",
    "TunnelFormationError",
    "TapNode",
    "ThaDeployer",
    "DeploymentError",
    "TunnelForwarder",
    "ForwardTrace",
    "HopRecord",
    "TunnelBroken",
    "AnonymousRetrieval",
    "RetrievalResult",
    "RefreshPolicy",
    "TapSystem",
    "TapSession",
    "SessionServer",
    "SessionStats",
    "PuzzlePolicy",
    "solve_puzzle",
    "verify_puzzle",
    "TapEmulation",
    "EmuTrace",
]
