"""Initiator-side resilience policies for deployed-world faults.

The paper's fault story (§1, §4.2) is structural: tunnels named by
hopids survive hop-node failure because routing lands on a promoted
PAST replica.  A deployed initiator still needs *policy* on top of
that structure — lossy links, partitions and Byzantine hops produce
failures that replica fail-over alone cannot mask.  This module is
that policy layer, shared by :class:`repro.core.session.TapSession`
and :class:`repro.core.retrieval.AnonymousRetrieval`:

* **bounded retries** with exponential backoff and *deterministic*
  jitter (drawn from a :mod:`repro.util.rng` stream, so a chaos run
  replays bit-identically);
* **per-attempt budgets** — the synchronous engine has no clock, so a
  timeout is modelled as a cap on underlying links per attempt
  (``attempt_link_budget``, threaded into
  :meth:`repro.core.forwarding.TunnelForwarder.send`);
* a **per-tunnel circuit breaker** that trips after consecutive
  unattributed failures and routes around them via proactive tunnel
  reform;
* **hedged health probes** — on an ambiguous failure both tunnels are
  probed together rather than blindly reformed in sequence;
* **graceful degradation** — when every attempt fails, serve the
  last-known-good reply with an explicit ``degraded`` flag instead of
  surfacing a hard failure.

Everything here is pure initiator-local state: no global knowledge,
no wall clock, no hidden randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunable initiator-side resilience knobs (immutable, hashable).

    The defaults are tuned for the chaos plans shipped in
    :mod:`repro.faults.plan`: 3 retries absorb ~5% message loss to
    better than 99% availability while the breaker keeps reform churn
    bounded under persistent faults.
    """

    #: bounded retries per request (attempts = 1 + max_retries)
    max_retries: int = 3
    #: exponential backoff: base * factor^(attempt-1), capped
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    #: +/- fraction of deterministic jitter applied to each backoff
    jitter: float = 0.25
    #: per-attempt budget on underlying links (None = unbounded); the
    #: synchronous engine's analogue of a per-attempt timeout
    attempt_link_budget: int | None = None
    #: consecutive unattributed failures before a breaker trips open
    breaker_threshold: int = 3
    #: reform the routed-around tunnel when the breaker trips
    proactive_reform: bool = True
    #: probe both tunnels together on ambiguous failure (vs. blindly
    #: reforming whichever leg reported the error)
    hedged_probes: bool = True
    #: serve last-known-good replies (flagged degraded) on exhaustion
    degraded_ok: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.attempt_link_budget is not None and self.attempt_link_budget < 1:
            raise ValueError("attempt_link_budget must be >= 1 (or None)")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter.

        The jitter is drawn from the caller's seeded stream, so two
        runs with the same seed wait identical (virtual) times.
        """
        if attempt < 1:
            return 0.0
        base = min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


class CircuitBreaker:
    """Consecutive-failure breaker guarding one tunnel.

    ``closed`` (healthy) → ``open`` after ``threshold`` consecutive
    failures → ``half-open`` once the tunnel has been reformed (the
    route-around) → back to ``closed`` on the next success.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0

    def record_failure(self) -> bool:
        """Count one failure; True iff the breaker tripped open now."""
        self.consecutive_failures += 1
        if self.state != "open" and self.consecutive_failures >= self.threshold:
            self.state = "open"
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"

    def on_reform(self) -> None:
        """The guarded tunnel was replaced: probe the new one."""
        self.state = "half-open"
        self.consecutive_failures = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker(state={self.state}, "
                f"consecutive={self.consecutive_failures}, trips={self.trips})")


@dataclass
class ResilientReply:
    """Outcome of one policy-managed session request."""

    value: bytes | None
    #: the value is a last-known-good fallback, not a fresh round trip
    degraded: bool = False
    #: the round trip succeeded but needed at least one retry
    recovered: bool = False
    attempts: int = 1
    #: total (virtual) backoff waited across retries
    waited_s: float = 0.0
    #: tunnels reformed while serving this request
    reformed: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """A genuine, non-degraded response was obtained."""
        return self.value is not None and not self.degraded


@dataclass(frozen=True)
class ShareGatherPolicy:
    """Degraded-read knobs for k-of-n share gathering.

    Used by :meth:`repro.past.erasure.ErasureStore.fetch`: the reader
    needs ``k`` healthy shares, probes holders in proximity order, and
    hedges ``hedge`` extra probes beyond the first ``k`` so a single
    corrupt or slow share does not force a second gathering round.
    """

    #: extra holders probed beyond the first k (hedged probes)
    hedge: int = 1
    #: consecutive per-holder failures before its breaker opens
    breaker_threshold: int = 2

    def __post_init__(self) -> None:
        if self.hedge < 0:
            raise ValueError("hedge must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


class ShareHolderHealth:
    """Per-share-holder circuit breakers for degraded reads.

    One :class:`CircuitBreaker` per holder node: holders whose breaker
    is open (they recently served corrupt or missing shares) are
    probed *last*, so repeated degraded reads converge onto the
    healthy subset without ever abandoning a holder outright — an
    open breaker only deprioritises, because in a k-of-n gather a
    recovered holder may be the difference between decode and loss.
    """

    def __init__(self, policy: ShareGatherPolicy | None = None):
        self.policy = policy or ShareGatherPolicy()
        self.breakers: dict[int, CircuitBreaker] = {}

    def breaker(self, holder: int) -> CircuitBreaker:
        br = self.breakers.get(holder)
        if br is None:
            br = self.breakers[holder] = CircuitBreaker(
                self.policy.breaker_threshold
            )
        return br

    def is_open(self, holder: int) -> bool:
        br = self.breakers.get(holder)
        return br is not None and br.state == "open"

    def order(self, holders: list[int]) -> list[int]:
        """Stable re-ordering: open-breaker holders sink to the end."""
        return sorted(holders, key=self.is_open)

    def record(self, holder: int, ok: bool) -> None:
        """Feed one probe outcome back into the holder's breaker."""
        if ok:
            self.breaker(holder).record_success()
        else:
            self.breaker(holder).record_failure()


def anchors_reachable(network, store, hops) -> bool:
    """Object-level tunnel health: every hop anchor is served by the
    node routing currently reaches.

    This is the initiator-local health check used for reply tunnels
    (which cannot be loop-probed without revealing the ``bid``): the
    initiator formed the tunnel, so it knows the hop ids and may ask
    its own overlay view whether each anchor is still reachable.
    """
    for tha in hops:
        root = network.closest_alive(tha.hop_id)
        if root is None or not store.storage_of(root).contains(tha.hop_id):
            return False
    return True
