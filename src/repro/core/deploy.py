"""Anonymous THA deployment and deletion (§3.3–§3.4).

Before forming its first tunnel a node must place THAs into the DHT
*without linking them to itself*.  It builds an Onion-Routing path over
a prefix-diverse set of peers (Tarzan-style selection by IP prefix),
wraps one store-instruction per relay in that relay's public key, and
each relay performs the PAST insert for "its" THA.  If any relay on
the bootstrap path is dead the whole deployment aborts and is retried
over a fresh path — the paper argues this is acceptable because
deployment is not performance-critical.

Deletion presents the password ``PW``; replica holders hash it and
compare with the stored ``H(PW)`` (§3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.node import TapNode
from repro.core.puzzles import PuzzlePolicy
from repro.core.tha import OwnedTha, tha_value_decode, tha_value_encode
from repro.past.replication import ReplicatedStore, ReplicationError
from repro.pastry.network import PastryNetwork
from repro.util.serialize import pack_fields, pack_int, unpack_fields, unpack_int


class DeploymentError(RuntimeError):
    """Raised when deployment keeps failing after retries."""


@dataclass
class DeploymentReport:
    """Outcome of one deployment call."""

    deployed: list[OwnedTha] = field(default_factory=list)
    attempts: int = 0
    aborted_paths: int = 0
    relay_paths: list[list[int]] = field(default_factory=list)


def select_prefix_diverse(
    candidates: list[TapNode],
    count: int,
    rng: random.Random,
) -> list[TapNode]:
    """Tarzan-style relay selection: distinct IP first-octet prefixes.

    Falls back to allowing duplicate prefixes only when fewer distinct
    prefixes exist than relays requested.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if len(candidates) < count:
        raise DeploymentError(
            f"need {count} relay candidates, have {len(candidates)}"
        )
    pool = list(candidates)
    rng.shuffle(pool)
    chosen: list[TapNode] = []
    seen_prefixes: set[str] = set()
    for node in pool:
        prefix = node.ip.split(".", 1)[0]
        if prefix not in seen_prefixes:
            chosen.append(node)
            seen_prefixes.add(prefix)
            if len(chosen) == count:
                return chosen
    for node in pool:  # relax: prefixes exhausted
        if node not in chosen:
            chosen.append(node)
            if len(chosen) == count:
                return chosen
    raise DeploymentError("relay selection exhausted candidates")


class ThaDeployer:
    """Deploys and deletes THAs through bootstrap onion paths."""

    def __init__(
        self,
        network: PastryNetwork,
        store: ReplicatedStore,
        rng: random.Random,
        puzzle_policy: PuzzlePolicy | None = None,
    ):
        self.network = network
        self.store = store
        self.rng = rng
        #: §3.3 anti-flooding charge; disabled by default (the paper's
        #: evaluated configuration)
        self.puzzle_policy = puzzle_policy or PuzzlePolicy(difficulty=0)

    # ------------------------------------------------------------------
    # onion construction: one RSA layer per relay, one THA per relay
    # ------------------------------------------------------------------
    def _build_bootstrap_onion(
        self,
        relays: list[TapNode],
        thas: list[OwnedTha],
    ) -> bytes:
        """Innermost layer last: each relay sees (its THA, next blob)."""
        assert len(relays) == len(thas)
        blob = b""
        for relay, tha in zip(reversed(relays), reversed(thas)):
            # The deployer pays the CPU charge per anchor (§3.3); the
            # proof travels with the store instruction.
            nonce = self.puzzle_policy.charge(tha.hop_id)
            plain = pack_fields(
                pack_int(tha.hop_id),
                tha_value_encode(tha.anchor),
                pack_int(nonce, width=8),
                blob,
            )
            blob = relay.keypair.public.encrypt(plain, self.rng)
        return blob

    def _relay_process(self, relay: TapNode, blob: bytes) -> bytes:
        """One relay's work: decrypt its layer and insert its THA.

        The relay performs the DHT insert on the owner's behalf; the
        delete guard travels inside the value (``H(PW)``), so the store
        can enforce §3.4 without knowing the owner.
        """
        plain = relay.keypair.decrypt(blob)
        hop_id_bytes, value, nonce_bytes, rest = unpack_fields(plain, count=4)
        hop_id = unpack_int(hop_id_bytes)
        nonce = unpack_int(nonce_bytes, width=8)
        if not self.puzzle_policy.admit(hop_id, nonce):
            raise DeploymentError(
                f"puzzle proof rejected for hop {hop_id:#x} "
                f"(difficulty {self.puzzle_policy.difficulty})"
            )
        anchor = tha_value_decode(hop_id, value)
        try:
            self.store.insert(hop_id, value, delete_proof_hash=anchor.pw_hash)
        except ReplicationError:
            # A previous aborted path already placed this THA; the
            # re-insert is idempotent as long as the value matches.
            existing = self.store.fetch(hop_id)
            if existing.value != value:
                raise
        return rest

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def deploy(
        self,
        owner: TapNode,
        thas: list[OwnedTha],
        relay_candidates: list[TapNode],
        max_attempts: int = 5,
    ) -> DeploymentReport:
        """Deploy anchors over a fresh onion path, retrying on dead relays."""
        if not thas:
            raise ValueError("nothing to deploy")
        report = DeploymentReport()
        remaining = [t for t in thas if not t.deployed]
        while remaining:
            if report.attempts >= max_attempts:
                raise DeploymentError(
                    f"deployment failed after {report.attempts} attempts; "
                    f"{len(remaining)} THAs undeployed"
                )
            report.attempts += 1
            batch = list(remaining)
            candidates = [
                c for c in relay_candidates
                if c.node_id != owner.node_id and self.network.is_alive(c.node_id)
            ]
            relays = select_prefix_diverse(candidates, len(batch), self.rng)
            report.relay_paths.append([r.node_id for r in relays])
            blob = self._build_bootstrap_onion(relays, batch)
            try:
                for relay in relays:
                    if not self.network.is_alive(relay.node_id):
                        raise DeploymentError("relay died mid-path")
                    blob = self._relay_process(relay, blob)
            except (DeploymentError, ReplicationError):
                # Abort the whole path (paper: retry with another path).
                report.aborted_paths += 1
                continue
            for tha in batch:
                tha.deployed = True
                report.deployed.append(tha)
            remaining = [t for t in remaining if not t.deployed]
        return report

    def delete(self, owner: TapNode, tha: OwnedTha) -> bool:
        """Delete a deployed anchor by presenting its password (§3.4)."""
        ok = self.store.delete(tha.hop_id, tha.pw)
        if ok:
            tha.deployed = False
            owner.discard_tha(tha)
        return ok
