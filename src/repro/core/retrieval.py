"""Anonymous file retrieval — the §4 sample application, end to end.

Flow (all crypto real, all routing over live overlay state):

1. The initiator ``I`` forms a forward tunnel ``T_f`` and a reply
   tunnel ``T_r`` (with a ``bid`` closest to itself and a fakeonion).
2. ``I`` generates a temporary key pair ``K_I`` and sends
   ``{hid2,{hid3,{fid, K_I, T_r}K3}K2}K1`` into ``T_f``.
3. The tail reveals the request and routes it to the responder ``R``
   (the node closest to ``fid``), which holds the file replica.
4. ``R`` picks a fresh symmetric key ``K_f``, sends ``{f}K_f``,
   ``{K_f}K_I`` and the (first-hop-stripped) reply tunnel back.
5. Each reply hop peels one layer; the last identifier is ``bid``,
   recognised only by ``I``, which unwraps ``K_f`` and then ``f``.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.forwarding import ForwardTrace, TunnelForwarder
from repro.core.node import PendingReply, TapNode
from repro.core.resilience import ResiliencePolicy
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.crypto.asymmetric import RsaError, RsaKeyPair, RsaPublicKey
from repro.crypto.hashing import random_key, sha1_id
from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.crypto.symmetric import CipherError, SymmetricKey
from repro.past.replication import ReplicatedStore
from repro.past.storage import StorageError
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


@dataclass
class RetrievalResult:
    """Everything observable about one anonymous retrieval."""

    success: bool
    content: bytes | None
    forward_trace: ForwardTrace
    reply_trace: ForwardTrace | None
    fid: int
    failure_reason: str | None = None
    #: the content is a last-known-good fallback, not a fresh retrieval
    #: (success=True but every attempt actually failed)
    degraded: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def total_underlying_hops(self) -> int:
        hops = self.forward_trace.underlying_hops
        if self.reply_trace is not None:
            hops += self.reply_trace.underlying_hops
        return hops


class AnonymousRetrieval:
    """Publish files into PAST and retrieve them anonymously via TAP."""

    def __init__(
        self,
        forwarder: TunnelForwarder,
        store: ReplicatedStore,
        rng: random.Random,
        temp_key_bits: int = 512,
    ):
        self.forwarder = forwarder
        self.store = store
        self.rng = rng
        self.temp_key_bits = temp_key_bits
        #: fid -> last successfully retrieved content (the graceful-
        #: degradation cache behind :meth:`retrieve_resilient`)
        self._last_known_good: dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # publishing (plain PAST)
    # ------------------------------------------------------------------
    def publish(self, content: bytes, name: bytes | None = None) -> int:
        """Insert a file; its fid is the hash of its name/content."""
        fid = sha1_id(name if name is not None else content)
        self.store.insert(fid, content)
        return fid

    # ------------------------------------------------------------------
    # the request message (what rides inside the forward onion)
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_request(fid: int, temp_public: RsaPublicKey, first_reply_hop: int, reply_blob: bytes) -> bytes:
        return pack_fields(
            pack_int(fid),
            temp_public.to_bytes(),
            pack_int(first_reply_hop),
            reply_blob,
        )

    @staticmethod
    def _decode_request(payload: bytes) -> tuple[int, RsaPublicKey, int, bytes]:
        fid_b, key_b, hop_b, blob = unpack_fields(payload, count=4)
        n = int.from_bytes(key_b[:-4], "big")
        e = int.from_bytes(key_b[-4:], "big")
        return unpack_int(fid_b), RsaPublicKey(n, e), unpack_int(hop_b), blob

    # ------------------------------------------------------------------
    # the responder's work
    # ------------------------------------------------------------------
    def _responder_serve(self, responder_id: int, payload: bytes) -> ForwardTrace | None:
        """R: look up the file, encrypt, send down the reply tunnel."""
        tr = self.forwarder.tracer
        cm = tr.span(
            "tap.respond", observer="exit", responder=responder_id
        ) if tr else nullcontext()
        with cm as span:
            try:
                fid, temp_public, first_hop, reply_blob = self._decode_request(payload)
            except (SerializationError, RsaError, ValueError):
                if span is not None:
                    span.set(error="malformed request")
                return None
            if span is not None:
                span.set(fid=fid)
            try:
                stored = self.store.storage_of(responder_id).lookup(fid)
            except StorageError:
                if span is not None:
                    span.set(error="file not held locally")
                return None
            content: bytes = stored.value
            k_f = SymmetricKey(random_key(self.rng))
            sealed_file = k_f.seal(content)
            wrapped_key = temp_public.encrypt(k_f.key_bytes, self.rng)
            reply_payload = pack_fields(sealed_file, wrapped_key)
            return self.forwarder.send_reply(
                responder_id, first_hop, reply_blob, reply_payload
            )

    # ------------------------------------------------------------------
    # the initiator's retrieval
    # ------------------------------------------------------------------
    def retrieve(
        self,
        initiator: TapNode,
        fid: int,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
    ) -> RetrievalResult:
        tr = self.forwarder.tracer
        cm = tr.span(
            "tap.request", observer="initiator",
            initiator=initiator.node_id, fid=fid,
        ) if tr else nullcontext()
        with cm as span:
            result = self._retrieve_impl(
                initiator, fid, forward_tunnel, reply_tunnel
            )
            if span is not None:
                span.set(success=result.success)
                if result.failure_reason:
                    span.set(error=result.failure_reason)
        return result

    def retrieve_resilient(
        self,
        initiator: TapNode,
        fid: int,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
        policy: ResiliencePolicy | None = None,
        reform=None,
    ) -> RetrievalResult:
        """Retrieve under a resilience policy: bounded retries with
        deterministic backoff and a last-known-good fallback.

        ``reform(failure_reason) -> (forward_tunnel, reply_tunnel)``,
        when given, is invoked between failed attempts so the caller
        can swap in fresh tunnels (the initiator owns tunnel formation,
        not this engine).  On exhaustion with ``policy.degraded_ok``,
        a previously retrieved copy of ``fid`` is served with
        ``degraded=True`` instead of a hard failure.

        The result's ``meta`` carries the resilience accounting:
        ``attempts``, ``recovered`` and (virtual) ``waited_s``.
        """
        policy = policy or ResiliencePolicy()
        waited = 0.0
        result: RetrievalResult | None = None
        for attempt in range(1 + policy.max_retries):
            if attempt:
                waited += policy.backoff_delay(attempt, self.rng)
            result = self.retrieve(initiator, fid, forward_tunnel, reply_tunnel)
            if result.success:
                self._last_known_good[fid] = result.content
                result.meta.update(
                    attempts=attempt + 1, recovered=attempt > 0,
                    waited_s=waited,
                )
                return result
            if reform is not None and attempt < policy.max_retries:
                forward_tunnel, reply_tunnel = reform(result.failure_reason)
        fallback = self._last_known_good.get(fid)
        if policy.degraded_ok and fallback is not None:
            result = RetrievalResult(
                True, fallback, result.forward_trace, result.reply_trace,
                fid, failure_reason=result.failure_reason, degraded=True,
            )
        result.meta.update(
            attempts=1 + policy.max_retries, recovered=False, waited_s=waited,
        )
        return result

    def _retrieve_impl(
        self,
        initiator: TapNode,
        fid: int,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
    ) -> RetrievalResult:
        temp_keys = RsaKeyPair.generate(self.rng, self.temp_key_bits)
        fake = make_fake_onion(self.rng)
        first_reply_hop, reply_blob = build_reply_onion(
            reply_tunnel.onion_layers(), reply_tunnel.bid, fake
        )

        received: list[bytes] = []
        pending = PendingReply(
            bid=reply_tunnel.bid,
            temp_keypair=temp_keys,
            reply_hops=reply_tunnel.hop_ids,
            callback=received.append,
        )
        initiator.register_pending(pending)

        request = self._encode_request(fid, temp_keys.public, first_reply_hop, reply_blob)

        reply_traces: list[ForwardTrace] = []

        def deliver(responder_id: int, payload: bytes) -> None:
            reply = self._responder_serve(responder_id, payload)
            if reply is not None:
                reply_traces.append(reply)

        forward = self.forwarder.send(
            initiator, forward_tunnel, destination_id=fid, payload=request, deliver=deliver
        )
        reply = reply_traces[0] if reply_traces else None

        if not forward.success:
            return RetrievalResult(False, None, forward, reply, fid,
                                   failure_reason=f"forward: {forward.failure_reason}")
        if reply is None:
            return RetrievalResult(False, None, forward, None, fid,
                                   failure_reason="responder could not serve the request")
        if not reply.success or not received:
            reason = reply.failure_reason or "reply never reached initiator"
            return RetrievalResult(False, None, forward, reply, fid,
                                   failure_reason=f"reply: {reason}")

        try:
            sealed_file, wrapped_key = unpack_fields(received[0], count=2)
            k_f = SymmetricKey(temp_keys.decrypt(wrapped_key))
            content = k_f.open(sealed_file)
        except (SerializationError, RsaError, CipherError) as exc:
            return RetrievalResult(False, None, forward, reply, fid,
                                   failure_reason=f"decryption: {exc}")
        finally:
            initiator.pending_replies.pop(reply_tunnel.bid, None)
        return RetrievalResult(True, content, forward, reply, fid)
