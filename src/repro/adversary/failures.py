"""Simultaneous node failure model (Figure 2's scenario).

"We consider a 10^4 node network that forms 5,000 tunnels, and
randomly choose a fraction p of nodes that fail/leave.  After node
failures/leaves, we measure the fraction of tunnels that could not
function."  The failures are *simultaneous*: no repair runs in
between, so an object is lost iff its entire replica set is inside
the failed set.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass


@dataclass
class FailureModel:
    """Samples and applies uniform simultaneous failures.

    ``strict=True`` turns the silent zero-victim edge case (a positive
    fraction that rounds to zero victims) into a :class:`ValueError`
    instead of a :class:`RuntimeWarning`.
    """

    fraction: float
    strict: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"failure fraction {self.fraction} outside [0, 1]")

    def sample(self, node_ids: list[int], rng: random.Random) -> list[int]:
        """Choose ``round(p*N)`` distinct victims.

        A positive ``fraction`` that rounds to zero victims would make
        the experiment silently measure the zero-failure regime while
        reporting ``p > 0`` — that is flagged loudly (warn, or raise
        when ``strict``) rather than swallowed.
        """
        count = round(self.fraction * len(node_ids))
        if count == 0:
            if self.fraction > 0.0 and node_ids:
                msg = (
                    f"failure fraction {self.fraction} rounds to 0 victims "
                    f"for a population of {len(node_ids)} — the measurement "
                    f"would silently be the zero-failure regime"
                )
                if self.strict:
                    raise ValueError(msg)
                warnings.warn(msg, RuntimeWarning, stacklevel=2)
            return []
        return rng.sample(node_ids, count)

    def apply(self, system, rng: random.Random, repair_after: bool = False) -> list[int]:
        """Fail a sampled fraction of a :class:`TapSystem`'s nodes.

        ``repair_after=False`` is the Figure-2 regime: the measurement
        happens before the replication manager can re-replicate, so
        fault tolerance comes purely from surviving replicas.

        Returns the nodes this call actually failed: victims that were
        already dead when the failure fires (possible when the caller
        samples from a stale population) are skipped, so the returned
        list is trustworthy for accounting in both repair regimes.
        """
        victims = self.sample(list(system.network.alive_ids), rng)
        failed = [v for v in victims if system.network.is_alive(v)]
        system.fail_nodes(failed, repair_after=repair_after)
        return failed


def tunnel_functions(system, tunnel) -> bool:
    """Does a tunnel still function after failures (object-level)?

    Each hop functions iff some live node holds its THA *and* that
    node is the one routing reaches (the closest alive).  Mirrors what
    :class:`repro.core.forwarding.TunnelForwarder` would discover, but
    without cryptographic traversal — used for bulk measurements.
    """
    for tha in tunnel.hops:
        holders = [
            h for h in system.store.holders(tha.hop_id)
            if system.network.is_alive(h)
        ]
        if not holders:
            return False
        root = system.network.closest_alive(tha.hop_id)
        if root not in holders:
            # The node routing reaches has no replica: the anchor is
            # unreachable even though stale copies exist elsewhere.
            return False
    return True
