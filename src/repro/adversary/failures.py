"""Simultaneous node failure model (Figure 2's scenario).

"We consider a 10^4 node network that forms 5,000 tunnels, and
randomly choose a fraction p of nodes that fail/leave.  After node
failures/leaves, we measure the fraction of tunnels that could not
function."  The failures are *simultaneous*: no repair runs in
between, so an object is lost iff its entire replica set is inside
the failed set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class FailureModel:
    """Samples and applies uniform simultaneous failures."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"failure fraction {self.fraction} outside [0, 1]")

    def sample(self, node_ids: list[int], rng: random.Random) -> list[int]:
        """Choose ``round(p*N)`` distinct victims."""
        count = round(self.fraction * len(node_ids))
        if count == 0:
            return []
        return rng.sample(node_ids, count)

    def apply(self, system, rng: random.Random, repair_after: bool = False) -> list[int]:
        """Fail a sampled fraction of a :class:`TapSystem`'s nodes.

        ``repair_after=False`` is the Figure-2 regime: the measurement
        happens before the replication manager can re-replicate, so
        fault tolerance comes purely from surviving replicas.
        """
        victims = self.sample(list(system.network.alive_ids), rng)
        system.fail_nodes(victims, repair_after=repair_after)
        return victims


def tunnel_functions(system, tunnel) -> bool:
    """Does a tunnel still function after failures (object-level)?

    Each hop functions iff some live node holds its THA *and* that
    node is the one routing reaches (the closest alive).  Mirrors what
    :class:`repro.core.forwarding.TunnelForwarder` would discover, but
    without cryptographic traversal — used for bulk measurements.
    """
    for tha in tunnel.hops:
        holders = [
            h for h in system.store.holders(tha.hop_id)
            if system.network.is_alive(h)
        ]
        if not holders:
            return False
        root = system.network.closest_alive(tha.hop_id)
        if root not in holders:
            # The node routing reaches has no replica: the anchor is
            # unreachable even though stale copies exist elsewhere.
            return False
    return True
