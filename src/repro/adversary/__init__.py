"""Adversary and failure models (paper §6–§7).

* :mod:`repro.adversary.failures` — simultaneous node failures (Fig 2);
* :mod:`repro.adversary.collusion` — colluding malicious nodes that
  pool every THA replicated onto any of them (Figs 3–5);
* :mod:`repro.adversary.churn` — the benign leave/join process under
  which the adversary accumulates THAs over time (Fig 5).

These are the object-level models operating on a live
:class:`~repro.core.system.TapSystem`; the paper-scale vectorised
equivalents live in :mod:`repro.experiments` on top of
:mod:`repro.analysis.idspace` and are cross-validated against these.
"""

from repro.adversary.failures import FailureModel
from repro.adversary.collusion import ColludingAdversary
from repro.adversary.churn import ChurnProcess

__all__ = ["FailureModel", "ColludingAdversary", "ChurnProcess"]
