"""End-to-end timing analysis (the §6 "case 2" attack).

An adversary controlling both the *first* and the *tail* tunnel hop
node of a tunnel can correlate a message entering the tunnel with the
corresponding exit toward the destination: same apparent size, exit
shortly after entry.  The paper argues the attack is weak in TAP —
the first hop cannot prove it is first — and declines cover traffic
despite it being the standard countermeasure, citing bandwidth cost.

This module quantifies both sides on the event-driven emulation:

* :class:`TimingAnalysisAdversary` subscribes to the emulation's
  message taps at its coalition's nodes and emits (initiator,
  destination) *claims* from size-and-window correlation;
* :func:`evaluate_claims` scores precision/recall against ground
  truth — run with and without cover traffic (and with size padding)
  to see what each defence buys and costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimingEvent:
    """One observed physical delivery at a coalition node."""

    time: float
    src: int
    dst: int
    size_bits: float


@dataclass(frozen=True)
class RevealEvent:
    """An exit layer peeled at a coalition node: destination learned."""

    time: float
    node: int
    destination_key: int
    size_bits: float


@dataclass(frozen=True)
class Claim:
    """The adversary's assertion: ``initiator`` talked to ``destination``."""

    initiator: int
    destination: int
    entry_time: float
    exit_time: float


@dataclass(frozen=True)
class TransmissionTruth:
    """Ground truth for one tunnel transmission (scoring only)."""

    initiator: int
    destination: int
    started_at: float
    finished_at: float


@dataclass
class TimingAnalysisAdversary:
    """Coalition that records traffic at its nodes and correlates.

    ``resolve_destination`` maps a revealed destination *key* to the
    node that will serve it — any DHT participant can compute this, so
    granting it to the adversary adds no power beyond §6's model.
    """

    malicious_ids: set[int]
    resolve_destination: "callable" = staticmethod(lambda key: key)
    events: list[TimingEvent] = field(default_factory=list)
    reveals: list[RevealEvent] = field(default_factory=list)

    def tap(self, now: float, src: int, dst: int, size_bits: float) -> None:
        """Metadata tap: wire into ``TapEmulation.taps``."""
        if dst in self.malicious_ids or src in self.malicious_ids:
            self.events.append(TimingEvent(now, src, dst, size_bits))

    def content_tap(self, now: float, node: int, destination_key: int, size_bits: float) -> None:
        """Exit-layer tap: wire into ``TapEmulation.content_taps``.

        Fires for every exit peel in the system; only coalition nodes'
        own peels are retained (honest nodes don't leak)."""
        if node in self.malicious_ids:
            self.reveals.append(RevealEvent(now, node, destination_key, size_bits))

    # ------------------------------------------------------------------
    def claims(self, window_seconds: float, size_tolerance_bits: float = 0.0) -> list[Claim]:
        """Correlate tunnel *entries* with *exit reveals*.

        An entry is a delivery **to** a coalition node from a
        non-coalition node — the sender is the initiator iff that
        coalition node happens to be the first hop (§6: "it can only
        guess that its immediate predecessor is the initiator"; with
        the §5 direct-send optimisation the physical predecessor *is*
        the previous hop or the initiator).  An exit reveal pins the
        destination exactly (the tail reads it).  Pairing is
        reveal-centric: for each reveal, the **earliest** unused entry
        of matching size within the window — the message touched the
        first coalition node before any later one, so the earliest
        touchpoint is the best initiator candidate.
        """
        entries = sorted(
            (
                e for e in self.events
                if e.dst in self.malicious_ids and e.src not in self.malicious_ids
            ),
            key=lambda e: e.time,
        )
        out: list[Claim] = []
        used: set[int] = set()
        for reveal in sorted(self.reveals, key=lambda e: e.time):
            for idx, entry in enumerate(entries):
                if idx in used:
                    continue
                if entry.time > reveal.time:
                    break
                if reveal.time - entry.time > window_seconds:
                    continue
                if abs(reveal.size_bits - entry.size_bits) > size_tolerance_bits:
                    continue
                out.append(
                    Claim(
                        entry.src,
                        self.resolve_destination(reveal.destination_key),
                        entry.time,
                        reveal.time,
                    )
                )
                used.add(idx)
                break
        return out

    def reset(self) -> None:
        self.events.clear()
        self.reveals.clear()


def evaluate_claims(
    claims: list[Claim],
    truths: list[TransmissionTruth],
) -> dict[str, float]:
    """Precision/recall of (initiator, destination) identification.

    A claim is correct iff some transmission matches both endpoints and
    the claim's entry/exit times fall inside that transmission's span.
    """
    def matches(claim: Claim, truth: TransmissionTruth) -> bool:
        return (
            claim.initiator == truth.initiator
            and claim.destination == truth.destination
            and truth.started_at - 1e-9 <= claim.entry_time
            and claim.exit_time <= truth.finished_at + 1e-9
        )

    correct = sum(
        1 for claim in claims if any(matches(claim, t) for t in truths)
    )
    identified = sum(
        1 for truth in truths if any(matches(c, truth) for c in claims)
    )
    return {
        "claims": float(len(claims)),
        "precision": correct / len(claims) if claims else 0.0,
        "recall": identified / len(truths) if truths else 0.0,
    }
