"""Colluding malicious nodes pooling THA knowledge (§6).

Every THA replicated onto any colluding node is disclosed to the whole
coalition, permanently.  The adversary corrupts a tunnel when it knows
the THAs of *all* hops (case 1); it can alternatively run timing
analysis when it controls both the first and the tail tunnel hop node
(case 2) — the paper argues case 2 is weak (the first hop cannot be
recognised as first) and evaluates case 1, as do we; case 2 is exposed
for the extension benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tunnel import Tunnel


@dataclass
class ColludingAdversary:
    """Tracks coalition membership and accumulated THA knowledge."""

    malicious_ids: set[int]
    known_hopids: set[int] = field(default_factory=set)

    def is_malicious(self, node_id: int) -> bool:
        return node_id in self.malicious_ids

    # ------------------------------------------------------------------
    # knowledge acquisition
    # ------------------------------------------------------------------
    def observe_placement(self, hop_id: int, node_id: int) -> None:
        """Replica-placement hook: wire into
        ``ReplicatedStore.on_replica_placed`` so the coalition learns
        every anchor that ever touches a malicious node."""
        if node_id in self.malicious_ids:
            self.known_hopids.add(hop_id)

    def attach(self, store) -> None:
        """Subscribe to a :class:`~repro.past.ReplicatedStore` and
        absorb anything already stored on coalition nodes."""
        store.on_replica_placed.append(self.observe_placement)
        for nid in self.malicious_ids:
            storage = store.storages.get(nid)
            if storage is not None:
                self.known_hopids.update(storage.keys())

    def knows(self, hop_id: int) -> bool:
        return hop_id in self.known_hopids

    # ------------------------------------------------------------------
    # attack predicates
    # ------------------------------------------------------------------
    def tunnel_corrupted(self, tunnel: Tunnel) -> bool:
        """Case 1: the coalition knows every hop's THA."""
        return all(self.knows(h.hop_id) for h in tunnel.hops)

    def first_and_tail_controlled(self, system, tunnel: Tunnel) -> bool:
        """Case 2: coalition nodes currently serve the first and tail
        hops (timing-analysis precondition)."""
        first_root = system.network.closest_alive(tunnel.hops[0].hop_id)
        tail_root = system.network.closest_alive(tunnel.hops[-1].hop_id)
        return self.is_malicious(first_root) and self.is_malicious(tail_root)

    def knowledge_fraction(self, tunnels: list[Tunnel]) -> float:
        """Fraction of the given tunnels corrupted under case 1."""
        if not tunnels:
            return 0.0
        corrupted = sum(1 for t in tunnels if self.tunnel_corrupted(t))
        return corrupted / len(tunnels)
