"""Benign churn under a patient adversary (Figure 5's scenario).

"During each time unit, we simulate that a number of 100 benign nodes
leaves and then another set of 100 benign nodes joins the system.  So
the fraction of malicious nodes p is kept on 0.1 after each time
unit."  Malicious nodes never leave; they inherit replicas vacated by
benign departures and thereby accumulate THAs over time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.ids import random_id


@dataclass
class ChurnProcess:
    """Applies one unit of benign leave-then-join churn to a TapSystem."""

    leaves_per_unit: int = 100
    joins_per_unit: int = 100

    def step(self, system, adversary, rng: random.Random) -> dict:
        """One time unit: benign nodes leave, fresh benign nodes join.

        The replication manager repairs after each departure, which is
        what hands replicas — and hence THA knowledge — to coalition
        nodes that move up into replica sets.  Returns a small stats
        dict for the experiment log.
        """
        benign_alive = [
            nid for nid in system.network.alive_ids
            if not adversary.is_malicious(nid)
        ]
        departures = rng.sample(
            benign_alive, min(self.leaves_per_unit, len(benign_alive))
        )
        for nid in departures:
            system.fail_node(nid, repair=True)

        joined = []
        for _ in range(self.joins_per_unit):
            new_id = random_id(rng)
            while new_id in system.network.nodes:
                new_id = random_id(rng)
            system.join_node(new_id)
            joined.append(new_id)

        return {
            "departed": len(departures),
            "joined": len(joined),
            "alive": system.network.size,
            "known_thas": len(adversary.known_hopids),
        }
