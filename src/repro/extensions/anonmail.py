"""Anonymous mail with durable reply paths (the §1 email motivation).

"Another application is anonymous email systems.  Current tunneling
techniques may fail to route the reply back to the sender due to node
failures along the tunnel, while TAP can route the reply back to the
sender thanks to its robustness (... by using a reply tunnel T_r)."

The defining property of email is the *delay*: the reply happens long
after the send, when nodes on any recorded return path may have
churned away.  A fixed-node return path (remailer-style) dies with its
relays; a TAP reply tunnel names hop *ids*, each resolved to whatever
node currently holds the anchor — so the reply works as long as the
anchors' replica sets survive the intervening churn.

* :class:`AnonymousMail` delivers sender-anonymous messages to a
  recipient node's inbox; each envelope embeds the TAP reply blob;
* :meth:`AnonymousMail.reply` answers an envelope — possibly much
  later — down that blob;
* :class:`FixedReturnPath` is the remailer baseline for head-to-head
  durability experiments.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.baselines.fixed_tunnel import FixedNodeTunnel, form_fixed_tunnel
from repro.core.forwarding import ForwardTrace
from repro.core.node import PendingReply, TapNode
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.crypto.asymmetric import RsaError, RsaKeyPair, RsaPublicKey
from repro.crypto.hashing import random_key
from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.crypto.symmetric import CipherError, SymmetricKey
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


@dataclass
class Envelope:
    """A delivered anonymous message plus its (opaque) return path."""

    envelope_id: int
    body: bytes
    reply_first_hop: int
    reply_blob: bytes
    response_key: RsaPublicKey
    replied: bool = False


@dataclass
class SentMail:
    """The sender's handle: matches the eventual reply."""

    envelope_id: int
    reply_tunnel: ReplyTunnel
    temp_keys: RsaKeyPair
    responses: list[bytes] = field(default_factory=list)
    delivered: bool = False
    trace: ForwardTrace | None = None


class AnonymousMail:
    """Sender-anonymous mail over TAP tunnels."""

    def __init__(self, system):
        self.system = system
        self._rng: random.Random = system.seeds.pyrandom("anonmail")
        self._ids = itertools.count(1)
        #: application-layer inboxes: recipient node id -> envelopes
        self.inboxes: dict[int, list[Envelope]] = {}

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        sender: TapNode,
        recipient_id: int,
        body: bytes,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
    ) -> SentMail:
        """Deliver ``body`` to the recipient's inbox anonymously.

        The envelope carries the reply tunnel's entry hop and blob plus
        a temporary response key; the sender keeps a pending-reply
        registration alive so the answer can arrive any time later.
        """
        envelope_id = next(self._ids)
        temp_keys = RsaKeyPair.generate(self._rng, 512)
        fake = make_fake_onion(self._rng)
        first_hop, blob = build_reply_onion(
            reply_tunnel.onion_layers(), reply_tunnel.bid, fake
        )
        mail = SentMail(envelope_id, reply_tunnel, temp_keys)

        def on_response(payload: bytes) -> None:
            try:
                sealed, wrapped = unpack_fields(payload, count=2)
                k_f = SymmetricKey(temp_keys.decrypt(wrapped))
                mail.responses.append(k_f.open(sealed))
            except (SerializationError, RsaError, CipherError):
                pass  # corrupted response: ignored

        # Long-lived registration: replies may arrive after churn.
        sender.register_pending(
            PendingReply(
                bid=reply_tunnel.bid,
                temp_keypair=temp_keys,
                reply_hops=reply_tunnel.hop_ids,
                callback=on_response,
            )
        )

        payload = pack_fields(
            pack_int(envelope_id, width=8),
            body,
            pack_int(first_hop),
            blob,
            temp_keys.public.to_bytes(),
        )

        def deliver(node_id: int, data: bytes) -> None:
            if node_id != recipient_id:
                return
            try:
                eid_b, body_, hop_b, blob_, key_b = unpack_fields(data, count=5)
                n = int.from_bytes(key_b[:-4], "big")
                e = int.from_bytes(key_b[-4:], "big")
                envelope = Envelope(
                    envelope_id=unpack_int(eid_b, width=8),
                    body=body_,
                    reply_first_hop=unpack_int(hop_b),
                    reply_blob=blob_,
                    response_key=RsaPublicKey(n, e),
                )
            except (SerializationError, RsaError, ValueError):
                return
            self.inboxes.setdefault(node_id, []).append(envelope)
            mail.delivered = True

        mail.trace = self.system.forwarder.send(
            sender, forward_tunnel, destination_id=recipient_id,
            payload=payload, deliver=deliver,
        )
        return mail

    # ------------------------------------------------------------------
    # replying (possibly long after, possibly after churn)
    # ------------------------------------------------------------------
    def reply(self, recipient_id: int, envelope: Envelope, body: bytes) -> ForwardTrace:
        """Answer an envelope down its embedded TAP reply tunnel."""
        k_f = SymmetricKey(random_key(self._rng))
        sealed = k_f.seal(body)
        wrapped = envelope.response_key.encrypt(k_f.key_bytes, self._rng)
        trace = self.system.forwarder.send_reply(
            recipient_id,
            envelope.reply_first_hop,
            envelope.reply_blob,
            pack_fields(sealed, wrapped),
        )
        envelope.replied = trace.success
        return trace

    def inbox(self, node_id: int) -> list[Envelope]:
        return self.inboxes.get(node_id, [])


@dataclass
class FixedReturnPath:
    """Remailer baseline: the return path is a list of concrete nodes.

    The reply succeeds iff every recorded relay is still alive at
    reply time — the §1 failure mode TAP's reply tunnels avoid.
    """

    tunnel: FixedNodeTunnel

    @classmethod
    def record(cls, node_ids: list[int], length: int, rng: random.Random) -> "FixedReturnPath":
        return cls(form_fixed_tunnel(node_ids, length, rng, with_keys=True))

    def reply(self, sender_id: int, body: bytes, is_alive) -> bool:
        ok, _, _ = self.tunnel.send(sender_id, body, is_alive)
        return ok
