"""Mutual anonymity: hidden services over TAP tunnels.

The paper's §8 cites work "aimed at mutual anonymity between an
initiator and a responder" as the neighbouring problem; TAP itself
only hides the initiator (§4's responder is a public PAST node).  This
extension composes TAP's own primitives into the full property —
both endpoints anonymous:

* a **provider** P forms an *inbound service tunnel* — structurally a
  reply tunnel, terminating at a ``bid`` only P recognises — and
  publishes a *service record* in the DHT under the service name:
  ``<entry hopid, tunnel blob, service public key>``.  The record
  names DHT keys, never P;
* a **requester** R fetches the record, encrypts its request (plus its
  own reply tunnel and a temporary response key) to the service key,
  and pushes it through R's *own forward tunnel*, whose exit hands the
  message to the service tunnel's entry hop;
* the request walks P's inbound tunnel (each hop one decryption) to P,
  which serves it and answers down R's reply tunnel.

P never learns R (the request arrives via R's tunnels); R never learns
P (the response leaves via P's tunnel; the record pins only hop ids).
Both tunnels inherit TAP's fault tolerance, so the hidden service
survives hop-node churn like any other TAP traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.forwarding import ForwardTrace
from repro.core.node import PendingReply, TapNode
from repro.core.tunnel import ReplyTunnel, Tunnel
from repro.crypto.asymmetric import RsaError, RsaKeyPair, RsaPublicKey
from repro.crypto.hashing import random_key, sha1_id
from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.crypto.symmetric import CipherError, SymmetricKey
from repro.util.serialize import (
    SerializationError,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


class ServiceError(RuntimeError):
    """Raised on malformed service records or failed publication."""


def service_id(name: bytes) -> int:
    """DHT key of a service record (hash of its public name)."""
    return sha1_id(b"tap-service", name)


@dataclass
class ServiceRecord:
    """The public, DHT-stored face of a hidden service."""

    entry_hop_id: int
    tunnel_blob: bytes
    public_key: RsaPublicKey

    def encode(self) -> bytes:
        return pack_fields(
            pack_int(self.entry_hop_id),
            self.tunnel_blob,
            self.public_key.to_bytes(),
        )

    @classmethod
    def decode(cls, blob: bytes) -> "ServiceRecord":
        try:
            hop_b, tunnel_blob, key_b = unpack_fields(blob, count=3)
            n = int.from_bytes(key_b[:-4], "big")
            e = int.from_bytes(key_b[-4:], "big")
            return cls(unpack_int(hop_b), tunnel_blob, RsaPublicKey(n, e))
        except (SerializationError, RsaError, ValueError) as exc:
            raise ServiceError(f"malformed service record: {exc}") from exc


@dataclass
class HiddenService:
    """Provider-side state of one published hidden service."""

    name: bytes
    provider: TapNode
    inbound: ReplyTunnel
    keypair: RsaKeyPair
    handler: Callable[[bytes], bytes]
    served: int = 0
    record_key: int = 0
    meta: dict = field(default_factory=dict)


class MutualAnonymity:
    """Publish and call hidden services over a TapSystem."""

    def __init__(self, system):
        self.system = system
        self._rng: random.Random = system.seeds.pyrandom("mutual-anonymity")

    # ------------------------------------------------------------------
    # provider side
    # ------------------------------------------------------------------
    def publish_service(
        self,
        provider: TapNode,
        name: bytes,
        handler: Callable[[bytes], bytes],
        tunnel_length: int = 3,
    ) -> HiddenService:
        """Form the inbound tunnel, register the responder logic, and
        put the service record into the DHT."""
        inbound = self.system.form_reply_tunnel(provider, tunnel_length)
        keypair = RsaKeyPair.generate(
            self.system.seeds.pyrandom("service-key", provider.node_id, name), 512
        )
        fake = make_fake_onion(self._rng)
        entry_hop, blob = build_reply_onion(
            inbound.onion_layers(), inbound.bid, fake
        )
        service = HiddenService(
            name=name, provider=provider, inbound=inbound,
            keypair=keypair, handler=handler,
        )

        # The provider listens on its bid: every arriving request is
        # decrypted, served, and answered down the requester's tunnel.
        def on_request(payload: bytes) -> None:
            self._serve(service, payload)

        provider.register_pending(
            PendingReply(
                bid=inbound.bid,
                temp_keypair=keypair,
                reply_hops=inbound.hop_ids,
                callback=on_request,
            )
        )

        record = ServiceRecord(entry_hop, blob, keypair.public)
        key = service_id(name)
        self.system.store.insert(key, record.encode())
        service.record_key = key
        return service

    def _serve(self, service: HiddenService, payload: bytes) -> None:
        try:
            plain = service.keypair.decrypt(payload)
            body, r_first_b, r_blob, r_key_b = unpack_fields(plain, count=4)
            r_first = unpack_int(r_first_b)
            n = int.from_bytes(r_key_b[:-4], "big")
            e = int.from_bytes(r_key_b[-4:], "big")
            response_key = RsaPublicKey(n, e)
        except (RsaError, SerializationError, ValueError):
            return  # undecipherable request: drop silently
        service.served += 1
        response_body = service.handler(body)
        k_f = SymmetricKey(random_key(self._rng))
        sealed = k_f.seal(response_body)
        wrapped = response_key.encrypt(k_f.key_bytes, self._rng)
        self.system.forwarder.send_reply(
            service.provider.node_id, r_first, r_blob,
            pack_fields(sealed, wrapped),
        )

    # ------------------------------------------------------------------
    # requester side
    # ------------------------------------------------------------------
    def lookup(self, name: bytes) -> ServiceRecord:
        """Fetch and decode a service record from the DHT."""
        key = service_id(name)
        stored = self.system.store.fetch(key)
        return ServiceRecord.decode(stored.value)

    def call(
        self,
        requester: TapNode,
        name: bytes,
        body: bytes,
        forward_tunnel: Tunnel,
        reply_tunnel: ReplyTunnel,
    ) -> tuple[bytes | None, ForwardTrace]:
        """Invoke a hidden service with mutual anonymity.

        Returns ``(response_body | None, forward_trace)``; the trace
        covers the requester's leg (its forward tunnel to the service
        entry hop).
        """
        record = self.lookup(name)
        temp_keys = RsaKeyPair.generate(self._rng, 512)
        fake = make_fake_onion(self._rng)
        r_first, r_blob = build_reply_onion(
            reply_tunnel.onion_layers(), reply_tunnel.bid, fake
        )

        received: list[bytes] = []
        requester.register_pending(
            PendingReply(
                bid=reply_tunnel.bid,
                temp_keypair=temp_keys,
                reply_hops=reply_tunnel.hop_ids,
                callback=received.append,
            )
        )

        request_plain = pack_fields(
            body, pack_int(r_first), r_blob, temp_keys.public.to_bytes()
        )
        request = record.public_key.encrypt(request_plain, self._rng)

        def deliver(entry_node: int, payload: bytes) -> None:
            # The requester's exit hands the request to the service
            # tunnel's entry hop, which walks it inward to the provider.
            self.system.forwarder.send_reply(
                entry_node, record.entry_hop_id, record.tunnel_blob, payload
            )

        trace = self.system.forwarder.send(
            requester, forward_tunnel,
            destination_id=record.entry_hop_id,
            payload=request,
            deliver=deliver,
        )
        requester.pending_replies.pop(reply_tunnel.bid, None)

        if not received:
            return None, trace
        try:
            sealed, wrapped = unpack_fields(received[0], count=2)
            k_f = SymmetricKey(temp_keys.decrypt(wrapped))
            return k_f.open(sealed), trace
        except (SerializationError, RsaError, CipherError):
            return None, trace
