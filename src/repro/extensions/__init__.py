"""Extensions beyond the paper's evaluated core.

The paper's §9 defers two issues to future work / its extended report:
secure routing of messages to tunnel hop nodes when overlay nodes are
malicious, and detection of corrupted tunnels.  This package supplies
both, following the literature the paper cites:

* :mod:`repro.extensions.secure_routing` — routing-failure test
  (id-density check) and redundant routing over diverse paths, after
  Castro et al., *Secure routing for structured peer-to-peer overlay
  networks* (OSDI 2002) — the technique TAP's extended report builds
  on;
* :mod:`repro.extensions.tunnel_probe` — corrupted/broken tunnel
  detection by end-to-end probing through a reply loop, addressing the
  "TAP does not have a mechanism to detect corrupted/malicious
  tunnels" limitation;
* :mod:`repro.extensions.mutual_anonymity` — hidden services: mutual
  initiator/responder anonymity composed from TAP's own tunnels (the
  neighbouring problem §8 cites).
"""

from repro.extensions.secure_routing import (
    RoutingInterceptor,
    routing_failure_test,
    secure_route,
    SecureRouteResult,
)
from repro.extensions.tunnel_probe import TunnelProber, ProbeReport
from repro.extensions.mutual_anonymity import (
    HiddenService,
    MutualAnonymity,
    ServiceRecord,
    service_id,
)

__all__ = [
    "RoutingInterceptor",
    "routing_failure_test",
    "secure_route",
    "SecureRouteResult",
    "TunnelProber",
    "ProbeReport",
    "HiddenService",
    "MutualAnonymity",
    "ServiceRecord",
    "service_id",
]
