"""Tunnel health probing (paper §9: "TAP does not have a mechanism to
detect corrupted/malicious tunnels ... we hope to address these
issues").

A :class:`TunnelProber` loops an authenticated probe through a tunnel
back to its owner: the exit destination is a fresh identifier whose
numerically closest node is the initiator itself (the same trick as
the reply tunnel's ``bid``).  The probe payload is sealed under a key
only the owner knows, so the prober detects:

* **broken tunnels** — the probe never returns (hop anchor lost, all
  replicas dead);
* **active tampering** — the probe returns but fails authentication
  (a malicious hop modified, truncated or replayed it).

Passive collusion (§6's THA pooling) is *not* detectable by probing —
colluders forward faithfully — which is exactly why the paper's
remedy is periodic refresh (:mod:`repro.core.refresh`); the prober
complements refresh by catching hard failures immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.node import TapNode
from repro.core.tunnel import Tunnel
from repro.crypto.hashing import random_key
from repro.crypto.symmetric import CipherError, SymmetricKey


@dataclass
class ProbeReport:
    """Outcome of one end-to-end tunnel probe."""

    functional: bool
    tampered: bool = False
    returned: bool = False
    overlay_hops: int = 0
    underlying_hops: int = 0
    failure_reason: str | None = None
    meta: dict = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        return self.functional and not self.tampered


class TunnelProber:
    """Probes tunnels through the live forwarding engine."""

    def __init__(self, system):
        self.system = system
        self._probe_keys: dict[int, SymmetricKey] = {}

    def _owner_probe_key(self, owner: TapNode) -> SymmetricKey:
        key = self._probe_keys.get(owner.node_id)
        if key is None:
            rng = self.system.seeds.pyrandom("probe-key", owner.node_id)
            key = SymmetricKey(random_key(rng))
            self._probe_keys[owner.node_id] = key
        return key

    def probe(self, owner: TapNode, tunnel: Tunnel, sequence: int = 0) -> ProbeReport:
        """Send one authenticated loop-back probe through ``tunnel``."""
        probe_key = self._owner_probe_key(owner)
        loop_id = owner.make_bid(self.system.network.alive_ids)
        payload = probe_key.seal(
            b"probe" + sequence.to_bytes(8, "big") + loop_id.to_bytes(16, "big")
        )

        received: list[tuple[int, bytes]] = []
        trace = self.system.forwarder.send(
            owner,
            tunnel,
            destination_id=loop_id,
            payload=payload,
            deliver=lambda nid, data: received.append((nid, data)),
        )

        if not trace.success or not received:
            return ProbeReport(
                functional=False,
                failure_reason=trace.failure_reason or "probe never exited",
                overlay_hops=trace.overlay_hops,
                underlying_hops=trace.underlying_hops,
            )

        landed_on, data = received[0]
        if landed_on != owner.node_id:
            # The loop identifier resolved elsewhere (owner no longer
            # closest — e.g. heavy churn around its id).
            return ProbeReport(
                functional=False,
                returned=False,
                failure_reason="probe exited to a different node",
                overlay_hops=trace.overlay_hops,
                underlying_hops=trace.underlying_hops,
            )
        try:
            plain = probe_key.open(data)
            tampered = not (
                plain.startswith(b"probe")
                and plain[5:13] == sequence.to_bytes(8, "big")
            )
        except CipherError:
            tampered = True
        return ProbeReport(
            functional=True,
            tampered=tampered,
            returned=True,
            overlay_hops=trace.overlay_hops,
            underlying_hops=trace.underlying_hops,
        )

    def audit(self, owner: TapNode, tunnels: list[Tunnel]) -> dict:
        """Probe a set of tunnels; summarise which need refreshing."""
        reports = [self.probe(owner, t, seq) for seq, t in enumerate(tunnels)]
        needs_refresh = [
            t for t, r in zip(tunnels, reports) if not r.healthy
        ]
        return {
            "probed": len(tunnels),
            "healthy": sum(1 for r in reports if r.healthy),
            "broken": sum(1 for r in reports if not r.functional),
            "tampered": sum(1 for r in reports if r.tampered),
            "needs_refresh": needs_refresh,
            "reports": reports,
        }
