"""Secure routing to tunnel hop nodes (paper §9 / extended report).

"A big concern is how a message can be securely routed to a tunnel hop
node given a hopid in P2P overlays where a fraction of nodes are
malicious."  Following Castro et al., *Secure routing for structured
peer-to-peer overlay networks* (OSDI 2002) — the work TAP's extended
report builds on — we implement:

* the **routing failure test**: the responder to a lookup must present
  its *neighbor set* (leaf set) along with the claimed root.  The
  seeker checks
  (1) **density** — the presented set's average id spacing must be
  comparable to the seeker's own leaf-set density.  A coalition
  forging a set from its own (certified) member ids can only offer a
  set ~1/p times sparser;
  (2) **closest-wins** — no presented neighbor may be closer to the
  key than the claimed root.  An impostor presenting its *true* leaf
  set (to pass the density check) thereby exposes honest nodes that
  sit between it and the key.
  Either forgery strategy trips one of the two checks w.h.p.
* **redundant routing** — the query travels over several diverse first
  hops; the numerically closest verified candidate wins.

The attack model (:class:`RoutingInterceptor`) lets any malicious
*relay* capture a message en route and answer with the coalition
member closest to the key, presenting the most favourable neighbor set
it can assemble from real coalition ids (invented ids would fail
nodeId certification, which Castro et al. assume and we inherit).

A finding our benches make explicit (and that matches Castro et al.'s
analysis): because Pastry routes *converge* in the key's prefix
neighbourhood, interception events are highly correlated across
redundant paths — when one path is hijacked near the key, usually all
are.  Redundancy buys liveness; the failure test is what converts
*silent deception* into *detected failure* (the seeker raises an alarm
and can retry or re-bootstrap), which is the security metric the
experiments report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.pastry.network import PastryNetwork, RouteResult, RoutingError
from repro.util.ids import ID_SPACE, closest_ids, ring_distance

#: how many neighbor ids a lookup response must present
NEIGHBOR_SET_SIZE = 16


@dataclass
class RoutingInterceptor:
    """Colluding relays that hijack routes passing through them.

    When a route's next hop is a coalition node *en route* (a malicious
    node that legitimately is the destination is not an interception),
    the coalition captures the message and answers with its member
    closest to the key, plus the best forgeable neighbor set:
    coalition ids around the impostor (``forge_honest_set=False``) or
    the impostor's true leaf set (``forge_honest_set=True``).
    """

    malicious_ids: set[int]
    forge_honest_set: bool = False

    def __post_init__(self) -> None:
        self._sorted = sorted(self.malicious_ids)

    def is_malicious(self, node_id: int) -> bool:
        return node_id in self.malicious_ids

    def fake_root(self, key: int) -> int:
        """The coalition's best impostor for a key."""
        if not self._sorted:
            raise ValueError("empty coalition cannot forge a root")
        return closest_ids(self._sorted, key, 1)[0]

    def forged_neighbor_set(self, network: PastryNetwork, fake: int) -> list[int]:
        """The neighbor set presented alongside the impostor."""
        if self.forge_honest_set:
            # Present the impostor's genuine leaf set: dense, but it
            # exposes honest nodes that may be closer to the key.
            return sorted(network.nodes[fake].leaf_set.members)
        pool = [m for m in self._sorted if m != fake]
        return closest_ids(pool, fake, min(NEIGHBOR_SET_SIZE, len(pool)))

    def route(self, network: PastryNetwork, src_id: int, key: int) -> RouteResult:
        """Route with en-route interception."""
        result = network.route(src_id, key)
        for idx, node_id in enumerate(result.path[1:-1], start=1):
            if self.is_malicious(node_id):
                fake = self.fake_root(key)
                hijacked_path = result.path[: idx + 1] + [fake]
                return RouteResult(
                    key=key,
                    path=hijacked_path,
                    success=True,  # the *client* cannot tell (yet)
                    failures=result.failures,
                    meta={
                        "hijacked": True,
                        "hijacker": node_id,
                        "neighbor_set": self.forged_neighbor_set(network, fake),
                    },
                )
        return result


def honest_neighbor_set(network: PastryNetwork, root: int) -> list[int]:
    """What an honest root presents: its actual leaf set."""
    return sorted(network.nodes[root].leaf_set.members)


def estimate_id_spacing(network: PastryNetwork, observer_id: int) -> float:
    """The observer's local estimate of mean inter-node id spacing,
    from its own (trusted) leaf set."""
    node = network.nodes[observer_id]
    return neighbor_set_spacing(
        sorted(node.leaf_set.members | {observer_id})
    )


def neighbor_set_spacing(sorted_members: list[int]) -> float:
    """Mean gap of a presented neighbor set (arc span / gap count)."""
    n = len(sorted_members)
    if n < 2:
        return float(ID_SPACE)
    # The set occupies an arc; measure it as the complement of the
    # largest gap between consecutive members on the ring.
    gaps = [
        (sorted_members[(i + 1) % n] - sorted_members[i]) % ID_SPACE
        for i in range(n)
    ]
    span = ID_SPACE - max(gaps)
    if span <= 0:
        return float(ID_SPACE)
    return span / (n - 1)


def routing_failure_test(
    network: PastryNetwork,
    observer_id: int,
    key: int,
    claimed_root: int,
    neighbor_set: list[int],
    density_factor: float = 2.5,
) -> bool:
    """Castro-style verification of a lookup response.

    Checks (1) the presented neighbor set is at least 1/density_factor
    as dense as the observer's own neighbourhood, and (2) neither the
    set nor its members are closer to the key than the claimed root.
    Honest responses pass both with overwhelming probability; forged
    responses fail one of them (see module docstring).
    """
    if len(neighbor_set) < 2:
        return False  # a real node always has neighbours to show
    own_spacing = estimate_id_spacing(network, observer_id)
    presented_spacing = neighbor_set_spacing(sorted(neighbor_set))
    if presented_spacing > density_factor * own_spacing:
        return False
    root_key = (ring_distance(claimed_root, key), claimed_root)
    for member in neighbor_set:
        if (ring_distance(member, key), member) < root_key:
            return False
    return True


@dataclass
class SecureRouteResult:
    """Outcome of redundant verified routing."""

    key: int
    accepted_root: int | None
    candidates: list[int] = field(default_factory=list)
    rejected: list[int] = field(default_factory=list)
    paths_used: int = 0
    hijacked_paths: int = 0

    @property
    def success(self) -> bool:
        return self.accepted_root is not None

    @property
    def alarm(self) -> bool:
        """Every candidate failed verification: routing failure
        *detected* — the seeker knows not to trust the lookup."""
        return self.accepted_root is None and bool(self.candidates)


def secure_route(
    network: PastryNetwork,
    src_id: int,
    key: int,
    interceptor: RoutingInterceptor | None = None,
    redundancy: int = 3,
    density_factor: float = 2.5,
    rng: random.Random | None = None,
) -> SecureRouteResult:
    """Route redundantly over diverse first hops and verify results.

    Launches the query through up to ``redundancy`` distinct leaf-set
    neighbours (plus directly), applies the routing failure test to
    every response, and accepts the numerically closest verified root.
    """
    src = network.nodes.get(src_id)
    if src is None or not src.alive:
        raise RoutingError(f"source {src_id:#x} is not alive")
    rng = rng or random.Random(key & 0xFFFFFFFF)

    starts = [src_id]
    neighbours = [n for n in src.leaf_set.members if network.is_alive(n)]
    rng.shuffle(neighbours)
    starts.extend(neighbours[: max(0, redundancy - 1)])

    result = SecureRouteResult(key=key, accepted_root=None)
    for start in starts:
        result.paths_used += 1
        if interceptor is not None:
            if interceptor.is_malicious(start):
                # Handing the query to a malicious neighbour is an
                # immediate hijack.
                fake = interceptor.fake_root(key)
                route = RouteResult(
                    key, [src_id, start, fake], True,
                    meta={
                        "hijacked": True,
                        "neighbor_set": interceptor.forged_neighbor_set(network, fake),
                    },
                )
            else:
                route = interceptor.route(network, start, key)
        else:
            route = network.route(start, key)
        if not route.success:
            continue
        candidate = route.destination
        neighbor_set = route.meta.get("neighbor_set")
        if neighbor_set is None:
            neighbor_set = honest_neighbor_set(network, candidate)
        if route.meta.get("hijacked"):
            result.hijacked_paths += 1
        result.candidates.append(candidate)
        if routing_failure_test(
            network, src_id, key, candidate, neighbor_set, density_factor
        ):
            if (
                result.accepted_root is None
                or (ring_distance(candidate, key), candidate)
                < (ring_distance(result.accepted_root, key), result.accepted_root)
            ):
                result.accepted_root = candidate
        else:
            result.rejected.append(candidate)
    return result
