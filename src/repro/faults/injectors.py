"""Deterministic fault injectors for both execution engines.

Two adapters share one vocabulary of faults:

* :class:`SyncFaultInjector` hooks the synchronous engine
  (:class:`repro.core.forwarding.TunnelForwarder`): per-message drop
  and corruption sampled on seeded streams, heal-able network
  partitions checked per overlay leg, and Byzantine hop behaviours
  (swallow the onion, corrupt a layer, serve a stale THA).
* :class:`SimNetFaultInjector` hooks the discrete-event fabric
  (:class:`repro.simnet.network.SimNetwork`): per-physical-message
  drop, extra delay, duplication, reordering (modelled as holding a
  message back past its successors) and payload corruption.

All sampling draws from :mod:`repro.util.rng` child streams, so a
chaos run with a fixed seed replays bit-identically; every injected
fault is counted and (optionally) recorded into a
:class:`repro.obs.EventTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import SeedSequenceFactory

#: Byzantine hop behaviours (tentpole: "drop or corrupt an onion
#: layer, serve a stale THA")
BYZANTINE_BEHAVIORS = ("drop-layer", "corrupt-layer", "stale-tha")


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class MessageFaultSpec:
    """Per-message fault probabilities (one logical message = one
    tunnel traversal in the synchronous engine, one physical send in
    the simnet fabric)."""

    drop: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    #: injected extra latency when a message is delayed
    delay_s: float = 0.05
    duplicate: float = 0.0
    reorder: float = 0.0
    #: hold-back applied to reordered messages (simnet layer)
    reorder_s: float = 0.02

    def __post_init__(self) -> None:
        for name in ("drop", "corrupt", "delay", "duplicate", "reorder"):
            _check_prob(name, getattr(self, name))
        if self.delay_s < 0 or self.reorder_s < 0:
            raise ValueError("injected delays must be >= 0")

    def any(self) -> bool:
        return any((self.drop, self.corrupt, self.delay,
                    self.duplicate, self.reorder))


@dataclass(frozen=True)
class ByzantineSpec:
    """A fraction of hop nodes misbehave, cycling through behaviours."""

    fraction: float = 0.0
    behaviors: tuple[str, ...] = BYZANTINE_BEHAVIORS

    def __post_init__(self) -> None:
        _check_prob("fraction", self.fraction)
        bad = set(self.behaviors) - set(BYZANTINE_BEHAVIORS)
        if bad:
            raise ValueError(f"unknown byzantine behaviors: {sorted(bad)}")
        if not self.behaviors:
            raise ValueError("byzantine behaviors must not be empty")


@dataclass
class MessageFault:
    """Per-message verdict for one synchronous tunnel traversal."""

    drop_at: int | None = None
    corrupt_at: int | None = None
    delay_s: float = 0.0

    @property
    def active(self) -> bool:
        return (self.drop_at is not None or self.corrupt_at is not None
                or self.delay_s > 0.0)


class _FaultCounters:
    """Shared bookkeeping: counts + optional obs plumbing."""

    def __init__(self, event_trace=None, metrics=None):
        self.counts: dict[str, int] = {}
        self.event_trace = event_trace
        self.metrics = metrics

    def note(self, what: str, **fields) -> None:
        self.counts[what] = self.counts.get(what, 0) + 1
        if self.event_trace is not None:
            # ``kind`` is EventTrace.record's positional parameter;
            # remap the message-kind field so both can coexist.
            if "kind" in fields:
                fields["message"] = fields.pop("kind")
            self.event_trace.record(f"fault.{what}", **fields)
        if self.metrics is not None:
            self.metrics.counter(f"faults.{what}").inc()

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())


class SyncFaultInjector(_FaultCounters):
    """Fault oracle consulted by the synchronous forwarding engine."""

    def __init__(
        self,
        spec: MessageFaultSpec | None = None,
        byzantine: ByzantineSpec | None = None,
        seeds: SeedSequenceFactory | None = None,
        event_trace=None,
        metrics=None,
    ):
        super().__init__(event_trace, metrics)
        self.spec = spec or MessageFaultSpec()
        self.byzantine = byzantine
        seeds = seeds or SeedSequenceFactory(0)
        self._msg_rng = seeds.pyrandom("messages")
        self._byz_rng = seeds.pyrandom("byzantine")
        #: node id -> behaviour for the misbehaving hop population
        self.byzantine_nodes: dict[int, str] = {}
        #: currently isolated node set (None = no partition)
        self._isolated: frozenset[int] | None = None
        #: virtual latency injected into sync traversals (reported,
        #: since the synchronous engine has no clock to charge it to)
        self.injected_delay_s = 0.0

    # -- partitions ----------------------------------------------------
    def set_partition(self, isolated) -> None:
        """Split the network: ``isolated`` cannot exchange messages
        with the rest until :meth:`heal_partition`."""
        self._isolated = frozenset(isolated)
        self.note("partition.split", size=len(self._isolated))

    def heal_partition(self) -> None:
        if self._isolated is not None:
            self.note("partition.heal", size=len(self._isolated))
        self._isolated = None

    @property
    def partitioned(self) -> bool:
        return bool(self._isolated)

    def check_leg(self, src: int, dst: int) -> str | None:
        """Partition verdict for one overlay leg (None = deliverable)."""
        iso = self._isolated
        if iso is not None and (src in iso) != (dst in iso):
            self.note("partition.drop", src=src, dst=dst)
            return "partitioned link"
        return None

    # -- byzantine population ------------------------------------------
    def assign_byzantine(self, node_ids) -> dict[int, str]:
        """Deterministically flip a fraction of ``node_ids`` Byzantine."""
        self.byzantine_nodes.clear()
        if self.byzantine is None or self.byzantine.fraction <= 0.0:
            return self.byzantine_nodes
        pool = sorted(node_ids)
        count = round(self.byzantine.fraction * len(pool))
        victims = self._byz_rng.sample(pool, count) if count else []
        behaviors = self.byzantine.behaviors
        for i, nid in enumerate(victims):
            self.byzantine_nodes[nid] = behaviors[i % len(behaviors)]
        return self.byzantine_nodes

    def byzantine_action(self, node_id: int) -> str | None:
        """Behaviour of ``node_id`` when asked to serve a hop."""
        action = self.byzantine_nodes.get(node_id)
        if action is not None:
            self.note(f"byzantine.{action}", node=node_id)
        return action

    # -- per-message faults --------------------------------------------
    def draw_message(self, kind: str, legs: int) -> MessageFault | None:
        """Sample this message's fate over its ~``legs`` overlay legs."""
        spec = self.spec
        if not (spec.drop or spec.corrupt or spec.delay):
            return None
        fault = MessageFault()
        legs = max(1, legs)
        if spec.drop and self._msg_rng.random() < spec.drop:
            fault.drop_at = self._msg_rng.randrange(legs)
        if spec.corrupt and self._msg_rng.random() < spec.corrupt:
            fault.corrupt_at = self._msg_rng.randrange(legs)
        if spec.delay and self._msg_rng.random() < spec.delay:
            fault.delay_s = spec.delay_s
            self.injected_delay_s += spec.delay_s
            self.note("message.delay", kind=kind)
        return fault if fault.active else None


@dataclass
class SimVerdict:
    """Per-physical-message fate in the discrete-event fabric."""

    drop: bool = False
    extra_delay_s: float = 0.0
    duplicate: bool = False
    duplicate_gap_s: float = 0.0
    corrupt: bool = False


class SimNetFaultInjector(_FaultCounters):
    """Fault oracle consulted by :class:`repro.simnet.SimNetwork`.

    Injected drops are *silent* (UDP-style loss): the message simply
    never arrives, and no dead-neighbour timeout fires — transient
    loss must not poison routing tables the way real node death does.
    Pair lossy plans with a transmission deadline
    (:meth:`repro.core.emulation.TapEmulation.send_through_tunnel`'s
    ``deadline_s``) so initiators observe timeouts.
    """

    def __init__(
        self,
        spec: MessageFaultSpec | None = None,
        seeds: SeedSequenceFactory | None = None,
        event_trace=None,
        metrics=None,
    ):
        super().__init__(event_trace, metrics)
        self.spec = spec or MessageFaultSpec()
        seeds = seeds or SeedSequenceFactory(0)
        self._rng = seeds.pyrandom("simnet-messages")

    def on_message(self, record, delay: float) -> SimVerdict | None:
        """Decide the fate of one physical send (None = untouched)."""
        spec = self.spec
        if not spec.any():
            return None
        verdict = SimVerdict()
        rng = self._rng
        if spec.drop and rng.random() < spec.drop:
            verdict.drop = True
            self.note("message.drop", src=record.src, dst=record.dst)
            return verdict
        if spec.delay and rng.random() < spec.delay:
            verdict.extra_delay_s += spec.delay_s
            self.note("message.delay", src=record.src, dst=record.dst)
        if spec.reorder and rng.random() < spec.reorder:
            # Reordering = holding this message back past successors.
            verdict.extra_delay_s += spec.reorder_s
            self.note("message.reorder", src=record.src, dst=record.dst)
        if spec.duplicate and rng.random() < spec.duplicate:
            verdict.duplicate = True
            verdict.duplicate_gap_s = spec.reorder_s
            self.note("message.duplicate", src=record.src, dst=record.dst)
        if spec.corrupt and rng.random() < spec.corrupt:
            verdict.corrupt = True
            self.note("message.corrupt", src=record.src, dst=record.dst)
        return verdict

    @staticmethod
    def corrupt_payload(record) -> None:
        """Flip bits in the payload in place (best effort).

        Understands raw ``bytes`` payloads and envelope objects with a
        ``blob: bytes`` attribute (the emulation's onion carrier); any
        other payload is left intact but still counted.
        """
        payload = record.payload
        blob = getattr(payload, "blob", None)
        if isinstance(blob, bytes) and blob:
            payload.blob = bytes([blob[0] ^ 0xFF]) + blob[1:]
        elif isinstance(payload, bytes) and payload:
            record.payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        record.meta["fault"] = "corrupt"


class StorageFaultInjector(_FaultCounters):
    """At-rest fault oracle for :class:`StorageFaultEvent` schedules.

    Operates on any :class:`repro.past.interface.ObjectStore`; the
    victims — (key, holder) pairs for bit-rot, holder nodes for lease
    skew — are sampled from the store's *current* placement state on a
    dedicated seeded stream, so a run replays bit-identically while
    still rotting whatever the churn schedule left in place.  Lease
    skew is a no-op on backends without a lease clock (plain
    replication has no ``set_clock_skew``) and is counted as skipped.
    """

    def __init__(self, seeds: SeedSequenceFactory | None = None,
                 event_trace=None, metrics=None):
        super().__init__(event_trace, metrics)
        seeds = seeds or SeedSequenceFactory(0)
        self._rng = seeds.pyrandom("storage-faults")

    def _share_pool(self, store) -> list[tuple[int, int]]:
        """All (key, live holder) pairs, in deterministic order."""
        return [
            (key, holder)
            for key in store.all_keys()
            for holder in sorted(store.holders(key))
            if store.network.is_alive(holder)
        ]

    def inject_bitrot(self, store, count: int) -> int:
        """Rot ``count`` sampled shares (fewer if the pool is small)."""
        pool = self._share_pool(store)
        if not pool or count <= 0:
            return 0
        victims = self._rng.sample(pool, min(count, len(pool)))
        rotted = 0
        for key, holder in sorted(victims):
            if store.corrupt_replica(holder, key):
                rotted += 1
                self.note("storage.bitrot", node=holder, key=key)
        return rotted

    def inject_lease_skew(self, store, count: int, epochs: int) -> int:
        """Skew ``count`` sampled live holders' lease clocks forward."""
        set_skew = getattr(store, "set_clock_skew", None)
        if set_skew is None:
            self.note("storage.skew_unsupported")
            return 0
        pool = sorted(
            {h for key in store.all_keys() for h in store.holders(key)
             if store.network.is_alive(h)}
        )
        if not pool or count <= 0:
            return 0
        victims = self._rng.sample(pool, min(count, len(pool)))
        for holder in sorted(victims):
            set_skew(holder, epochs)
            self.note("storage.lease_skew", node=holder, epochs=epochs)
        return len(victims)

    def apply_event(self, store, event) -> None:
        """Run one :class:`StorageFaultEvent` against ``store``."""
        if event.bitrot_shares:
            self.inject_bitrot(store, event.bitrot_shares)
        if event.skew_nodes:
            self.inject_lease_skew(store, event.skew_nodes,
                                   event.skew_epochs)
