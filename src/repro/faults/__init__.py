"""``repro.faults`` — deterministic fault injection + chaos harness.

The deployed-world counterpart of :mod:`repro.adversary`: where the
adversary package reproduces the paper's measured regimes (Figure 2's
simultaneous failures, Figure 5's churn), this package injects the
messy faults a production deployment must shrug off — lossy/delayed/
duplicated/corrupted messages, heal-able partitions, crash-stop and
crash-recover schedules, Byzantine hops — all sampled on
:mod:`repro.util.rng` streams so every chaos run replays
bit-identically.

* :mod:`repro.faults.injectors` — the fault oracles for both engines;
* :mod:`repro.faults.plan` — composable, named :class:`FaultPlan`\\ s;
* :mod:`repro.faults.chaos` — the round-based chaos runner behind
  ``tap-repro chaos`` (availability / MTTR / determinism digest).
"""

from repro.faults.chaos import (
    ChaosConfig,
    availability_report,
    canonical_json,
    chaos_job,
    run_chaos,
    run_chaos_jobs,
)
from repro.faults.injectors import (
    BYZANTINE_BEHAVIORS,
    ByzantineSpec,
    MessageFault,
    MessageFaultSpec,
    SimNetFaultInjector,
    SimVerdict,
    StorageFaultInjector,
    SyncFaultInjector,
)
from repro.faults.plan import (
    NAMED_PLANS,
    FaultPlan,
    NodeFaultEvent,
    PartitionEvent,
    StorageFaultEvent,
    named_plan,
)

__all__ = [
    "BYZANTINE_BEHAVIORS",
    "ByzantineSpec",
    "ChaosConfig",
    "FaultPlan",
    "MessageFault",
    "MessageFaultSpec",
    "NAMED_PLANS",
    "NodeFaultEvent",
    "PartitionEvent",
    "SimNetFaultInjector",
    "SimVerdict",
    "StorageFaultEvent",
    "StorageFaultInjector",
    "SyncFaultInjector",
    "availability_report",
    "canonical_json",
    "chaos_job",
    "named_plan",
    "run_chaos",
    "run_chaos_jobs",
]
