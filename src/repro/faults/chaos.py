"""The chaos harness: run sessions under a fault plan, measure
availability and MTTR, and prove the run replays deterministically.

One chaos run is round-based: each round every session issues one
request through the live synchronous engine while the plan's node
events / partitions fire at round boundaries and per-message faults
are sampled on seeded streams.  The report separates

* **availability** — requests answered by a genuine round trip;
* **effective availability** — answered *cleanly* (no retry needed);
* **degraded service** — last-known-good fallbacks served;
* **MTTR** — mean rounds from the start of an outage (first failed
  round) until service is restored for that session.

Every quantity is a pure function of ``(plan, config)``: the report
JSON and the event trace are byte-identical across runs with the same
seed, which the ``sha256`` digest makes checkable with ``cmp``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.resilience import ResiliencePolicy
from repro.core.session import SessionServer, TapSession
from repro.core.system import TapSystem
from repro.experiments.config import ExperimentConfig
from repro.faults.plan import FaultPlan
from repro.obs import EventTrace
from repro.perf.parallel import shared_payload
from repro.util.rng import SeedSequenceFactory


def _chaos_base_token(config: ChaosConfig) -> tuple:
    return ("chaos-base", config.seed, config.num_nodes)


def _chaos_base_build(config: ChaosConfig):
    return TapSystem.bootstrap(config.num_nodes, seed=config.seed).snapshot()


@dataclass(frozen=True)
class ChaosConfig(ExperimentConfig):
    """Shape of one chaos run (the fault content lives in the plan)."""

    num_nodes: int = 150
    sessions: int = 4
    rounds: int = 30
    tunnel_length: int = 3
    anchors_per_session: int = 12
    seed: int = 2004

    @classmethod
    def fast(cls) -> "ChaosConfig":
        return cls(num_nodes=100, sessions=3, rounds=12)


def _pick_actors(system: TapSystem, count: int) -> list[tuple[int, int]]:
    """Deterministically pick ``count`` distinct (initiator, server)
    node-id pairs."""
    pairs: list[tuple[int, int]] = []
    used: set[int] = set()
    salt = 0
    while len(pairs) < count:
        a = system.random_node_id(("chaos-init", len(pairs), salt))
        b = system.random_node_id(("chaos-server", len(pairs), salt))
        salt += 1
        if a == b or a in used or b in used:
            continue
        used.update((a, b))
        pairs.append((a, b))
    return pairs


def _outages(outcomes: list[bool]) -> list[int]:
    """Lengths (in rounds) of the failed stretches in ``outcomes``."""
    runs: list[int] = []
    current = 0
    for ok in outcomes:
        if ok:
            if current:
                runs.append(current)
            current = 0
        else:
            current += 1
    if current:
        runs.append(current)
    return runs


def run_chaos(
    plan: FaultPlan,
    config: ChaosConfig = ChaosConfig(),
    policy: ResiliencePolicy | None = ResiliencePolicy(),
    metrics=None,
    tracer=None,
) -> dict:
    """Execute one chaos run; returns the (deterministic) report dict.

    ``policy=None`` is the no-resilience baseline: sessions get zero
    retries and only the structural replica fail-over of the paper.

    The system is a fork of the base snapshot for ``config.seed`` —
    forking with the same seed the base was bootstrapped with yields a
    system byte-identical to a fresh bootstrap, so report digests are
    unchanged while repeated runs (the policy/baseline pair, replay
    verification, job fan-out) skip the N-node construction.
    """
    event_trace = EventTrace()
    from repro.perf import base_snapshot

    token = _chaos_base_token(config)
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        snap = base_snapshot(token, lambda: _chaos_base_build(config))
    system = snap.fork(
        config.seed,
        metrics=metrics, event_trace=event_trace, tracer=tracer,
    )
    seeds = SeedSequenceFactory(config.seed).spawn("chaos", plan.name)

    actors = _pick_actors(system, config.sessions)
    protected = {nid for pair in actors for nid in pair}
    sessions: list[TapSession] = []
    servers: list[SessionServer] = []
    for initiator_id, server_id in actors:
        initiator = system.tap_node(initiator_id)
        server = SessionServer(server_id, handler=lambda req: b"ok:" + req)
        system.deploy_thas(initiator, count=config.anchors_per_session)
        sessions.append(
            TapSession(
                system, initiator, server,
                tunnel_length=config.tunnel_length,
                max_retries=0 if policy is None else policy.max_retries,
                policy=policy,
            )
        )
        servers.append(server)

    # Faults go live only after setup: formation is not under test.
    injector = system.install_faults(plan, protected=protected)

    victims_rng = seeds.pyrandom("victims")
    pending_revivals: dict[int, list[int]] = {}
    outcomes: list[list[bool]] = [[] for _ in sessions]
    degraded_served = [0 for _ in sessions]

    for rnd in range(config.rounds):
        # -- scheduled membership faults -------------------------------
        for node_id in pending_revivals.pop(rnd, []):
            system.revive_node(node_id)
            injector.note("node.recover", node=node_id, round=rnd)
        for ev in plan.node_events:
            if ev.round != rnd:
                continue
            pool = [n for n in system.network.alive_ids if n not in protected]
            count = min(ev.count, len(pool))
            for victim in victims_rng.sample(sorted(pool), count):
                system.fail_node(victim, repair=ev.repair)
                injector.note("node.crash", node=victim, round=rnd)
                if ev.recover_after is not None:
                    pending_revivals.setdefault(
                        rnd + ev.recover_after, []
                    ).append(victim)
        for ev in plan.partitions:
            if ev.round == rnd:
                pool = sorted(
                    n for n in system.network.alive_ids if n not in protected
                )
                isolated = victims_rng.sample(
                    pool, round(ev.fraction * len(pool))
                )
                injector.set_partition(isolated)
            if ev.heal_round == rnd:
                injector.heal_partition()

        # -- one request per session -----------------------------------
        for i, session in enumerate(sessions):
            body = f"r{rnd}".encode()
            expected = b"ok:" + body
            if policy is not None:
                reply = session.request_resilient(body)
                ok = reply.ok and reply.value == expected
                if reply.degraded:
                    degraded_served[i] += 1
            else:
                ok = session.request(body) == expected
            outcomes[i].append(ok)
        event_trace.record(
            "chaos.round", round=rnd,
            ok=[int(o[-1]) for o in outcomes],
        )

    # -- report --------------------------------------------------------
    rows: list[dict] = []
    all_outages: list[int] = []
    for i, session in enumerate(sessions):
        stats = session.stats
        outages = _outages(outcomes[i])
        all_outages.extend(outages)
        rows.append({
            "session": i,
            "requests": stats.requests,
            "ok": sum(outcomes[i]),
            "availability": round(stats.availability, 6),
            "effective_availability": round(stats.effective_availability, 6),
            "recovered": stats.recovered_responses,
            "degraded_served": degraded_served[i],
            "retries": stats.retries,
            "reforms": stats.tunnel_reforms,
            "proactive_reforms": stats.proactive_reforms,
            "breaker_trips": stats.breaker_trips,
            "health_probes": stats.health_probes,
            "backoff_wait_s": round(stats.backoff_wait_s, 6),
            "mttr_rounds": round(sum(outages) / len(outages), 6) if outages else 0.0,
            "worst_outage_rounds": max(outages, default=0),
        })

    total_requests = sum(r["requests"] for r in rows)
    total_ok = sum(r["ok"] for r in rows)
    genuine = sum(s.stats.responses for s in sessions)
    clean = sum(
        s.stats.responses - s.stats.recovered_responses for s in sessions
    )
    summary = {
        "requests": total_requests,
        "ok": total_ok,
        "availability": round(genuine / total_requests, 6) if total_requests else 1.0,
        "effective_availability": round(clean / total_requests, 6) if total_requests else 1.0,
        "degraded_served": sum(degraded_served),
        "recovered": sum(r["recovered"] for r in rows),
        "retries": sum(r["retries"] for r in rows),
        "reforms": sum(r["reforms"] for r in rows),
        "proactive_reforms": sum(r["proactive_reforms"] for r in rows),
        "breaker_trips": sum(r["breaker_trips"] for r in rows),
        "health_probes": sum(r["health_probes"] for r in rows),
        "mttr_rounds": round(sum(all_outages) / len(all_outages), 6) if all_outages else 0.0,
        "worst_outage_rounds": max(all_outages, default=0),
        "faults_injected": dict(sorted(injector.counts.items())),
        "injected_delay_s": round(injector.injected_delay_s, 6),
        "byzantine_nodes": len(injector.byzantine_nodes),
    }

    events_jsonl = event_trace.to_jsonl()
    report = {
        "plan": plan.name,
        "plan_description": plan.description,
        "seed": config.seed,
        "policy": "resilient" if policy is not None else "baseline",
        "config": {
            "num_nodes": config.num_nodes,
            "sessions": config.sessions,
            "rounds": config.rounds,
            "tunnel_length": config.tunnel_length,
        },
        "rows": rows,
        "summary": summary,
    }
    digest = hashlib.sha256(
        canonical_json(report).encode() + events_jsonl.encode()
    ).hexdigest()
    report["digest"] = digest
    report["events_jsonl"] = events_jsonl
    return report


def chaos_job(plan: FaultPlan, config: ChaosConfig, with_policy: bool) -> dict:
    """Top-level (picklable) chaos job: one full :func:`run_chaos`.

    ``with_policy`` selects the default :class:`ResiliencePolicy` or
    the no-resilience baseline — the two arms the CLI compares.
    """
    return run_chaos(
        plan, config, policy=ResiliencePolicy() if with_policy else None
    )


def run_chaos_jobs(
    jobs: list[tuple[FaultPlan, ChaosConfig, bool]],
    workers: int | None = None,
) -> list[dict]:
    """Run independent chaos jobs, optionally fanned over processes.

    Each job is a self-contained deterministic run (its report embeds
    its own digest), so parallel execution cannot change any result —
    only the wall clock.  Results come back in job order.  One base
    overlay per distinct ``(seed, num_nodes)`` is bootstrapped here
    and shipped to the workers; every job forks it.
    """
    from repro.perf import base_snapshot, run_trials

    bases = {}
    for _, config, _ in jobs:
        token = _chaos_base_token(config)
        if token not in bases:
            bases[token] = base_snapshot(
                token, lambda c=config: _chaos_base_build(c)
            )
    return run_trials(chaos_job, jobs, workers, shared=bases)


def canonical_json(report: dict) -> str:
    """Stable serialisation used for digests and ``--report-out``."""
    slim = {k: v for k, v in report.items() if k != "events_jsonl"}
    return json.dumps(slim, sort_keys=True, indent=2) + "\n"


def availability_report(report: dict, baseline: dict | None = None) -> str:
    """Human-readable availability/MTTR summary of one (or two) runs."""
    s = report["summary"]
    lines = [
        f"plan '{report['plan']}' seed {report['seed']}: "
        f"{s['requests']} requests over {report['config']['rounds']} rounds, "
        f"{report['config']['sessions']} sessions",
        f"  availability          {s['availability']:.4f}"
        f"  (effective {s['effective_availability']:.4f}, "
        f"{s['degraded_served']} degraded fallbacks served)",
        f"  MTTR                  {s['mttr_rounds']:.2f} rounds"
        f"  (worst outage {s['worst_outage_rounds']} rounds)",
        f"  repair actions        {s['reforms']} reforms"
        f" ({s['proactive_reforms']} proactive), "
        f"{s['breaker_trips']} breaker trips, "
        f"{s['health_probes']} health probes, {s['retries']} retries",
        f"  faults injected       {s['faults_injected'] or 'none'}",
    ]
    if baseline is not None:
        b = baseline["summary"]
        delta = s["availability"] - b["availability"]
        lines.append(
            f"  no-policy baseline    availability {b['availability']:.4f}, "
            f"MTTR {b['mttr_rounds']:.2f} rounds "
            f"(policy wins by {delta:+.4f})"
        )
    lines.append(f"  digest                {report['digest']}")
    return "\n".join(lines)
