"""Composable, named fault plans.

A :class:`FaultPlan` bundles everything a chaos run injects: a
message-fault spec, a schedule of crash-stop / crash-recover node
events, heal-able partitions, and a Byzantine hop population.  Plans
are frozen data — all sampling happens in the injectors at run time,
on seeded streams — so the same ``(plan, seed)`` pair replays
bit-identically.

The named plans cover the deployed-world regimes the paper's Figures
2/5 do not: ``lossy`` (the acceptance bar: 5% message loss), ``flaky``
(loss + corruption + delay), ``partition``, ``churn`` (crash-recover
cycles), ``byzantine`` and ``smoke`` (a small mixed plan for CI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injectors import (
    ByzantineSpec,
    MessageFaultSpec,
    SimNetFaultInjector,
    SyncFaultInjector,
)


@dataclass(frozen=True)
class NodeFaultEvent:
    """Crash ``count`` nodes at ``round`` (victims sampled at run time
    from the then-alive, unprotected population).

    ``recover_after`` rounds later the victims are revived
    (crash-recover); ``None`` means crash-stop.  ``repair`` runs the
    PAST re-replication path on failure — the deployed-world default;
    set False for the Figure-2 no-repair regime.
    """

    round: int
    count: int = 1
    recover_after: int | None = None
    repair: bool = True

    def __post_init__(self) -> None:
        if self.round < 0 or self.count < 1:
            raise ValueError("round must be >= 0 and count >= 1")
        if self.recover_after is not None and self.recover_after < 1:
            raise ValueError("recover_after must be >= 1 (or None)")


@dataclass(frozen=True)
class StorageFaultEvent:
    """At-rest storage faults injected at ``round``.

    ``bitrot_shares`` stored replicas/shares get one bit flipped
    (victim (key, holder) pairs sampled at run time from whatever the
    store then holds); ``skew_nodes`` holders get their lease clock
    skewed *forward* by ``skew_epochs`` epochs, making them expire
    leases early — the lease-clock-skew fault only the erasure
    backend's lease machinery reacts to.
    """

    round: int
    bitrot_shares: int = 0
    skew_nodes: int = 0
    skew_epochs: int = 2

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if self.bitrot_shares < 0 or self.skew_nodes < 0:
            raise ValueError("fault counts must be >= 0")
        if self.skew_nodes and self.skew_epochs < 1:
            raise ValueError("skew_epochs must be >= 1 when skewing")
        if not self.bitrot_shares and not self.skew_nodes:
            raise ValueError("a storage event must inject something")


@dataclass(frozen=True)
class PartitionEvent:
    """Isolate a ``fraction`` of nodes at ``round``; heal at
    ``heal_round`` (``None`` = never heals)."""

    round: int
    heal_round: int | None = None
    fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if self.heal_round is not None and self.heal_round <= self.round:
            raise ValueError("heal_round must be after round")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic chaos scenario."""

    name: str
    description: str = ""
    messages: MessageFaultSpec = field(default_factory=MessageFaultSpec)
    node_events: tuple[NodeFaultEvent, ...] = ()
    partitions: tuple[PartitionEvent, ...] = ()
    storage_events: tuple[StorageFaultEvent, ...] = ()
    byzantine: ByzantineSpec | None = None
    #: natural run length; runners may override
    rounds_hint: int = 30

    def sync_injector(self, seeds, event_trace=None, metrics=None) -> SyncFaultInjector:
        """Build the synchronous-engine injector for this plan."""
        return SyncFaultInjector(
            self.messages, self.byzantine, seeds,
            event_trace=event_trace, metrics=metrics,
        )

    def simnet_injector(self, seeds, event_trace=None, metrics=None) -> SimNetFaultInjector:
        """Build the discrete-event-fabric injector for this plan."""
        return SimNetFaultInjector(
            self.messages, seeds, event_trace=event_trace, metrics=metrics,
        )


#: The shipped scenarios, keyed by CLI name (``tap-repro chaos --plan``).
NAMED_PLANS: dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(
            name="lossy",
            description="5% message loss (the acceptance bar: retries "
                        "hold availability >= 0.99, no-policy degrades)",
            messages=MessageFaultSpec(drop=0.05),
        ),
        FaultPlan(
            name="flaky",
            description="loss + corruption + delay, the messy-network mix",
            messages=MessageFaultSpec(drop=0.03, corrupt=0.02,
                                      delay=0.10, delay_s=0.08,
                                      duplicate=0.02, reorder=0.05),
        ),
        FaultPlan(
            name="partition",
            description="a quarter of the network splits off mid-run "
                        "and heals later",
            partitions=(PartitionEvent(round=8, heal_round=16, fraction=0.25),),
            rounds_hint=30,
        ),
        FaultPlan(
            name="churn",
            description="crash-recover cycles: nodes crash in waves and "
                        "come back cold",
            node_events=(
                NodeFaultEvent(round=4, count=6, recover_after=6),
                NodeFaultEvent(round=10, count=6, recover_after=6),
                NodeFaultEvent(round=16, count=6, recover_after=6),
                NodeFaultEvent(round=22, count=4),
            ),
            rounds_hint=30,
        ),
        FaultPlan(
            name="byzantine",
            description="10% of hops misbehave: swallow onions, corrupt "
                        "layers, serve stale THAs",
            byzantine=ByzantineSpec(fraction=0.10),
        ),
        FaultPlan(
            name="bitrot",
            description="silent at-rest corruption: stored shares rot "
                        "in waves while a light crash schedule runs",
            node_events=(NodeFaultEvent(round=6, count=3, recover_after=6),),
            storage_events=(
                StorageFaultEvent(round=3, bitrot_shares=8),
                StorageFaultEvent(round=9, bitrot_shares=8),
                StorageFaultEvent(round=15, bitrot_shares=8),
            ),
            rounds_hint=24,
        ),
        FaultPlan(
            name="lease-skew",
            description="holders with fast clocks expire leases early; "
                        "some rot mixed in to keep the crawler honest",
            storage_events=(
                StorageFaultEvent(round=2, skew_nodes=4, skew_epochs=3),
                StorageFaultEvent(round=8, bitrot_shares=4,
                                  skew_nodes=4, skew_epochs=3),
            ),
            rounds_hint=20,
        ),
        FaultPlan(
            name="smoke",
            description="small mixed plan for CI: light loss plus one "
                        "crash-recover wave",
            messages=MessageFaultSpec(drop=0.03),
            node_events=(NodeFaultEvent(round=3, count=3, recover_after=4),),
            rounds_hint=12,
        ),
    )
}


def named_plan(name: str) -> FaultPlan:
    """Look up a shipped plan; raises ``KeyError`` with the catalogue."""
    try:
        return NAMED_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_PLANS))
        raise KeyError(f"unknown fault plan {name!r} (known: {known})") from None
