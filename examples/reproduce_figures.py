#!/usr/bin/env python3
"""Regenerate any figure of the paper from the command line.

Thin convenience wrapper over :mod:`repro.cli` (the same code the
``tap-repro`` console script runs):

    python examples/reproduce_figures.py fig2 --fast
    python examples/reproduce_figures.py all --fast --outdir results/
    python examples/reproduce_figures.py fig6            # paper scale

``--fast`` uses the scaled-down configs (same qualitative shapes,
seconds instead of minutes); omit it for the paper-scale parameters
(10^4 nodes, 5,000 tunnels, sizes up to 10^4 for Figure 6).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:] or ["all", "--fast"]))
