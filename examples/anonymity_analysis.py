#!/usr/bin/env python3
"""Anonymity analysis: what a colluding coalition actually learns.

Builds a TAP deployment with a 10% colluding coalition wired into the
replication manager (it sees every anchor replicated onto coalition
nodes), forms tunnels, and reports the §6 analysis quantitatively:

* how many anchors the coalition discloses, vs the closed form;
* how many tunnels are corrupted (case 1) / first+tail controlled
  (case 2);
* the initiator anonymity metrics: responder guess probability,
  predecessor confidence, degree of anonymity.

Run:  python examples/anonymity_analysis.py
"""

from repro import TapSystem
from repro.adversary.collusion import ColludingAdversary
from repro.analysis.anonymity import (
    degree_of_anonymity,
    predecessor_confidence,
    responder_guess_probability,
    uniform_with_suspect,
)
from repro.analysis.theory import tha_disclosure_prob, tunnel_corruption_prob

NUM_NODES = 500
MALICIOUS_FRACTION = 0.1
TUNNELS = 30
LENGTH = 5


def main() -> None:
    print("== collusion analysis (paper §6) ==")
    system = TapSystem.bootstrap(num_nodes=NUM_NODES, seed=99, replication_factor=3)

    # Every 10th node is in the coalition; it observes replica traffic.
    malicious = set(system.network.alive_ids[:: int(1 / MALICIOUS_FRACTION)])
    adversary = ColludingAdversary(malicious)
    adversary.attach(system.store)
    print(f"{len(malicious)} colluding nodes "
          f"({len(malicious) / NUM_NODES:.0%} of {NUM_NODES})\n")

    tunnels = []
    anchors = 0
    for i in range(TUNNELS):
        owner = system.tap_node(system.random_node_id(("user", i)))
        report = system.deploy_thas(owner, count=LENGTH)
        anchors += len(report.deployed)
        tunnels.append(system.form_tunnel(owner, LENGTH))

    disclosed = sum(
        adversary.knows(h.hop_id) for t in tunnels for h in t.hops
    )
    total_hops = TUNNELS * LENGTH
    corrupted = sum(adversary.tunnel_corrupted(t) for t in tunnels)
    case2 = sum(adversary.first_and_tail_controlled(system, t) for t in tunnels)

    print(f"anchors deployed:        {anchors}")
    print(f"anchors disclosed:       {disclosed}/{total_hops} "
          f"({disclosed / total_hops:.1%}; "
          f"theory {tha_disclosure_prob(MALICIOUS_FRACTION, 3):.1%})")
    print(f"tunnels corrupted (c1):  {corrupted}/{TUNNELS} "
          f"(theory {tunnel_corruption_prob(MALICIOUS_FRACTION, LENGTH, 3):.2%})")
    print(f"first+tail control (c2): {case2}/{TUNNELS} "
          f"(theory {MALICIOUS_FRACTION**2:.2%})")

    print("\n== initiator anonymity metrics ==")
    print(f"responder guess probability: "
          f"{responder_guess_probability(NUM_NODES):.5f} (= 1/(N-1))")
    print(f"malicious-hop predecessor confidence (l={LENGTH}): "
          f"{predecessor_confidence(LENGTH):.2f} "
          f"(cannot tell whether it is the first hop)")

    # Degree of anonymity from the view of a single malicious hop that
    # suspects its predecessor with confidence 1/l.
    dist = uniform_with_suspect(NUM_NODES - 1, predecessor_confidence(LENGTH))
    print(f"degree of anonymity at one malicious hop: "
          f"{degree_of_anonymity(dist):.4f} (1.0 = perfect)")

    print("\nConclusion (paper §7.2): corruption stays rare at p=10%,")
    print("and users should refresh tunnels periodically under churn —")
    print("see benchmarks/test_bench_fig5.py.")


if __name__ == "__main__":
    main()
