#!/usr/bin/env python3
"""Anonymous email with a durable reply path (paper §1's second case).

Alice mails Bob anonymously; the envelope embeds a TAP reply tunnel.
Bob answers *later* — after every hop node of that tunnel has left the
network.  The reply still finds Alice, because TAP reply tunnels name
DHT keys, not nodes; the same scenario kills a remailer-style fixed
return path recorded at send time.

Run:  python examples/anonymous_email.py
"""

import random

from repro import TapSystem
from repro.extensions.anonmail import AnonymousMail, FixedReturnPath


def main() -> None:
    print("== anonymous email with durable replies (paper §1) ==")
    system = TapSystem.bootstrap(num_nodes=300, seed=88, replication_factor=3)
    mail = AnonymousMail(system)

    alice = system.tap_node(system.random_node_id("alice"))
    bob_id = system.random_node_id("bob")
    system.deploy_thas(alice, count=12)

    fwd = system.form_tunnel(alice, length=3)
    rpl = system.form_reply_tunnel(alice, length=3)
    sent = mail.send(alice, bob_id, b"meet at the usual place. -A", fwd, rpl)
    print(f"alice -> bob delivered: {sent.delivered}")

    envelope = mail.inbox(bob_id)[0]
    print(f"bob's envelope body: {envelope.body.decode()!r}")
    print("(the envelope names only THA ids — nothing identifies alice)\n")

    # Record the remailer baseline: the concrete nodes currently
    # serving alice's reply tunnel.
    roots = [system.network.closest_alive(t.hop_id) for t in sent.reply_tunnel.hops]
    fixed = FixedReturnPath.record(roots, 3, random.Random(5))

    print("time passes... every hop node of the reply tunnel leaves:")
    for root in roots:
        system.fail_node(root)
        print(f"  node {hex(root)[:12]}… left (replica repair ran)")

    print("\nbob replies through the remailer-style fixed path:",
          "DELIVERED" if fixed.reply(alice.node_id, b"ok", system.network.is_alive)
          else "LOST (relays gone)")

    trace = mail.reply(bob_id, envelope, b"understood. -B")
    print("bob replies through the TAP reply tunnel:     ",
          "DELIVERED" if trace.success else "LOST")
    assert trace.success
    print(f"\nalice's responses: {[r.decode() for r in sent.responses]}")
    print("reply travelled", trace.overlay_hops, "tunnel hops over the",
          "promoted replica holders of the departed hop nodes.")


if __name__ == "__main__":
    main()
