#!/usr/bin/env python3
"""Hidden service: mutual initiator/responder anonymity over TAP.

The paper hides the *initiator* (§4's responder is a public PAST
node).  This example composes TAP's own primitives into the stronger
property the paper's §8 cites as the neighbouring problem: a provider
serves content through an inbound TAP tunnel published as a DHT
record, a requester calls it through its own tunnels — neither learns
the other's identity, and both directions inherit TAP's fault
tolerance.

Run:  python examples/hidden_service.py
"""

from repro import TapSystem
from repro.extensions.mutual_anonymity import MutualAnonymity

PAGES = {
    b"/": b"<h1>hidden wiki</h1>",
    b"/contact": b"drop box: deploy a THA and whisper",
}


def main() -> None:
    print("== hidden service (mutual anonymity) ==")
    system = TapSystem.bootstrap(num_nodes=300, seed=77, replication_factor=3)
    mutual = MutualAnonymity(system)

    # --- provider side -------------------------------------------------
    provider = system.tap_node(system.random_node_id("provider"))
    system.deploy_thas(provider, count=9)
    service = mutual.publish_service(
        provider, b"hidden-wiki",
        handler=lambda path: PAGES.get(path, b"404"),
    )
    record = mutual.lookup(b"hidden-wiki")
    print(f"provider node:   {provider.node_id:#034x}  (never published)")
    print(f"service record:  entry hop {record.entry_hop_id:#034x}")
    print(f"record key:      {service.record_key:#034x}\n")

    # --- requester side --------------------------------------------------
    requester = system.tap_node(system.random_node_id("requester"))
    system.deploy_thas(requester, count=12)

    for path in (b"/", b"/contact", b"/missing"):
        fwd = system.form_tunnel(requester, length=3)
        rpl = system.form_reply_tunnel(requester, length=3)
        response, trace = mutual.call(requester, b"hidden-wiki", path, fwd, rpl)
        print(f"GET {path.decode():<9} -> {response.decode():<40} "
              f"(requester leg ends at {trace.destination:#034x})")
        assert trace.destination != provider.node_id
        system.retire_tunnel(requester, fwd)
        system.retire_tunnel(requester, rpl)

    # --- fault tolerance -------------------------------------------------
    print("\ncrashing every hop node of the service's inbound tunnel ...")
    for tha in service.inbound.hops:
        system.fail_node(system.network.closest_alive(tha.hop_id))

    fwd = system.form_tunnel(requester, length=3)
    rpl = system.form_reply_tunnel(requester, length=3)
    response, trace = mutual.call(requester, b"hidden-wiki", b"/", fwd, rpl)
    print(f"GET / after failures -> {response.decode()} (success={trace.success})")
    assert response == PAGES[b"/"]
    print(f"\nservice handled {service.served} requests; "
          "neither endpoint ever learned the other.")


if __name__ == "__main__":
    main()
