#!/usr/bin/env python3
"""Anonymous file retrieval — the paper's §4 sample application.

A publisher stores a file in PAST; an initiator retrieves it through a
forward tunnel and gets the (encrypted) file back over a *different*
reply tunnel that terminates at a ``bid`` only the initiator can
recognise.  All cryptography is real: layered symmetric encryption on
both tunnels, a temporary RSA key ``K_I`` wrapping the file key.

The second half replays the retrieval while tunnel hop nodes crash
mid-session — the scenario (long-standing sessions, anonymous email
replies) the paper's introduction motivates TAP with.

Run:  python examples/anonymous_file_retrieval.py
"""

from repro import TapSystem


def describe(result) -> str:
    if not result.success:
        return f"FAILED ({result.failure_reason})"
    return (
        f"ok — {len(result.content)} bytes, "
        f"forward hops {result.forward_trace.overlay_hops} "
        f"(underlying {result.forward_trace.underlying_hops}), "
        f"reply hops {result.reply_trace.overlay_hops} "
        f"(underlying {result.reply_trace.underlying_hops})"
    )


def main() -> None:
    print("== anonymous file retrieval (paper §4) ==")
    system = TapSystem.bootstrap(num_nodes=400, seed=21, replication_factor=3)

    # A publisher inserts a document into PAST under its fileid.
    document = b"PRIVATE REPORT\n" + b"lorem ipsum dolor sit amet\n" * 200
    fid = system.publish(document, name=b"report-2004.txt")
    responder = system.network.closest_alive(fid)
    print(f"file published: fid {fid:#034x}")
    print(f"responder (closest node): {responder:#034x}")

    # The initiator prepares anchors and two distinct tunnels.
    alice = system.tap_node(system.random_node_id("reader"))
    system.deploy_thas(alice, count=12)
    forward = system.form_tunnel(alice, length=3)
    reply = system.form_reply_tunnel(alice, length=3)
    print(f"forward tunnel: {[hex(h)[:10] for h in forward.hop_ids]}")
    print(f"reply tunnel:   {[hex(h)[:10] for h in reply.hop_ids]} "
          f"(bid {reply.bid:#034x})")
    assert set(forward.hop_ids).isdisjoint(reply.hop_ids)

    # Retrieve anonymously.
    result = system.retrieve(alice, fid, forward, reply)
    print(f"retrieval 1: {describe(result)}")
    assert result.success and result.content == document

    # Now the churn scenario: hop nodes on BOTH tunnels crash.
    fwd2 = system.form_tunnel(alice, length=3)
    rpl2 = system.form_reply_tunnel(alice, length=3)
    crashed = []
    for tunnel in (fwd2, rpl2):
        victim = system.network.closest_alive(tunnel.hops[1].hop_id)
        system.fail_node(victim)
        crashed.append(victim)
    print(f"crashed hop nodes: {[hex(v)[:10] for v in crashed]}")

    result2 = system.retrieve(alice, fid, fwd2, rpl2)
    print(f"retrieval 2 (after failures): {describe(result2)}")
    assert result2.success and result2.content == document

    # Count fail-overs that happened along the way.
    promoted = sum(
        r.promoted
        for trace in (result2.forward_trace, result2.reply_trace)
        for r in trace.records
    )
    print(f"hops served by promoted replica candidates: {promoted}")
    print("OK: retrieval survived hop-node failures on both tunnels.")


if __name__ == "__main__":
    main()
