#!/usr/bin/env python3
"""Long-standing anonymous session surviving continuous churn.

The paper's §1 motivating scenario: "current tunneling techniques have
a problem in maintaining long-standing remote login sessions, if a
node on a tunnel fails.  However, TAP can support long-standing remote
login sessions in the face of node failures."

This example opens an SSH-like request/response session over TAP,
then keeps killing the session's own tunnel hop nodes between
commands.  Replica fail-over keeps the *same* tunnels working; if an
entire replica set is wiped out, the session detects the break,
reforms the tunnel and retries — all transparent to the caller.

Run:  python examples/long_session.py
"""

import random

from repro import TapSystem
from repro.core.session import SessionServer, TapSession

COMMANDS = [b"whoami", b"uptime", b"ls /var/log", b"tail syslog",
            b"df -h", b"ps aux", b"netstat", b"last", b"uname -a", b"exit"]


def main() -> None:
    print("== long-standing anonymous session (paper §1 scenario) ==")
    system = TapSystem.bootstrap(num_nodes=300, seed=51, replication_factor=3)

    client = system.tap_node(system.random_node_id("client"))
    system.deploy_thas(client, count=18)

    server = SessionServer(
        system.random_node_id("server"),
        handler=lambda cmd: b"[" + cmd + b" -> ok]",
    )
    session = TapSession(system, client, server, tunnel_length=3)
    print(f"client {client.node_id:#034x}")
    print(f"server {server.node_id:#034x}")
    print(f"forward tunnel {[hex(h)[:10] for h in session.forward.hop_ids]}")
    print(f"reply tunnel   {[hex(h)[:10] for h in session.reply.hop_ids]}\n")

    rng = random.Random(99)
    protected = {client.node_id, server.node_id}
    for i, command in enumerate(COMMANDS):
        # Adversarial ops: before each command, crash a current hop
        # node of the session (alternating tunnels).
        tunnel = session.forward if i % 2 == 0 else session.reply
        tha = tunnel.hops[rng.randrange(len(tunnel.hops))]
        victim = system.network.closest_alive(tha.hop_id)
        note = ""
        if victim not in protected:
            system.fail_node(victim)
            note = f"   [killed hop node {hex(victim)[:10]}…]"

        response = session.request(command)
        status = response.decode() if response else "FAILED"
        print(f"$ {command.decode():<12} -> {status}{note}")

    stats = session.stats
    print(f"\nsession stats: {stats.requests} requests, "
          f"{stats.responses} responses, {stats.retries} retries, "
          f"{stats.tunnel_reforms} tunnel reforms")
    print(f"availability: {stats.availability:.0%}")
    assert stats.availability == 1.0
    session.close()
    print("session closed; anchors deleted from the DHT.")


if __name__ == "__main__":
    main()
