#!/usr/bin/env python3
"""Quickstart: build a TAP deployment and send an anonymous message.

Walks the full §2–§3 lifecycle on a 300-node overlay:

1. bootstrap the Pastry/PAST substrate;
2. generate and anonymously deploy tunnel hop anchors (THAs);
3. form a prefix-scattered tunnel;
4. send a message through the tunnel (layered encryption, one
   symmetric operation per hop);
5. crash a tunnel hop node and send again — the tunnel keeps working,
   which is the point of the paper.

Run:  python examples/quickstart.py
"""

from repro import TapSystem


def main() -> None:
    print("== TAP quickstart ==")
    print("bootstrapping a 300-node Pastry/PAST overlay ...")
    system = TapSystem.bootstrap(num_nodes=300, seed=7, replication_factor=3)

    # Alice is an ordinary overlay node that wants anonymity.
    alice = system.tap_node(system.random_node_id("alice"))
    print(f"initiator: {alice.node_id:#034x} (ip {alice.ip})")

    # §3.2–§3.3: generate node-specific anchors and deploy them
    # anonymously over an Onion-Routing bootstrap path.
    report = system.deploy_thas(alice, count=6)
    print(f"deployed {len(report.deployed)} THAs "
          f"(attempts: {report.attempts}, aborted paths: {report.aborted_paths})")

    # §3.5: form a tunnel from scattered anchors.
    tunnel = system.form_tunnel(alice, length=3)
    print("tunnel hop ids:")
    for hop in tunnel.hops:
        root = system.network.closest_alive(hop.hop_id)
        print(f"  hopid {hop.hop_id:#034x} -> hop node {root:#034x}")

    # §2: send a message to a destination key through the tunnel.
    destination = system.random_node_id("destination")
    trace = system.send(alice, tunnel, destination, b"hello, anonymous world")
    print(f"delivered: {trace.success}  "
          f"(tunnel hops: {trace.overlay_hops}, "
          f"underlying hops: {trace.underlying_hops})")

    # The headline feature: crash every current tunnel hop node ...
    for hop in tunnel.hops:
        victim = system.network.closest_alive(hop.hop_id)
        system.fail_node(victim)
        print(f"crashed hop node {victim:#034x}")

    # ... and the same tunnel still works, served by promoted replicas.
    trace = system.send(alice, tunnel, destination, b"still here")
    print(f"after failures, delivered: {trace.success}  "
          f"(promoted hops: {sum(r.promoted for r in trace.records)}/{trace.overlay_hops})")

    assert trace.success
    print("OK: the tunnel survived the loss of all its hop nodes.")


if __name__ == "__main__":
    main()
