#!/usr/bin/env python3
"""Churn resilience: TAP vs "current tunneling", head to head.

Reproduces the Figure-2 comparison at demo scale, but on the *live*
object-level system rather than the vectorised Monte-Carlo: real
anchors in real node storage, real replica promotion, real layered
crypto on every send.  For each failure fraction we form tunnels both
ways over the same overlay, crash the same nodes, and count survivors.

Run:  python examples/churn_resilience.py
"""

import random

from repro import TapSystem
from repro.adversary.failures import tunnel_functions
from repro.analysis.theory import (
    tunnel_failure_prob_current,
    tunnel_failure_prob_tap,
)
from repro.baselines.fixed_tunnel import form_fixed_tunnel

NUM_NODES = 400
TUNNELS = 12
LENGTH = 3
FRACTIONS = (0.1, 0.2, 0.3)


def main() -> None:
    print("== churn resilience: TAP vs current tunneling ==")
    print(f"{NUM_NODES} nodes, {TUNNELS} tunnels of length {LENGTH}, k=3\n")

    header = (f"{'failed':>8}  {'current ok':>10}  {'tap ok':>7}  "
              f"{'theory(cur)':>11}  {'theory(tap)':>11}")
    print(header)
    print("-" * len(header))

    for fraction in FRACTIONS:
        system = TapSystem.bootstrap(
            num_nodes=NUM_NODES, seed=int(fraction * 100), replication_factor=3
        )
        rng = random.Random(1000 + int(fraction * 100))

        # Form TAP tunnels (each initiator deploys anchors first) and
        # fixed-node tunnels over the same overlay.
        tap_tunnels = []
        for i in range(TUNNELS):
            owner = system.tap_node(system.random_node_id(("owner", i)))
            system.deploy_thas(owner, count=LENGTH * 2)
            tap_tunnels.append((owner, system.form_tunnel(owner, LENGTH)))
        owners = {o.node_id for o, _ in tap_tunnels}
        fixed_tunnels = [
            form_fixed_tunnel(
                [n for n in system.network.alive_ids if n not in owners],
                LENGTH, rng,
            )
            for _ in range(TUNNELS)
        ]

        # Simultaneous failures (no repair beforehand), sparing the
        # initiators so we measure tunnel failure, not initiator death.
        candidates = [n for n in system.network.alive_ids if n not in owners]
        victims = rng.sample(candidates, round(fraction * len(candidates)))
        system.fail_nodes(victims, repair_after=False)

        current_ok = sum(
            t.functions(system.network.is_alive) for t in fixed_tunnels
        )
        tap_ok = 0
        for owner, tunnel in tap_tunnels:
            if tunnel_functions(system, tunnel):
                # double-check with the cryptographic engine
                trace = system.send(owner, tunnel, 42, b"probe")
                assert trace.success
                tap_ok += 1

        print(
            f"{fraction:>8.0%}  {current_ok:>7}/{TUNNELS:<2}  "
            f"{tap_ok:>4}/{TUNNELS:<2}  "
            f"{1 - tunnel_failure_prob_current(fraction, LENGTH):>11.2%}  "
            f"{1 - tunnel_failure_prob_tap(fraction, LENGTH, 3):>11.2%}"
        )

    print("\nTAP tunnels survive because each hop is a replicated DHT key,")
    print("not a fixed node; see benchmarks/test_bench_fig2.py for the")
    print("full 10^4-node Monte-Carlo version of this comparison.")


if __name__ == "__main__":
    main()
