"""Tests for repro.perf: the parallel executor, obs merge, and digests.

The load-bearing property is the digest gate: a runner fanned over N
worker processes must produce byte-identical canonical-JSON rows to a
serial run.  These tests pin it for fig2 (the acceptance example) and
the chaos harness across three worker counts, and unit-test the merge
primitives the gate relies on.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Fig2Config
from repro.experiments.fig2_failures import run_fig2
from repro.obs import EventTrace, MetricsRegistry, SpanTracer
from repro.perf import (
    canonical_json,
    derive_trial_seed,
    effective_workers,
    merge_obs,
    resolve_workers,
    rows_digest,
    run_trials,
)
from repro.perf.merge import TrialObs
from repro.util.rng import derive_seed

WORKER_COUNTS = (1, 2, 3)

TINY_FIG2 = Fig2Config(
    num_nodes=200, num_tunnels=50, num_seeds=3,
    failure_fractions=(0.1, 0.3),
)


def _tiny_chaos():
    from repro.faults import ChaosConfig, named_plan

    return named_plan("lossy"), ChaosConfig(num_nodes=60, sessions=2, rounds=6)


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
def _square(x):  # must be top-level: workers pickle it
    return x * x


def _explode(x):
    raise ZeroDivisionError(x)


class TestRunTrials:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_results_in_submission_order(self, workers):
        args = [(i,) for i in range(7)]
        assert run_trials(_square, args, workers) == [i * i for i in range(7)]

    def test_serial_runs_inline(self):
        # Unpicklable closures are fine at workers=1 (no executor).
        calls = []
        assert run_trials(lambda x: calls.append(x) or x, [(1,), (2,)], 1) == [1, 2]
        assert calls == [1, 2]

    @pytest.mark.parametrize("workers", (1, 2))
    def test_trial_exception_propagates(self, workers):
        with pytest.raises(ZeroDivisionError):
            run_trials(_explode, [(1,), (2,)], workers)

    def test_resolve_workers(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(4, 2) == 2  # clamped to the work
        assert resolve_workers(4, 10) == 4
        assert resolve_workers(-1, 100) >= 1  # all cores

    def test_effective_workers_prefers_explicit(self):
        cfg = Fig2Config(workers=4)
        assert effective_workers(None, cfg) == 4
        assert effective_workers(2, cfg) == 2
        assert effective_workers(None, object()) == 1

    def test_trial_seeds_are_labelled_streams(self):
        assert derive_trial_seed(7, 0) == derive_seed(7, "trial", 0)
        seeds = {derive_trial_seed(7, rep) for rep in range(64)}
        assert len(seeds) == 64


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
class TestDigest:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_numpy_scalars_coerce_to_native(self):
        np = pytest.importorskip("numpy")
        native = canonical_json({"x": 1.5, "n": 3, "v": [1, 2]})
        coerced = canonical_json(
            {"x": np.float64(1.5), "n": np.int64(3), "v": np.array([1, 2])}
        )
        assert native == coerced

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_rows_digest_is_stable_sha256(self):
        rows = [{"a": 1}, {"b": 2.5}]
        assert rows_digest(rows) == rows_digest(list(rows))
        assert len(rows_digest(rows)) == 64
        assert rows_digest(rows) != rows_digest(rows[:1])


# ----------------------------------------------------------------------
# obs merge primitives
# ----------------------------------------------------------------------
class TestObsMerge:
    def test_histogram_merge_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 5.0, 2.0):
            a.histogram("h").observe(v)
        for v in (0.5, 9.0):
            b.histogram("h").observe(v)
        a.merge_from(b)
        h = a.histogram("h")
        assert h.count == 5
        assert h.total == pytest.approx(17.5)
        assert h.min == 0.5 and h.max == 9.0

    def test_counter_and_gauge_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(7)
        a.merge_from(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 7

    def test_span_absorb_remaps_ids_and_parents(self):
        parent, worker = SpanTracer(), SpanTracer()
        pre = parent.start_trace("existing")
        parent.finish(pre)

        root = worker.start_trace("tap.request")
        worker.add_span("leg", parent=root, sim_start=0.0, sim_end=1.0)
        worker.finish(root)

        absorbed = parent.absorb(list(worker.finished))
        assert absorbed == 2
        spans = {s.name: s for s in parent.finished}
        assert spans["leg"].parent_id == spans["tap.request"].span_id
        assert spans["leg"].trace_id == spans["tap.request"].trace_id
        # remapped ids continue the parent's numbering (no collisions)
        ids = [s.span_id for s in parent.finished]
        assert len(ids) == len(set(ids))
        assert spans["tap.request"].span_id > pre.span_id

    def test_event_absorb_resequences(self):
        parent, worker = EventTrace(), EventTrace()
        parent.record("first")
        worker.record("second", x=1)
        worker.record("third")
        assert parent.absorb(list(worker)) == 2
        seqs = [e.seq for e in parent]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3
        assert [e.kind for e in parent] == ["first", "second", "third"]
        assert list(parent.events("second"))[0].fields == {"x": 1}

    def test_merge_obs_skips_none_payloads(self):
        registry = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("c").inc()
        merge_obs(
            [None, TrialObs(metrics=worker)],
            metrics=registry,
        )
        assert registry.counter("c").value == 1


# ----------------------------------------------------------------------
# the digest gate: serial == parallel, byte for byte
# ----------------------------------------------------------------------
class TestDigestGate:
    def test_fig2_digest_identical_across_worker_counts(self):
        digests = {
            rows_digest(run_fig2(TINY_FIG2, workers=w)) for w in WORKER_COUNTS
        }
        assert len(digests) == 1

    def test_fig2_config_workers_field_equivalent_to_argument(self):
        from dataclasses import replace

        by_arg = run_fig2(TINY_FIG2, workers=2)
        by_cfg = run_fig2(replace(TINY_FIG2, workers=2))
        assert rows_digest(by_arg) == rows_digest(by_cfg)

    def test_chaos_digest_identical_across_worker_counts(self):
        from repro.faults import run_chaos_jobs

        plan, config = _tiny_chaos()
        digests = set()
        for w in WORKER_COUNTS:
            reports = run_chaos_jobs([(plan, config, True)], workers=w)
            digests.add(reports[0]["digest"])
        assert len(digests) == 1

    def test_chaos_jobs_return_in_job_order(self):
        from repro.faults import run_chaos_jobs

        plan, config = _tiny_chaos()
        with_policy, baseline = run_chaos_jobs(
            [(plan, config, True), (plan, config, False)], workers=2
        )
        assert with_policy["policy"] == "resilient"
        assert baseline["policy"] == "baseline"

    def test_fig6_obs_identical_across_worker_counts(self):
        from repro.experiments.config import Fig6Config
        from repro.experiments.fig6_latency import run_fig6

        cfg = Fig6Config(network_sizes=(100,), transfers_per_size=3, num_seeds=2)

        def run(workers):
            m, t, e = MetricsRegistry(), SpanTracer(), EventTrace()
            rows = run_fig6(cfg, metrics=m, tracer=t, event_trace=e, workers=workers)
            spans = [
                (s.trace_id, s.span_id, s.parent_id, s.name, s.sim_start, s.sim_end)
                for s in t.finished
            ]
            events = [(ev.seq, ev.kind, sorted(ev.fields.items())) for ev in e]
            return rows_digest(rows), spans, events

        runs = [run(w) for w in WORKER_COUNTS]
        assert runs[0] == runs[1] == runs[2]
