"""Shared-memory snapshot sharding: equivalence, metadata pickling,
lifecycle, and the plain-snapshot fallback.

The contract under test is the one the scale runners lean on: a
:class:`~repro.perf.shm.SharedCompactSnapshot` must be bitwise
indistinguishable from the plain :class:`~repro.perf.compact.
CompactSnapshot` it wraps — same arrays, same restored overlay, same
routed rows — while pickling to metadata only and degrading to plain
snapshots when the platform has no shared memory.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.perf import shm
from repro.perf.compact import CompactOverlay, CompactSnapshot
from repro.perf.shm import SharedCompactSnapshot, share_base, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no multiprocessing.shared_memory"
)


@pytest.fixture
def snap():
    overlay = CompactOverlay.random(400, seed=11)
    overlay.fail_positions(np.arange(0, 400, 7))
    return overlay.snapshot()


@pytest.fixture
def published(snap):
    shared = SharedCompactSnapshot.publish(snap)
    yield shared
    shared.unlink()


class TestEquivalence:
    def test_arrays_bitwise_identical(self, snap, published):
        assert (published.hi == snap.hi).all()
        assert (published.lo == snap.lo).all()
        assert (published.alive == snap.alive).all()

    def test_view_is_zero_copy(self, published):
        view = published.view()
        assert isinstance(view, CompactSnapshot)
        assert view.hi.base is not None  # a view over the segment

    def test_attached_views_are_read_only(self, snap, published):
        clone = pickle.loads(pickle.dumps(published))
        try:
            assert not clone.hi.flags.writeable
            assert not clone.alive.flags.writeable
        finally:
            shm._ATTACHED.pop(published.name, None)

    def test_restore_routes_identically(self, snap, published):
        a = snap.restore()
        b = published.restore()
        src = a.alive_positions()[:32]
        key_hi = np.arange(32, dtype=np.uint64) * np.uint64(7919)
        key_lo = np.arange(32, dtype=np.uint64) * np.uint64(104729)
        ra = a.route_many(src, key_hi, key_lo)
        rb = b.route_many(src, key_hi, key_lo)
        assert (ra.dest_pos == rb.dest_pos).all()
        assert (ra.hops == rb.hops).all()
        assert (ra.success == rb.success).all()

    def test_restore_does_not_mutate_segment(self, snap, published):
        overlay = published.restore()
        overlay.fail_positions(overlay.alive_positions()[:5])
        assert (published.alive == snap.alive).all()

    def test_metadata_mirrors_snapshot(self, snap, published):
        assert published.size == len(snap.hi)
        assert published.b_bits == snap.b_bits
        assert published.leaf_set_size == snap.leaf_set_size
        assert published.membership_epoch == snap.membership_epoch
        assert published.num_alive == snap.num_alive
        assert published.nbytes == 17 * len(snap.hi)


class TestPickle:
    def test_pickle_is_metadata_only(self, published):
        blob = pickle.dumps(published)
        # 400 nodes back 6800 bytes of arrays; metadata stays tiny
        assert len(blob) < 600

    def test_unpickled_attaches_lazily_and_matches(self, snap, published):
        clone = pickle.loads(pickle.dumps(published))
        assert clone._views is None  # nothing attached yet
        try:
            assert (clone.hi == snap.hi).all()
            assert (clone.alive == snap.alive).all()
            assert clone.attach_seconds >= 0.0
        finally:
            # drop the process-local attach memo so later tests that
            # reuse a segment name start clean
            shm._ATTACHED.pop(published.name, None)

    def test_unpickled_clone_is_not_owner(self, snap, published):
        clone = pickle.loads(pickle.dumps(published))
        clone.unlink()  # must be a no-op for non-owners
        assert (published.hi == snap.hi).all()


class TestLifecycle:
    def test_unlink_is_idempotent(self, snap):
        shared = SharedCompactSnapshot.publish(snap)
        shared.unlink()
        shared.unlink()

    def test_publisher_attach_cost_is_zero(self, published):
        assert published.attach_seconds == 0.0


class TestShareBase:
    def test_wraps_snapshots_and_passes_others_through(self, snap):
        bases = {"base": snap, "extra": 42}
        shared, published = share_base(bases)
        try:
            assert isinstance(shared["base"], SharedCompactSnapshot)
            assert shared["extra"] == 42
            assert published == [shared["base"]]
        finally:
            for segment in published:
                segment.unlink()

    def test_unavailable_platform_falls_back(self, snap, monkeypatch):
        monkeypatch.setattr(shm, "_shared_memory", None)
        bases = {"base": snap}
        shared, published = share_base(bases)
        assert shared is bases
        assert published == []

    def test_os_refusal_falls_back_and_cleans_up(self, snap, monkeypatch):
        real_publish = SharedCompactSnapshot.publish.__func__
        calls = {"n": 0}

        def flaky_publish(cls, value):
            calls["n"] += 1
            if calls["n"] > 1:
                raise OSError("no space on /dev/shm")
            return real_publish(cls, value)

        monkeypatch.setattr(
            SharedCompactSnapshot, "publish", classmethod(flaky_publish)
        )
        bases = {"a": snap, "b": snap}
        shared, published = share_base(bases)
        assert shared is bases
        assert published == []
