"""Tests for repro.perf.packet: the route_many equivalence contract.

The load-bearing property (DESIGN.md §6f): the vectorised packet plane
must make *the same forwarding decision* as the scalar
``CompactOverlay.route`` for every packet at every hop — and therefore,
through the PR 6 contract, the same decisions as the object engine via
the materialisation bridge.  Pinned here across churned overlays,
clustered id populations that force the run-scan fallback, packets
whose source fails mid-batch, tiny rings, and the RUN_SCAN_CAP scalar
rescue; plus the batched tunnel stitching and latency-fold kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf.packet as packet
from repro.analysis.idspace import pack_ids
from repro.perf.compact import CompactOverlay
from repro.perf.packet import latency_sums, route_many, route_tunnels
from repro.util.ids import ID_SPACE
from repro.util.rng import SeedSequenceFactory

SEED = 7


def _uniform_overlay(n: int, seed: int, churn: bool = True) -> CompactOverlay:
    overlay = CompactOverlay.random(n, seed=seed)
    if churn:
        rng = np.random.default_rng(seed + 1000)
        alive = np.flatnonzero(overlay.alive)
        overlay.fail_positions(
            rng.choice(alive, size=max(1, n // 10), replace=False)
        )
        fresh = []
        pyrng = SeedSequenceFactory(seed).pyrandom("packet-join")
        while len(fresh) < max(1, n // 20):
            cand = pyrng.getrandbits(128)
            if cand not in overlay:
                fresh.append(cand)
        overlay.join(fresh)
    return overlay


def _clustered_overlay(seed: int) -> CompactOverlay:
    """Half the ring crammed into one deep prefix: missing routing
    cells are common, so most packets hit the run-scan fallback."""
    rng = np.random.default_rng(seed)
    base = 0xABCDEF00 << 96
    ids = sorted(
        {base | int(x) for x in rng.integers(0, 1 << 40, size=150, dtype=np.uint64)}
        | {int(x) << 64 for x in rng.integers(0, 2**60, size=100, dtype=np.uint64)}
    )
    overlay = CompactOverlay.from_ids(ids)
    alive = np.flatnonzero(overlay.alive)
    overlay.fail_positions(rng.choice(alive, size=30, replace=False))
    return overlay


def _sample_packets(overlay: CompactOverlay, rng, count: int):
    alive = np.flatnonzero(overlay.alive)
    src = rng.choice(alive, size=count)
    key_hi = rng.integers(0, 2**64, size=count, dtype=np.uint64)
    key_lo = rng.integers(0, 2**64, size=count, dtype=np.uint64)
    return src, key_hi, key_lo


def _assert_matches_scalar(overlay, batch, src, key_hi, key_lo):
    for i in range(len(batch)):
        src_id = (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]])
        key = (int(key_hi[i]) << 64) | int(key_lo[i])
        ref = overlay.route(src_id, key)
        assert batch.path(i) == ref.path, f"packet {i} path diverges"
        assert bool(batch.success[i]) == ref.success
        assert int(batch.hops[i]) == ref.hops
        assert batch.dest_ids()[i] == ref.destination


class TestRouteManyEquivalence:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_hop_for_hop_vs_scalar_on_churned_overlay(self, seed):
        overlay = _uniform_overlay(300, seed)
        rng = np.random.default_rng(seed + 50)
        src, key_hi, key_lo = _sample_packets(overlay, rng, 60)
        batch = route_many(overlay, src, key_hi, key_lo)
        _assert_matches_scalar(overlay, batch, src, key_hi, key_lo)

    def test_hop_for_hop_vs_object_engine_bridge(self):
        overlay = _uniform_overlay(200, SEED)
        network = overlay.to_network_snapshot().restore()
        rng = np.random.default_rng(SEED)
        src, key_hi, key_lo = _sample_packets(overlay, rng, 40)
        batch = route_many(overlay, src, key_hi, key_lo)
        for i in range(len(batch)):
            src_id = (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]])
            key = (int(key_hi[i]) << 64) | int(key_lo[i])
            bridged = network.route(src_id, key)
            assert bridged.success
            assert batch.path(i) == bridged.path
            assert batch.dest_ids()[i] == bridged.destination

    def test_clustered_ids_exercise_fallback_and_agree(self, monkeypatch):
        overlay = _clustered_overlay(SEED)
        rng = np.random.default_rng(SEED + 1)
        fallback_packets = []
        original = packet._fallback_hops

        def probe(ov, ahi, alo, cpos, kh, kl, row, reach, run_scan_cap):
            fallback_packets.append(len(cpos))
            return original(ov, ahi, alo, cpos, kh, kl, row, reach,
                            run_scan_cap)

        monkeypatch.setattr(packet, "_fallback_hops", probe)
        alive = np.flatnonzero(overlay.alive)
        src = rng.choice(alive, size=60)
        # aim half the keys into the crowded prefix so empty buckets
        # (and therefore the fallback) are guaranteed
        key_hi = rng.integers(0, 2**64, size=60, dtype=np.uint64)
        key_hi[::2] |= np.uint64(0xABCDEF00 << 32)
        key_lo = rng.integers(0, 2**64, size=60, dtype=np.uint64)
        batch = route_many(overlay, src, key_hi, key_lo)
        assert sum(fallback_packets) > 0, "fallback branch never exercised"
        _assert_matches_scalar(overlay, batch, src, key_hi, key_lo)

    def test_run_scan_cap_rescue_is_identical(self):
        overlay = _clustered_overlay(SEED + 2)
        rng = np.random.default_rng(SEED + 3)
        alive = np.flatnonzero(overlay.alive)
        src = rng.choice(alive, size=40)
        key_hi = rng.integers(0, 2**64, size=40, dtype=np.uint64)
        key_hi[::2] |= np.uint64(0xABCDEF00 << 32)
        key_lo = rng.integers(0, 2**64, size=40, dtype=np.uint64)
        vectorised = route_many(overlay, src, key_hi, key_lo)
        # run_scan_cap is a parameter now — no monkeypatching needed
        rescued = route_many(overlay, src, key_hi, key_lo, run_scan_cap=2)
        for i in range(40):
            assert rescued.path(i) == vectorised.path(i)

    def test_dead_sources_fail_in_row_without_poisoning_batch(self):
        overlay = _uniform_overlay(250, SEED, churn=False)
        rng = np.random.default_rng(SEED)
        src, key_hi, key_lo = _sample_packets(overlay, rng, 20)
        overlay.fail_positions(np.unique(src[::2]))
        batch = route_many(overlay, src, key_hi, key_lo)
        dead = ~overlay.alive[src]
        assert dead.any()
        assert not batch.success[dead].any()
        assert (batch.hops[dead] == 0).all()
        assert (batch.dest_pos[dead] == src[dead]).all()
        for i in np.flatnonzero(dead):
            src_id = (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]])
            assert batch.path(int(i)) == [src_id]
        live = np.flatnonzero(~dead)
        for i in live:
            i = int(i)
            src_id = (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]])
            key = (int(key_hi[i]) << 64) | int(key_lo[i])
            ref = overlay.route(src_id, key)
            assert batch.path(i) == ref.path

    @pytest.mark.parametrize("n", (1, 2, 3, 17))
    def test_tiny_rings(self, n):
        overlay = CompactOverlay.bootstrap(n, seed=SEED)
        alive = np.flatnonzero(overlay.alive)
        key_hi, key_lo = pack_ids([123456789 << 60] * n)
        batch = route_many(overlay, alive, key_hi, key_lo)
        _assert_matches_scalar(overlay, batch, alive, key_hi, key_lo)

    def test_empty_batch(self):
        overlay = CompactOverlay.bootstrap(5, seed=SEED)
        batch = route_many(
            overlay,
            np.zeros(0, dtype=np.intp),
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.uint64),
        )
        assert len(batch) == 0

    def test_length_mismatch_raises(self):
        overlay = CompactOverlay.bootstrap(5, seed=SEED)
        with pytest.raises(ValueError):
            route_many(
                overlay,
                np.zeros(2, dtype=np.intp),
                np.zeros(3, dtype=np.uint64),
                np.zeros(3, dtype=np.uint64),
            )

    def test_route_many_ids_convenience(self):
        overlay = _uniform_overlay(100, SEED, churn=False)
        ids = overlay.alive_ids()[:5]
        keys = [(i * 7919) << 100 for i in range(1, 6)]
        batch = overlay.route_many_ids(ids, keys)
        for i, (src_id, key) in enumerate(zip(ids, keys)):
            assert batch.path(i) == overlay.route(src_id, key).path

    @given(
        pool=st.lists(st.integers(0, ID_SPACE - 1), min_size=2, max_size=40,
                      unique=True),
        keys=st.lists(st.integers(0, ID_SPACE - 1), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_agrees_with_scalar(self, pool, keys):
        overlay = CompactOverlay.from_ids(sorted(pool))
        src_pos = np.array(
            [i % overlay.size for i in range(len(keys))], dtype=np.intp
        )
        key_hi, key_lo = pack_ids(keys)
        batch = route_many(overlay, src_pos, key_hi, key_lo)
        _assert_matches_scalar(overlay, batch, src_pos, key_hi, key_lo)


class TestChunkedRouting:
    """Chunked execution must be bitwise-identical to one flat batch
    for any chunk size — the 10^6 memory-bounding mode may not change
    a single row digest (DESIGN.md §6g)."""

    CHUNKS = (1, 7, 60, None)  # 60 == batch size below

    def _batch(self, seed=SEED, count=60):
        overlay = _uniform_overlay(300, seed)
        rng = np.random.default_rng(seed + 50)
        src, key_hi, key_lo = _sample_packets(overlay, rng, count)
        return overlay, src, key_hi, key_lo

    @pytest.mark.parametrize("chunk_size", CHUNKS)
    def test_route_many_digest_identical(self, chunk_size):
        overlay, src, key_hi, key_lo = self._batch()
        flat = route_many(overlay, src, key_hi, key_lo)
        chunked = route_many(overlay, src, key_hi, key_lo,
                             chunk_size=chunk_size)
        assert (chunked.dest_pos == flat.dest_pos).all()
        assert (chunked.hops == flat.hops).all()
        assert (chunked.success == flat.success).all()
        for i in range(len(flat)):
            assert chunked.path(i) == flat.path(i)

    @pytest.mark.parametrize("chunk_size", (1, 7, 20, None))
    def test_dead_sources_straddling_chunk_edge(self, chunk_size):
        overlay = _uniform_overlay(250, SEED, churn=False)
        rng = np.random.default_rng(SEED)
        src, key_hi, key_lo = _sample_packets(overlay, rng, 20)
        # kill sources 6 and 7 — with chunk_size=7 packet 6 ends one
        # chunk and packet 7 opens the next
        overlay.fail_positions(np.unique(src[6:8]))
        batch = route_many(overlay, src, key_hi, key_lo,
                           chunk_size=chunk_size)
        dead = ~overlay.alive[src]
        assert dead[6] and dead[7]
        assert not batch.success[dead].any()
        assert (batch.hops[dead] == 0).all()
        assert (batch.dest_pos[dead] == src[dead]).all()
        for i in np.flatnonzero(~dead):
            i = int(i)
            src_id = (int(overlay.hi[src[i]]) << 64) | int(overlay.lo[src[i]])
            key = (int(key_hi[i]) << 64) | int(key_lo[i])
            assert batch.path(i) == overlay.route(src_id, key).path

    @pytest.mark.parametrize("chunk_size", CHUNKS)
    def test_route_tunnels_failure_isolation_chunked(self, chunk_size):
        overlay = _uniform_overlay(200, SEED, churn=False)
        rng = np.random.default_rng(SEED)
        src, key_hi, key_lo = _sample_packets(overlay, rng, 8)
        overlay.fail_positions(np.unique(src[:2]))
        hop_hi = rng.integers(0, 2**64, size=(8, 2), dtype=np.uint64)
        hop_lo = rng.integers(0, 2**64, size=(8, 2), dtype=np.uint64)
        flat = route_tunnels(overlay, src, hop_hi, hop_lo, key_hi, key_lo)
        chunked = route_tunnels(overlay, src, hop_hi, hop_lo, key_hi, key_lo,
                                chunk_size=chunk_size)
        assert not chunked.success[:2].any()
        assert chunked.success[2:].all()
        assert (chunked.leg_hops == flat.leg_hops).all()
        assert (chunked.hops == flat.hops).all()
        assert (chunked.dest_pos == flat.dest_pos).all()

    @pytest.mark.parametrize("chunk_size", (1, 7, 6, None))
    def test_latency_sums_draw_order_deterministic(self, chunk_size):
        hops = np.array([0, 1, 5, 3, 0, 7])
        flat = latency_sums(np.random.default_rng(5), hops, 0.010, 0.230)
        chunked = latency_sums(np.random.default_rng(5), hops, 0.010, 0.230,
                               chunk_size=chunk_size)
        # bitwise, not approx: chunked draws consume the same stream
        assert (chunked == flat).all()

    def test_chunk_size_validation(self):
        overlay, src, key_hi, key_lo = self._batch(count=4)
        with pytest.raises(ValueError):
            route_many(overlay, src, key_hi, key_lo, chunk_size=0)
        with pytest.raises(ValueError):
            latency_sums(np.random.default_rng(1), np.array([1, 2]),
                         0.0, 1.0, chunk_size=-3)

    def test_scratch_reuse_across_chunks(self):
        overlay, src, key_hi, key_lo = self._batch()
        route_many(overlay, src, key_hi, key_lo, chunk_size=7)
        first = overlay.scratch_nbytes
        route_many(overlay, src, key_hi, key_lo, chunk_size=7)
        assert overlay.scratch_nbytes == first  # no regrowth round trip


class TestTunnelBatch:
    def test_stitched_hops_and_destinations_match_scalar_legs(self):
        overlay = _uniform_overlay(300, SEED)
        rng = np.random.default_rng(SEED)
        tunnels, length = 25, 3
        src, key_hi, key_lo = _sample_packets(overlay, rng, tunnels)
        hop_hi = rng.integers(0, 2**64, size=(tunnels, length), dtype=np.uint64)
        hop_lo = rng.integers(0, 2**64, size=(tunnels, length), dtype=np.uint64)
        result = route_tunnels(
            overlay, src, hop_hi, hop_lo, key_hi, key_lo, keep_legs=True
        )
        assert len(result.legs) == length + 1
        for t in range(tunnels):
            cur = (int(overlay.hi[src[t]]) << 64) | int(overlay.lo[src[t]])
            total = 0
            for j in range(length):
                key = (int(hop_hi[t, j]) << 64) | int(hop_lo[t, j])
                ref = overlay.route(cur, key)
                assert ref.success
                assert int(result.leg_hops[t, j]) == ref.hops
                total += ref.hops
                cur = ref.destination
            key = (int(key_hi[t]) << 64) | int(key_lo[t])
            ref = overlay.route(cur, key)
            total += ref.hops
            assert bool(result.success[t])
            assert int(result.hops[t]) == total
            dest = (int(overlay.hi[result.dest_pos[t]]) << 64) | int(
                overlay.lo[result.dest_pos[t]]
            )
            assert dest == ref.destination

    def test_dead_source_tunnel_fails_without_poisoning_batch(self):
        overlay = _uniform_overlay(200, SEED, churn=False)
        rng = np.random.default_rng(SEED)
        src, key_hi, key_lo = _sample_packets(overlay, rng, 6)
        overlay.fail_positions(np.unique(src[:2]))
        hop_hi = rng.integers(0, 2**64, size=(6, 2), dtype=np.uint64)
        hop_lo = rng.integers(0, 2**64, size=(6, 2), dtype=np.uint64)
        result = route_tunnels(overlay, src, hop_hi, hop_lo, key_hi, key_lo)
        assert not result.success[:2].any()
        assert result.success[2:].all()


class TestLatencySums:
    def test_matches_per_hop_loop(self):
        hops = np.array([0, 1, 5, 3, 0, 7])
        lat = latency_sums(np.random.default_rng(5), hops, 0.010, 0.230)
        draws = np.random.default_rng(5).uniform(0.010, 0.230, size=int(hops.sum()))
        offset = 0
        for i, h in enumerate(hops):
            expected = draws[offset:offset + h].sum()
            offset += h
            assert lat[i] == pytest.approx(expected)
        assert lat[0] == 0.0 and lat[4] == 0.0

    def test_bounds_scale_with_hops(self):
        hops = np.full(500, 6)
        lat = latency_sums(np.random.default_rng(1), hops, 0.010, 0.230)
        assert (lat >= 6 * 0.010).all() and (lat <= 6 * 0.230).all()
        assert lat.mean() == pytest.approx(6 * 0.120, rel=0.05)

    def test_all_zero_hops_draw_nothing(self):
        lat = latency_sums(np.random.default_rng(2), np.zeros(4, dtype=int), 0.0, 1.0)
        assert (lat == 0.0).all()

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            latency_sums(np.random.default_rng(3), np.array([1, -2]), 0.0, 1.0)

    def test_same_stream_is_deterministic(self):
        hops = np.array([2, 4, 8])
        a = latency_sums(np.random.default_rng(9), hops, 0.010, 0.230)
        b = latency_sums(np.random.default_rng(9), hops, 0.010, 0.230)
        assert (a == b).all()
