"""Tests for repro.perf.compact: the compact-engine equivalence contract.

The load-bearing property (DESIGN.md §6d): a :class:`CompactOverlay`'s
derived state — leaf windows, routing cells, replica sets, route
decisions — must be byte-identical (canonical ``rows_digest``) to the
object engine's.  Three layers are pinned here:

1. bootstrap equality against ``PastryNetwork.build`` on the same ids
   (and against the ``TapSystem.bootstrap`` id population);
2. canonical-maintenance equality: after fail/revive/join churn the
   compact state equals a *fresh* build over the current alive set;
3. observable equality: replica sets vs :class:`ReplicatedStore`,
   routes hop-for-hop vs the materialisation bridge, destinations vs
   ``closest_alive``, all under a strict :class:`InvariantAuditor`.

Plus the sharding contract: snapshots pickle, restore isolated
overlays, and fan out through ``run_trials(shared=...)`` with a
workers-independent digest.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import TapSystem
from repro.obs import InvariantAuditor
from repro.past import ReplicatedStore
from repro.pastry import PastryNetwork, RoutingError
from repro.perf import rows_digest, run_trials
from repro.perf.compact import CompactOverlay, CompactSnapshot
from repro.util.ids import ID_SPACE
from repro.util.rng import SeedSequenceFactory

SEED = 7
N = 300


def network_rows(net: PastryNetwork) -> list[dict]:
    """Canonical derived-state rows of the *alive* nodes of an object
    network — the shape both engines are compared in."""
    rows = []
    for nid in sorted(net.alive_ids):
        node = net.nodes[nid]
        rows.append({
            "id": nid,
            "leaf": sorted(node.leaf_set._members),
            "cells": sorted(
                [row, col, entry]
                for (row, col), entry in node.routing_table._cells.items()
            ),
        })
    return rows


def compact_rows(overlay: CompactOverlay) -> list[dict]:
    """The same rows derived straight from the compact arrays."""
    rows = []
    for nid in overlay.alive_ids():
        rows.append({
            "id": nid,
            "leaf": sorted(overlay.leaf_members(nid)),
            "cells": sorted(
                [row, col, entry]
                for (row, col), entry in overlay.node_cells(nid).items()
            ),
        })
    return rows


def churn_script(overlay: CompactOverlay, joins: int = 5) -> None:
    """Deterministic fail/revive/join mix (wide enough to shift leaf
    windows, routing rows, and the alive-view cache)."""
    ids = overlay.alive_ids()
    victims = ids[3::7][:20]
    overlay.fail(victims)
    overlay.revive(victims[:8])
    rng = SeedSequenceFactory(SEED).pyrandom("compact-churn-join")
    fresh = []
    while len(fresh) < joins:
        cand = rng.getrandbits(128)
        if cand not in overlay:
            fresh.append(cand)
    overlay.join(fresh)


class TestBootstrapEquivalence:
    def test_bootstrap_population_matches_object_system(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        system = TapSystem.bootstrap(N, seed=SEED)
        assert overlay.alive_ids() == sorted(system.network.alive_ids)

    def test_bootstrap_digest_matches_object_build(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        net = PastryNetwork.build(overlay.alive_ids())
        assert rows_digest(compact_rows(overlay)) == rows_digest(network_rows(net))

    def test_materialisation_bridge_digest_matches_object_build(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        bridged = overlay.to_network_snapshot().restore()
        net = PastryNetwork.build(overlay.alive_ids())
        assert rows_digest(network_rows(bridged)) == rows_digest(network_rows(net))

    @pytest.mark.parametrize("n", (1, 2, 3, 17))
    def test_tiny_rings(self, n):
        overlay = CompactOverlay.bootstrap(n, seed=SEED)
        net = PastryNetwork.build(overlay.alive_ids())
        assert rows_digest(compact_rows(overlay)) == rows_digest(network_rows(net))

    def test_random_bootstrap_is_sorted_and_unique(self):
        overlay = CompactOverlay.random(5_000, seed=SEED)
        ids = overlay.ids_list()
        assert ids == sorted(set(ids))
        assert overlay.num_alive == 5_000


class TestChurnIsCanonicalMaintenance:
    def test_post_churn_digest_matches_fresh_build(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        churn_script(overlay)
        net = PastryNetwork.build(overlay.alive_ids())
        assert rows_digest(compact_rows(overlay)) == rows_digest(network_rows(net))

    def test_bridge_survives_churn_under_strict_auditor(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        churn_script(overlay)
        bridged = overlay.to_network_snapshot().restore()
        report = InvariantAuditor(bridged).assert_clean("churned bridge")
        assert report.clean
        net = PastryNetwork.build(overlay.alive_ids())
        assert rows_digest(network_rows(bridged)) == rows_digest(network_rows(net))

    def test_epoch_bumps_only_on_change(self):
        overlay = CompactOverlay.bootstrap(50, seed=SEED)
        nid = overlay.alive_ids()[0]
        epoch = overlay.membership_epoch
        overlay.fail([nid])
        assert overlay.membership_epoch == epoch + 1
        overlay.fail_positions(overlay.positions_of([nid]))  # already dead
        assert overlay.membership_epoch == epoch + 1
        overlay.revive([nid])
        assert overlay.membership_epoch == epoch + 2
        overlay.revive_positions(overlay.positions_of([nid]))  # already alive
        assert overlay.membership_epoch == epoch + 2

    def test_alive_count_cache_tracks_every_mutation(self):
        """``num_alive`` is epoch-cached and delta-maintained; it must
        equal a fresh mask sum before and after every mutator,
        including duplicate positions and no-op batches."""
        overlay = CompactOverlay.bootstrap(60, seed=SEED)

        def check():
            assert overlay.num_alive == int(overlay.alive.sum())

        check()  # warm the cache so the delta-carry path is exercised
        victims = overlay.positions_of(overlay.alive_ids()[:5])
        duplicated = np.concatenate([victims, victims[:3]])
        overlay.fail_positions(duplicated)
        check()
        overlay.fail_positions(victims)  # all already dead: no-op
        check()
        overlay.revive_positions(np.concatenate([victims[:2], victims[:2]]))
        check()
        overlay.revive_positions(duplicated)  # partially-alive batch
        check()
        ghost = next(v for v in range(1, ID_SPACE) if v not in overlay)
        overlay.join([ghost])
        check()
        overlay.fail([ghost])
        overlay.join([ghost])  # join-as-revive of a tombstone
        check()

    def test_alive_count_correct_on_cold_cache(self):
        overlay = CompactOverlay.bootstrap(60, seed=SEED)
        # mutate before any num_alive read: the stale cache must not
        # be carried, only recomputed
        overlay.fail_positions(overlay.positions_of(overlay.alive_ids()[:7]))
        assert overlay.num_alive == int(overlay.alive.sum()) == 53

    def test_restore_seeds_alive_count(self):
        overlay = CompactOverlay.bootstrap(60, seed=SEED)
        overlay.fail(overlay.alive_ids()[:4])
        restored = overlay.snapshot().restore()
        assert restored._count_epoch == restored.membership_epoch
        assert restored._alive_count == 56
        assert restored.num_alive == int(restored.alive.sum()) == 56
        restored.fail_positions(restored.positions_of(restored.alive_ids()[:2]))
        assert restored.num_alive == 54

    def test_join_alive_id_raises(self):
        overlay = CompactOverlay.bootstrap(50, seed=SEED)
        taken = overlay.alive_ids()[10]
        with pytest.raises(ValueError, match="already in the overlay"):
            overlay.join([taken])

    def test_join_revives_tombstone_in_place(self):
        overlay = CompactOverlay.bootstrap(50, seed=SEED)
        victim = overlay.alive_ids()[10]
        size = overlay.size
        overlay.fail([victim])
        assert not overlay.is_alive(victim)
        overlay.join([victim])
        assert overlay.is_alive(victim)
        assert overlay.size == size  # no duplicate slot

    def test_unknown_ids_raise_keyerror(self):
        overlay = CompactOverlay.bootstrap(20, seed=SEED)
        ghost = next(
            v for v in range(1, ID_SPACE) if v not in overlay
        )
        with pytest.raises(KeyError, match="unknown node id"):
            overlay.positions_of([ghost])
        with pytest.raises(KeyError, match="not alive"):
            overlay.leaf_members(ghost)
        with pytest.raises(KeyError, match="not alive"):
            overlay.node_cells(ghost)
        assert not overlay.is_alive(ghost)
        assert ghost not in overlay


class TestObservableEquality:
    def test_replica_sets_match_replicated_store(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        net = PastryNetwork.build(overlay.alive_ids())
        store = ReplicatedStore(net, replication_factor=4)
        rng = SeedSequenceFactory(SEED).pyrandom("replica-keys")
        keys = [rng.getrandbits(128) for _ in range(64)]
        assert overlay.replica_ids(keys, 4) == [store.replica_set(k) for k in keys]

    def test_replica_sets_match_after_churn(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        churn_script(overlay)
        net = PastryNetwork.build(overlay.alive_ids())
        store = ReplicatedStore(net, replication_factor=3)
        rng = SeedSequenceFactory(SEED).pyrandom("replica-keys-churn")
        keys = [rng.getrandbits(128) for _ in range(64)]
        assert overlay.replica_ids(keys, 3) == [store.replica_set(k) for k in keys]

    def test_routes_match_bridge_hop_for_hop(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        churn_script(overlay)
        bridged = overlay.to_network_snapshot().restore()
        alive = overlay.alive_ids()
        rng = SeedSequenceFactory(SEED).pyrandom("route-spots")
        for _ in range(50):
            src = alive[rng.randrange(len(alive))]
            key = rng.getrandbits(128)
            compact = overlay.route(src, key)
            reference = bridged.route(src, key)
            assert compact.success and reference.success
            assert compact.path == reference.path
            assert compact.destination == overlay.closest_alive(key)
            assert compact.destination == bridged.closest_alive(key)

    def test_replica_k_clamped_to_alive_population(self):
        overlay = CompactOverlay.bootstrap(5, seed=SEED)
        tables = overlay.replica_ids([123], k=16)
        assert sorted(tables[0]) == overlay.alive_ids()

    def test_replica_query_requires_alive_nodes(self):
        overlay = CompactOverlay.bootstrap(4, seed=SEED)
        overlay.fail(overlay.alive_ids())
        with pytest.raises(RoutingError, match="no alive nodes"):
            overlay.closest_alive(1)

    def test_alive_mask_resolves_by_content_across_joins(self):
        overlay = CompactOverlay.bootstrap(60, seed=SEED)
        sample = overlay.alive_ids()[5:9]
        hi = np.array([v >> 64 for v in sample], dtype=np.uint64).reshape(2, 2)
        lo = np.array([v & ((1 << 64) - 1) for v in sample], dtype=np.uint64).reshape(2, 2)
        assert overlay.alive_mask(hi, lo).all()
        overlay.fail([sample[0]])
        churn_script(overlay, joins=3)  # joins shift array positions
        mask = overlay.alive_mask(hi, lo)
        assert mask.shape == (2, 2)
        assert not mask[0, 0]
        expected = [overlay.is_alive(v) for v in sample]
        assert mask.ravel().tolist() == expected


class TestTieBreaking:
    """Deterministic tie-breaking at exact ring-distance ties and
    id-space wrap, mirroring the PR 6 ``replica_table`` wrap tests —
    the convention everywhere is closest first, smaller id on ties."""

    @staticmethod
    def _oracle(ids, key, k):
        from repro.util.ids import closest_ids

        return closest_ids(ids, key, k)

    def test_replica_positions_exact_tie_prefers_smaller_id(self):
        key = 1 << 100
        d = 1 << 90
        ids = sorted([(key - d) % ID_SPACE, (key + d) % ID_SPACE,
                      (key + 5 * d) % ID_SPACE])
        overlay = CompactOverlay.from_ids(ids)
        assert overlay.replica_ids([key], 2)[0] == self._oracle(ids, key, 2)
        # the equidistant pair must come back smaller-id first
        assert overlay.replica_ids([key], 2)[0][0] == min(
            (key - d) % ID_SPACE, (key + d) % ID_SPACE
        )

    def test_replica_positions_tie_across_the_wrap(self):
        # key at the very top of the ring; its two closest neighbours
        # straddle position 0 of the sorted array at equal distance
        d = 1 << 80
        key = ID_SPACE - 1
        ids = sorted([(key + d) % ID_SPACE, (key - d) % ID_SPACE,
                      1 << 120, 1 << 121])
        overlay = CompactOverlay.from_ids(ids)
        for k in (1, 2, 3, 4):
            assert overlay.replica_ids([key], k)[0] == self._oracle(ids, key, k)

    @given(
        grid=st.lists(st.integers(0, 15), min_size=2, max_size=12, unique=True),
        key_slot=st.integers(0, 16),
        k=st.integers(1, 6),
    )
    @settings(max_examples=150, deadline=None)
    def test_replica_positions_match_oracle_on_tie_heavy_grids(
        self, grid, key_slot, k
    ):
        # ids on a coarse 16-slot grid force exact distance ties and
        # wrap crossings; keys at slot boundaries sort at positions
        # 0/n, and k up to 2k ≈ n exercises the windowed branch edges
        step = ID_SPACE // 16
        ids = sorted(slot * step for slot in grid)
        key = (key_slot * step - 1) % ID_SPACE if key_slot else 0
        overlay = CompactOverlay.from_ids(ids)
        assert overlay.replica_ids([key], k)[0] == self._oracle(ids, key, k)

    def test_route_terminates_at_smaller_id_on_exact_tie(self):
        key = 1 << 100
        d = 1 << 90
        ids = sorted([(key - d) % ID_SPACE, (key + d) % ID_SPACE,
                      (key + 7 * d) % ID_SPACE])
        overlay = CompactOverlay.from_ids(ids)
        winner = min((key - d) % ID_SPACE, (key + d) % ID_SPACE)
        for src in ids:
            assert overlay.route(src, key).destination == winner

    @given(
        grid=st.lists(st.integers(0, 15), min_size=1, max_size=10, unique=True),
        key_slot=st.integers(0, 15),
    )
    @settings(max_examples=100, deadline=None)
    def test_route_destination_matches_oracle_on_tie_heavy_grids(
        self, grid, key_slot
    ):
        step = ID_SPACE // 16
        ids = sorted(slot * step for slot in grid)
        key = key_slot * step + step // 2
        overlay = CompactOverlay.from_ids(ids)
        expected = self._oracle(ids, key, 1)[0]
        for src in ids:
            result = overlay.route(src, key)
            assert result.success
            assert result.destination == expected


class TestSnapshotSharding:
    def test_snapshot_restore_is_isolated(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        snap = overlay.snapshot()
        base_digest = rows_digest(compact_rows(snap.restore()))
        churned = snap.restore()
        churn_script(churned)
        assert rows_digest(compact_rows(snap.restore())) == base_digest
        assert rows_digest(compact_rows(churned)) != base_digest

    def test_snapshot_arrays_are_read_only(self):
        snap = CompactOverlay.bootstrap(30, seed=SEED).snapshot()
        with pytest.raises(ValueError):
            snap.alive[0] = False

    def test_snapshot_pickle_roundtrip(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        churn_script(overlay)
        snap = overlay.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, CompactSnapshot)
        assert rows_digest(compact_rows(clone.restore())) == rows_digest(
            compact_rows(snap.restore())
        )
        assert clone.membership_epoch == snap.membership_epoch

    @pytest.mark.parametrize("workers", (1, 2))
    def test_shared_fanout_digest_is_worker_independent(self, workers):
        snap = CompactOverlay.bootstrap(N, seed=SEED).snapshot()
        token = ("compact-shared", SEED, N)
        digests = run_trials(
            _churned_digest, [(token,), (token,)], workers, shared={token: snap}
        )
        local = snap.restore()
        churn_script(local)
        expected = rows_digest(compact_rows(local))
        assert digests == [expected, expected]

    def test_to_system_snapshot_forks_full_system(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        system = overlay.to_system_snapshot(replication_factor=3).fork(seed=2)
        assert sorted(system.network.alive_ids) == overlay.alive_ids()
        rng = SeedSequenceFactory(SEED).pyrandom("system-spot")
        key = rng.getrandbits(128)
        assert system.store.replica_set(key) == overlay.replica_ids([key], 3)[0]


class TestMemoryAccounting:
    """The memory-lean kernel contract: epoch-cached alive views,
    measured footprints, and reusable scratch buffers."""

    def test_nbytes_is_17_bytes_per_node(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        assert overlay.nbytes == 17 * overlay.size
        assert overlay.snapshot().nbytes == 17 * overlay.size

    def test_alive_positions_matches_flatnonzero_and_caches(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        overlay.fail(overlay.alive_ids()[2::9][:12])
        pos = overlay.alive_positions()
        assert (pos == np.flatnonzero(overlay.alive)).all()
        assert overlay.alive_positions() is pos  # same epoch, same array
        overlay.revive(overlay.ids_list()[2:3])
        fresh = overlay.alive_positions()
        assert fresh is not pos  # epoch bumped, view rebuilt
        assert (fresh == np.flatnonzero(overlay.alive)).all()

    def test_scratch_buf_reuses_and_grows_geometrically(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        a = overlay._scratch_buf("t.x", 100, np.intp)
        b = overlay._scratch_buf("t.x", 60, np.intp)
        assert b.base is a.base or b.base is a  # same backing allocation
        overlay._scratch_buf("t.x", 150, np.intp)
        # growth doubled the 100-element buffer rather than sizing to 150
        assert len(overlay._scratch["t.x"]) == 200
        # dtype change discards rather than aliasing
        c = overlay._scratch_buf("t.x", 10, np.float64)
        assert c.dtype == np.float64

    def test_scratch_nbytes_counts_view_and_buffers(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        overlay._view = None
        overlay._view_epoch = -1
        overlay._scratch.clear()
        assert overlay.scratch_nbytes == 0
        overlay._scratch_buf("t.y", 64, np.int64)
        assert overlay.scratch_nbytes == 64 * 8
        overlay.alive_positions()
        assert overlay.scratch_nbytes > 64 * 8

    def test_routing_scratch_stabilises_across_calls(self):
        overlay = CompactOverlay.bootstrap(N, seed=SEED)
        src = overlay.alive_positions()[:40].copy()
        key_hi = np.arange(40, dtype=np.uint64) * np.uint64(7919)
        key_lo = np.arange(40, dtype=np.uint64) * np.uint64(104729)
        overlay.route_many(src, key_hi, key_lo, chunk_size=7)
        settled = overlay.scratch_nbytes
        for _ in range(3):
            overlay.route_many(src, key_hi, key_lo, chunk_size=7)
        assert overlay.scratch_nbytes == settled


def _churned_digest(token):
    from repro.perf import shared_payload

    snap = shared_payload()[token]
    overlay = snap.restore()
    churn_script(overlay)
    return rows_digest(compact_rows(overlay))
