"""Tests for repro.perf.snapshot: the fork-equivalence contract.

The load-bearing property: a system forked from a base snapshot must
be byte-identical (canonical rows_digest of the full overlay + store
state) to a fresh ``TapSystem.bootstrap(n, seed=rep,
overlay_seed=base)`` — before churn, after identical fail/revive/join
scripts, and under a strict :class:`~repro.obs.InvariantAuditor`.
Forks must also be isolated (mutations never leak to the snapshot,
the base system, or sibling forks) and picklable for worker shipping.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.system import TapSystem
from repro.perf import base_snapshot, rows_digest, run_trials, shared_payload
from repro.perf.snapshot import _SNAPSHOT_CACHE

BASE_SEED = 3
N = 150


@pytest.fixture(autouse=True)
def _clear_snapshot_cache():
    _SNAPSHOT_CACHE.clear()
    yield
    _SNAPSHOT_CACHE.clear()


def overlay_rows(system: TapSystem) -> list[dict]:
    """Canonical full-state rows: overlay structure plus store layout.

    Walking every node forces lazy fork materialisation, so equality
    here really is byte-for-byte equality of the whole system.
    """
    rows = []
    for nid in sorted(system.network.nodes):
        node = system.network.nodes[nid]
        rows.append({
            "id": nid,
            "alive": node.alive,
            "leaf": sorted(node.leaf_set._members),
            "cells": sorted(
                [row, col, entry]
                for (row, col), entry in node.routing_table._cells.items()
            ),
        })
    rows.append({
        "holders": sorted(
            (key, sorted(holders))
            for key, holders in system.store._holders.items()
        ),
    })
    return rows


def system_digest(system: TapSystem) -> str:
    return rows_digest(overlay_rows(system))


def spread_victims(system: TapSystem, count: int) -> list[int]:
    """Victims spaced around the ring.

    Consecutive sorted ids would exceed the leaf half-window — a
    pre-existing limit of the repair model unrelated to forking.
    """
    ids = sorted(system.network.alive_ids)
    return ids[3::9][:count]


def churn_script(system: TapSystem) -> None:
    """A deterministic fail/revive/join sequence (same for any system)."""
    victims = spread_victims(system, 12)
    for victim in victims[:8]:
        system.fail_node(victim)
    for victim in victims[:4]:
        system.revive_node(victim)
    rng = system.seeds.pyrandom("equiv-join")
    for _ in range(3):
        new_id = rng.getrandbits(128)
        while new_id in system.network.nodes:
            new_id = rng.getrandbits(128)
        system.join_node(new_id)


class TestForkEquivalence:
    def test_fork_matches_fresh_bootstrap(self):
        snap = TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()
        for rep in (1, 7):
            fork = snap.fork(seed=rep)
            fresh = TapSystem.bootstrap(N, seed=rep, overlay_seed=BASE_SEED)
            assert system_digest(fork) == system_digest(fresh)

    def test_fork_with_base_seed_matches_base(self):
        # The chaos-runner contract: forking with the seed the base was
        # bootstrapped with reproduces the fresh bootstrap exactly.
        base = TapSystem.bootstrap(N, seed=BASE_SEED)
        digest = system_digest(base)
        fork = base.snapshot().fork(seed=BASE_SEED)
        assert system_digest(fork) == digest

    def test_fork_equivalence_survives_churn(self):
        snap = TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()
        fork = snap.fork(seed=11)
        fresh = TapSystem.bootstrap(N, seed=11, overlay_seed=BASE_SEED)
        fork.enable_auditing(strict=True)
        fresh.enable_auditing(strict=True)
        churn_script(fork)
        churn_script(fresh)
        assert system_digest(fork) == system_digest(fresh)

    def test_forked_behaviour_matches_fresh(self):
        # Same seed streams => identical tunnels and traffic end to end.
        snap = TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()

        def exercise(system):
            owner = system.tap_node(system.random_node_id("equiv"))
            system.deploy_thas(owner, count=6)
            tunnel = system.form_tunnel(owner, 3)
            trace = system.send(owner, tunnel, 42, b"probe")
            return [
                [h.hop_id for h in tunnel.hops],
                trace.success,
                [list(r.underlying_path) for r in trace.records],
            ]

        fork_rows = exercise(snap.fork(seed=5))
        fresh_rows = exercise(TapSystem.bootstrap(N, seed=5, overlay_seed=BASE_SEED))
        assert rows_digest(fork_rows) == rows_digest(fresh_rows)


class TestForkIsolation:
    def test_fork_mutations_do_not_leak(self):
        base = TapSystem.bootstrap(N, seed=BASE_SEED)
        snap = base.snapshot()
        base_digest = system_digest(base)

        fork_a = snap.fork(seed=1)
        fork_b = snap.fork(seed=1)
        churn_script(fork_a)
        assert system_digest(base) == base_digest
        assert system_digest(fork_b) == base_digest

    def test_snapshot_is_picklable(self):
        snap = TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert system_digest(clone.fork(seed=2)) == system_digest(snap.fork(seed=2))

    def test_snapshot_rejects_tap_state(self):
        system = TapSystem.bootstrap(N, seed=BASE_SEED)
        system.tap_node(system.random_node_id())
        with pytest.raises(ValueError, match="before creating TAP state"):
            system.snapshot()

    def test_join_then_fail_on_fork(self):
        # Tombstone semantics: joined-then-failed nodes on a fork behave
        # like on a fresh system; no snapshot resurrection.
        snap = TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()
        fork = snap.fork(seed=4)
        fork.enable_auditing(strict=True)
        rng = fork.seeds.pyrandom("join-fail")
        new_id = rng.getrandbits(128)
        fork.join_node(new_id)
        assert new_id in fork.network.nodes
        fork.fail_node(new_id)
        assert new_id not in fork.network.alive_ids


class TestEpochKeyedCaches:
    def test_route_cache_invalidated_on_membership_change(self):
        system = TapSystem.bootstrap(N, seed=BASE_SEED)
        net = system.network
        ids = net.alive_ids
        src, key = ids[0], ids[len(ids) // 2]
        first = net.route(src, key)
        cached = net.route(src, key)
        assert cached.path == first.path
        # Fail an intermediate hop: the epoch bump must invalidate the
        # cached path and re-route around the dead node.
        victim = first.path[len(first.path) // 2]
        if victim in (src, key):
            victim = first.path[1]
        net.fail(victim)
        rerouted = net.route(src, key)
        assert victim not in rerouted.path

    def test_row_entries_matches_cells(self):
        system = TapSystem.bootstrap(N, seed=BASE_SEED)
        for nid in sorted(system.network.nodes)[:10]:
            table = system.network.nodes[nid].routing_table
            for row in range(4):
                expected = {
                    col: entry
                    for (r, col), entry in table._cells.items()
                    if r == row
                }
                assert table.row_entries(row) == expected

    def test_row_entries_tracks_removal(self):
        system = TapSystem.bootstrap(N, seed=BASE_SEED)
        nid = sorted(system.network.nodes)[0]
        table = system.network.nodes[nid].routing_table
        row, col = next(iter(table._cells))
        victim = table.lookup(row, col)
        table.remove(victim)
        assert col not in table.row_entries(row)
        assert victim not in table.entries


def _shared_probe(token):
    payload = shared_payload()
    snap = payload.get(token) if payload else None
    if snap is None:
        return None
    return rows_digest(overlay_rows(snap.fork(seed=9)))


class TestSharedSnapshots:
    def test_base_snapshot_caches_by_token(self):
        calls = []

        def build():
            calls.append(1)
            return TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()

        a = base_snapshot(("t", 1), build)
        b = base_snapshot(("t", 1), build)
        assert a is b
        assert len(calls) == 1
        base_snapshot(("t", 2), build)
        assert len(calls) == 2

    @pytest.mark.parametrize("workers", (1, 2))
    def test_shared_payload_reaches_trials(self, workers):
        snap = TapSystem.bootstrap(N, seed=BASE_SEED).snapshot()
        token = ("shared-test", BASE_SEED, N)
        digests = run_trials(
            _shared_probe, [(token,), (token,)], workers, shared={token: snap}
        )
        expected = rows_digest(overlay_rows(snap.fork(seed=9)))
        assert digests == [expected, expected]

    def test_shared_payload_restored_after_serial_run(self):
        assert shared_payload() is None
        run_trials(_shared_probe, [(("none",),)], 1, shared={})
        assert shared_payload() is None
