"""Tests for the metrics registry: counters, gauges, histograms."""

import json

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5
        assert g.snapshot() == {"type": "gauge", "value": 11.5}


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        assert h.count == 100
        assert h.total == 5050
        assert h.min == 1 and h.max == 100
        assert h.mean == 50.5

    def test_percentiles_on_uniform_samples(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert abs(h.percentile(50) - 50.5) < 1.0
        assert abs(h.percentile(95) - 95.0) < 1.5

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.snapshot() == {"type": "histogram", "count": 0}

    def test_decimation_bounds_memory_keeps_exact_aggregates(self):
        h = Histogram("h", max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(v)
        # aggregates stay exact while retained samples stay bounded
        assert h.count == n
        assert h.total == sum(range(n))
        assert h.min == 0 and h.max == n - 1
        assert len(h._samples) <= 64
        # decimated percentiles remain representative of the stream
        assert abs(h.percentile(50) - (n - 1) / 2) < 0.1 * n

    def test_snapshot_has_percentile_keys(self):
        h = Histogram("h")
        h.observe(3.0)
        snap = h.snapshot()
        for key in ("count", "sum", "mean", "min", "max", "p50", "p95", "p99"):
            assert key in snap

    def test_percentile_accepts_presorted_view(self):
        h = Histogram("h")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        ordered = sorted(h._samples)
        for q in (0, 25, 50, 95, 100):
            assert h.percentile(q, ordered) == h.percentile(q)

    @staticmethod
    def _decimated_zeros(n=10_000):
        h = Histogram("h", max_samples=64)
        for _ in range(n):
            h.observe(0.0)
        assert h._stride > 1  # the premise: this source is decimated
        return h

    @staticmethod
    def _undecimated_hundreds(n=50):
        h = Histogram("h", max_samples=64)
        for _ in range(n):
            h.observe(100.0)
        assert h._stride == 1
        return h

    def test_merge_is_stride_aware(self):
        """Regression: concatenating retained samples from sources with
        different strides over-weighted the finer (undecimated) source.
        Here the 100s are ~0.5% of the merged stream, so every
        percentile below p99 must still be 0."""
        merged = self._decimated_zeros()
        merged.merge(self._undecimated_hundreds())
        assert merged.count == 10_050
        assert merged.total == 5_000.0
        assert merged.max == 100.0  # aggregates stay exact
        assert merged.percentile(50) == 0.0
        assert merged.percentile(95) == 0.0  # was 100.0 before the fix

    def test_merge_stride_bias_both_orders(self):
        """A decimated and an undecimated worker merge to the same
        retained distribution in either order."""
        ab = self._decimated_zeros()
        ab.merge(self._undecimated_hundreds())
        ba = self._undecimated_hundreds()
        ba.merge(self._decimated_zeros())
        assert ab.count == ba.count == 10_050
        assert sorted(ab._samples) == sorted(ba._samples)
        assert ab._stride == ba._stride
        for q in (50, 90, 95, 99):
            assert ab.percentile(q) == ba.percentile(q)


class TestMetricsRegistry:
    def test_instruments_created_on_first_use(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("b") is m.gauge("b")
        assert m.histogram("c") is m.histogram("c")

    def test_timer_observes_duration(self):
        m = MetricsRegistry()
        with m.timer("work_s"):
            pass
        h = m.histogram("work_s")
        assert h.count == 1
        assert h.min >= 0.0

    def test_snapshot_is_sorted_and_json_round_trips(self):
        m = MetricsRegistry()
        m.counter("z.count").inc()
        m.gauge("a.level").set(2)
        m.histogram("m.hops").observe(4)
        snap = m.snapshot()
        assert list(snap) == sorted(snap)
        assert json.loads(m.to_json()) == snap

    def test_rows_are_rectangular(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        m.histogram("h").observe(1.0)
        rows = m.rows()
        assert {row["metric"] for row in rows} == {"c", "h"}
        for row in rows:
            assert tuple(row) == MetricsRegistry.ROW_COLUMNS

    def test_reset_clears_all_instruments(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.reset()
        assert m.snapshot() == {}
        assert m.counter("c").value == 0
