"""Tests for the invariant auditor: clean passes and injected faults."""

import random

import pytest

from repro.obs import InvariantAuditor, InvariantViolationError, MetricsRegistry
from repro.past.replication import ReplicatedStore
from repro.past.storage import StoredObject
from repro.util.ids import random_id
from tests.conftest import build_network


@pytest.fixture()
def network():
    return build_network(50, seed=31)


@pytest.fixture()
def store(network):
    return ReplicatedStore(network, replication_factor=3)


class TestCleanAudits:
    def test_fresh_overlay_is_clean(self, network):
        report = InvariantAuditor(network).assert_clean("fresh")
        assert report.clean
        assert report.checks_run == 3  # sorted-alive, leaf-sets, liveness

    def test_store_check_included_when_given(self, network, store):
        for seed in range(5):
            store.insert(random_id(random.Random(seed)), b"v")
        report = InvariantAuditor(network, store).assert_clean("with store")
        assert report.checks_run == 4

    def test_clean_through_membership_events(self, network, store):
        keys = [random_id(random.Random(s)) for s in range(10)]
        for key in keys:
            store.insert(key, b"v")
        auditor = InvariantAuditor(network, store)
        rng = random.Random(41)
        for _ in range(5):
            victim = rng.choice(network.alive_ids)
            network.fail(victim)
            store.on_fail(victim)
            auditor.assert_clean(f"fail {victim:#x}")
        assert len(auditor.history) == 5

    def test_liveness_check_skipped_for_lazy_networks(self):
        network = build_network(30, seed=32, eager_repair=False)
        auditor = InvariantAuditor(network)
        assert not auditor.check_liveness
        report = auditor.run("lazy")
        assert report.checks_run == 2

    def test_report_str_mentions_context(self, network):
        report = InvariantAuditor(network).run("my-event")
        assert "my-event" in str(report)
        assert "clean" in str(report)


class TestInjectedViolations:
    def test_alive_flag_divergence_detected(self, network):
        victim = network.alive_ids[7]
        # Flip the per-node flag without going through network.fail:
        # the _sorted_alive index now lies.
        network.nodes[victim].alive = False
        report = InvariantAuditor(network).run("flag flip")
        assert any("sorted-alive" in v for v in report.violations)

    def test_missing_immediate_neighbour_detected(self, network):
        ids = network.alive_ids
        node = network.nodes[ids[3]]
        node.leaf_set.remove(ids[4])
        report = InvariantAuditor(network).run("broken leaf set")
        assert any("leaf-symmetry" in v for v in report.violations)

    def test_dead_reference_detected(self, network):
        victim = network.alive_ids[5]
        holder = network.nodes[network.alive_ids[6]]
        network.fail(victim)
        holder.leaf_set.add(victim)  # resurrect a stale reference
        report = InvariantAuditor(network).run("stale leaf")
        assert any("leaf-liveness" in v for v in report.violations)

    def test_index_without_copy_detected(self, network, store):
        key = random_id(random.Random(1))
        store.insert(key, b"v")
        holder = next(iter(store.holders(key)))
        store.storage_of(holder).drop(key)  # bypass _unplace
        report = InvariantAuditor(network, store).run("dropped copy")
        assert any("storage-index" in v for v in report.violations)

    def test_copy_without_index_detected(self, network, store):
        rogue = network.alive_ids[0]
        store.storage_of(rogue).insert(StoredObject(777, b"stale"))
        report = InvariantAuditor(network, store).run("rogue copy")
        assert any("storage-index" in v for v in report.violations)

    def test_assert_clean_raises(self, network):
        victim = network.alive_ids[7]
        network.nodes[victim].alive = False
        auditor = InvariantAuditor(network)
        with pytest.raises(InvariantViolationError):
            auditor.assert_clean("bad")
        # the failing report is still recorded for post-mortems
        assert auditor.history and not auditor.history[-1].clean


class TestMetricsIntegration:
    def test_audit_counters(self, network):
        metrics = MetricsRegistry()
        auditor = InvariantAuditor(network, metrics=metrics)
        auditor.run("one")
        network.nodes[network.alive_ids[2]].alive = False
        auditor.run("two")
        assert metrics.counter("obs.audit.runs").value == 2
        assert metrics.counter("obs.audit.violations").value >= 1
