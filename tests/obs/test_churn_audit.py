"""Churn property test: every invariant holds across sustained churn.

200 random membership events (fail / join / revive) hit a live TAP
system with the :class:`repro.obs.InvariantAuditor` running after each
one.  Auditing is non-strict so a failure reports *every* violated
event, not just the first.
"""

import random

from repro.core.system import TapSystem
from repro.util.ids import random_id

EVENTS = 200
MIN_ALIVE = 40


def test_churn_sequence_audits_clean():
    system = TapSystem.bootstrap(num_nodes=80, seed=17, replication_factor=3)
    auditor = system.enable_auditing(strict=False)
    alice = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(alice, count=8)

    rng = random.Random(99)
    id_rng = random.Random(4321)
    dead: list[int] = []
    counts = {"fail": 0, "join": 0, "revive": 0}
    for _ in range(EVENTS):
        alive = system.network.alive_ids
        choices = ["join"]
        if len(alive) > MIN_ALIVE:
            choices.append("fail")
        if dead:
            choices.append("revive")
        kind = rng.choice(choices)
        counts[kind] += 1
        if kind == "fail":
            victim = rng.choice([n for n in alive if n != alice.node_id])
            system.fail_node(victim)
            dead.append(victim)
        elif kind == "revive":
            system.revive_node(dead.pop(rng.randrange(len(dead))))
        else:
            new_id = random_id(id_rng)
            while new_id in system.network.nodes:
                new_id = random_id(id_rng)
            system.join_node(new_id)

    assert len(auditor.history) == EVENTS
    bad = [report for report in auditor.history if not report.clean]
    assert not bad, "\n".join(str(report) for report in bad)
    # every event class was actually exercised
    assert all(counts[kind] > 0 for kind in counts), counts

    # the overlay is still functional: a tunnel formed from anchors
    # deployed before the churn still delivers end to end
    tunnel = system.form_tunnel(alice, length=3)
    trace = system.send(alice, tunnel, 4242, b"post-churn")
    assert trace.success
