"""Tests for the causal span tracer (repro.obs.spans)."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    PHASES,
    SpanContext,
    SpanTracer,
    phase_of,
    redact_attrs,
)
from repro.obs.spans import HOP_KEYS, INITIATOR_KEYS, RESPONDER_KEYS


class TestIds:
    def test_span_ids_monotone_across_traces(self):
        tr = SpanTracer()
        a = tr.start_trace("a")
        b = tr.start_trace("b")
        c = tr.start_span("c", parent=b)
        assert [a.span_id, b.span_id, c.span_id] == [0, 1, 2]
        assert a.trace_id != b.trace_id
        assert c.trace_id == b.trace_id and c.parent_id == b.span_id

    def test_ids_stay_monotone_after_clear(self):
        tr = SpanTracer()
        tr.finish(tr.start_trace("a"))
        tr.clear()
        assert tr.completed == 0 and len(tr) == 0
        s = tr.start_trace("b")
        assert s.span_id == 1 and s.trace_id == 1

    def test_empty_tracer_is_truthy(self):
        """Regression: ``__len__`` made an empty tracer falsy, so every
        ``if tracer:`` guard skipped the first spans of a run."""
        tr = SpanTracer()
        assert len(tr) == 0
        assert bool(tr)
        assert not bool(NULL_TRACER)


class TestContextPropagation:
    def test_cm_nests_on_stack(self):
        tr = SpanTracer()
        with tr.span("outer") as outer:
            assert tr.current() is outer
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert tr.current() is None
        assert len(tr) == 2

    def test_start_span_attaches_to_stack_top(self):
        tr = SpanTracer()
        with tr.span("outer") as outer:
            child = tr.start_span("child")
            assert child.parent_id == outer.span_id
            tr.finish(child)

    def test_explicit_parent_beats_stack(self):
        tr = SpanTracer()
        root = tr.start_trace("root")
        with tr.span("other"):
            child = tr.start_span("child", parent=root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_parent_accepts_context_tuple(self):
        tr = SpanTracer()
        child = tr.start_span("c", parent=SpanContext(7, 3))
        assert child.trace_id == 7 and child.parent_id == 3

    def test_start_trace_ignores_stack(self):
        tr = SpanTracer()
        with tr.span("outer") as outer:
            root = tr.start_trace("fresh")
            assert root.parent_id is None
            assert root.trace_id != outer.trace_id


class TestTiming:
    def test_wall_duration_from_clock(self):
        ticks = iter([1.0, 3.5])
        tr = SpanTracer(clock=lambda: next(ticks))
        s = tr.start_trace("x")
        tr.finish(s)
        assert s.wall_duration == pytest.approx(2.5)
        assert s.duration == pytest.approx(2.5)

    def test_sim_duration_preferred(self):
        tr = SpanTracer()
        s = tr.start_trace("x").set_sim(10.0, 12.0)
        tr.finish(s)
        assert s.sim_duration == pytest.approx(2.0)
        assert s.duration == pytest.approx(2.0)

    def test_add_span_records_elapsed(self):
        tr = SpanTracer()
        root = tr.start_trace("r")
        leg = tr.add_span("dht.route", parent=root, sim_start=0.0, sim_end=1.5)
        assert leg in list(tr)
        assert leg.duration == pytest.approx(1.5)

    def test_unfinished_span_has_no_wall_duration(self):
        tr = SpanTracer()
        s = tr.start_trace("x")
        with pytest.raises(ValueError):
            _ = s.wall_duration


class TestRingBound:
    def test_capacity_bounds_finished(self):
        tr = SpanTracer(capacity=4)
        for i in range(10):
            tr.finish(tr.start_trace(f"s{i}"))
        assert len(tr) == 4
        assert tr.completed == 10
        assert tr.dropped == 6

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)


class TestChromeExport:
    def _tracer(self):
        tr = SpanTracer()
        root = tr.start_trace(
            "tap.forward", observer="initiator", initiator=1, destination=9
        ).set_sim(0.0, 2.0)
        tr.add_span(
            "dht.route", parent=root, sim_start=0.0, sim_end=2.0,
            observer="hop", src=1, dst=9, links=3,
        )
        tr.finish(root)
        return tr

    def test_event_structure(self):
        events = self._tracer().chrome_events()
        assert len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert set(ev) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
            assert {"trace_id", "span_id", "parent_id", "clock"} <= set(ev["args"])
        route = next(e for e in events if e["name"] == "dht.route")
        assert route["cat"] == "routing"
        assert route["dur"] == pytest.approx(2.0 * 1e6)
        assert route["args"]["clock"] == "sim"

    def test_export_document_round_trips(self):
        doc = json.loads(self._tracer().to_json())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["dropped_spans"] == 0

    def test_dump_writes_file(self, tmp_path):
        path = tmp_path / "t.json"
        assert self._tracer().dump(path) == 2
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_traces_grouping(self):
        tr = self._tracer()
        groups = tr.traces()
        assert len(groups) == 1
        (spans,) = groups.values()
        assert {s.name for s in spans} == {"tap.forward", "dht.route"}


class TestRedaction:
    def test_initiator_loses_responder_and_hops(self):
        attrs = {"initiator": 1, "destination": 9, "hop_node": 5, "links": 2}
        kept = redact_attrs("initiator", attrs)
        assert kept == {"initiator": 1, "links": 2}

    def test_exit_loses_initiator(self):
        attrs = {"initiator": 1, "responder": 9, "delivered": True, "links": 2}
        kept = redact_attrs("exit", attrs)
        assert kept == {"responder": 9, "links": 2}

    def test_hop_loses_both_endpoints_and_termination_markers(self):
        attrs = {
            "initiator": 1, "responder": 9, "hop_node": 5,
            "delivered": True, "matched_bid": 77, "links": 2,
        }
        kept = redact_attrs("hop", attrs)
        assert kept == {"hop_node": 5, "links": 2}

    def test_untagged_treated_as_hop(self):
        assert redact_attrs(None, {"initiator": 1, "x": 2}) == {"x": 2}

    def test_no_record_links_initiator_to_responder(self):
        """The anonymity invariant: over a full redacted export, no
        single span record carries both an initiator and responder key."""
        tr = SpanTracer()
        with tr.span("tap.forward", observer="initiator",
                     initiator=1, tunnel_length=3):
            with tr.span("tap.hop", observer="hop", hop_node=5):
                tr.finish(tr.start_span(
                    "onion.peel", observer="hop", hop_node=5,
                    delivered=True,
                ))
        root = tr.start_span("tap.reply", observer="exit",
                             responder=9, bid=1234)
        tr.finish(root)
        for ev in tr.chrome_events(redact=True):
            keys = set(ev["args"])
            assert not (keys & INITIATOR_KEYS and keys & RESPONDER_KEYS), ev
        # and hop records name no endpoint at all
        hop_events = [
            e for e in tr.chrome_events(redact=True)
            if e["args"].get("observer") == "hop"
        ]
        assert hop_events
        for ev in hop_events:
            assert not set(ev["args"]) & (INITIATOR_KEYS | RESPONDER_KEYS)

    def test_unredacted_export_keeps_everything(self):
        tr = SpanTracer()
        tr.finish(tr.start_trace("x", observer="hop", initiator=1, bid=2))
        (ev,) = tr.chrome_events(redact=False)
        assert ev["args"]["initiator"] == 1 and ev["args"]["bid"] == 2

    def test_key_sets_disjoint(self):
        assert not INITIATOR_KEYS & RESPONDER_KEYS
        assert not INITIATOR_KEYS & HOP_KEYS
        assert not RESPONDER_KEYS & HOP_KEYS


class TestPhases:
    def test_known_prefixes(self):
        assert phase_of("onion.peel") == "crypto"
        assert phase_of("dht.route") == "routing"
        assert phase_of("exit.direct") == "routing"
        assert phase_of("hint.probe") == "hint-probe"
        assert phase_of("hint.direct") == "hint-probe"
        assert phase_of("failover.repair") == "repair"
        assert phase_of("session.reform") == "repair"
        assert phase_of("tap.forward") == "other"

    def test_all_phases_enumerated(self):
        assert set(PHASES) == {"crypto", "routing", "hint-probe", "repair", "other"}


class TestNullTracer:
    def test_falsy_and_absorbing(self):
        nt = NullTracer()
        assert not nt
        span = nt.start_trace("x", a=1)
        assert span.set(b=2) is span
        assert nt.finish(span) is span
        with nt.span("y") as s:
            assert s.set_sim(0, 1) is s
        assert len(nt) == 0
        assert list(nt) == []
        assert nt.traces() == {}
        assert nt.chrome_events() == []

    def test_dump_writes_empty_document(self, tmp_path):
        path = tmp_path / "null.json"
        assert NULL_TRACER.dump(path) == 0
        assert json.loads(path.read_text())["traceEvents"] == []
