"""Tests for critical-path reconstruction (repro.obs.critical_path)."""

import pytest

from repro.obs import SpanTracer
from repro.obs.critical_path import (
    SpanRecord,
    build_trees,
    critical_path,
    load_trace_file,
    phase_breakdown,
    records_from_events,
    records_from_tracer,
    render_critical_path,
    summarize_trace_file,
)


def _rec(name, ts, dur, span_id, parent_id=None, trace_id=1, **args):
    return SpanRecord(
        name=name, cat="", ts=ts, dur=dur, trace_id=trace_id,
        span_id=span_id, parent_id=parent_id, args=args,
    )


def _sample_tracer() -> SpanTracer:
    """One trace: root 0-4s, route child 0-3s with nested peel 2-3s,
    then a probe child 3-4s."""
    tr = SpanTracer()
    root = tr.start_trace("tap.forward", observer="initiator").set_sim(0.0, 4.0)
    route = tr.add_span("dht.route", parent=root, sim_start=0.0, sim_end=3.0,
                        links=3)
    tr.add_span("onion.peel", parent=route, sim_start=2.0, sim_end=3.0)
    tr.add_span("hint.probe", parent=root, sim_start=3.0, sim_end=4.0, links=1)
    tr.finish(root)
    return tr


class TestRecords:
    def test_records_from_events_converts_microseconds(self):
        recs = records_from_events([
            {"ph": "X", "name": "dht.route", "cat": "routing",
             "ts": 1_000_000, "dur": 500_000,
             "args": {"trace_id": 3, "span_id": 7, "parent_id": None}},
        ])
        (rec,) = recs
        assert rec.ts == pytest.approx(1.0)
        assert rec.dur == pytest.approx(0.5)
        assert rec.end == pytest.approx(1.5)
        assert (rec.trace_id, rec.span_id, rec.parent_id) == (3, 7, None)

    def test_non_complete_events_skipped(self):
        recs = records_from_events([
            {"ph": "M", "name": "process_name"},
            {"ph": "X", "name": "x", "ts": 0, "dur": 1,
             "args": {"trace_id": 1, "span_id": 1}},
        ])
        assert len(recs) == 1

    def test_records_from_tracer(self):
        recs = records_from_tracer(_sample_tracer())
        assert len(recs) == 4
        assert {r.name for r in recs} == {
            "tap.forward", "dht.route", "onion.peel", "hint.probe"
        }


class TestTrees:
    def test_build_trees_links_children(self):
        roots = build_trees(records_from_tracer(_sample_tracer()))
        (root,) = roots
        assert root.name == "tap.forward"
        assert [c.name for c in root.children] == ["dht.route", "hint.probe"]
        assert [c.name for c in root.children[0].children] == ["onion.peel"]

    def test_orphan_becomes_root(self):
        recs = [_rec("a", 0, 1, span_id=1),
                _rec("b", 0, 1, span_id=2, parent_id=99)]
        roots = build_trees(recs)
        assert {r.name for r in roots} == {"a", "b"}

    def test_same_span_id_in_other_trace_not_linked(self):
        recs = [_rec("a", 0, 1, span_id=1, trace_id=1),
                _rec("b", 0, 1, span_id=2, parent_id=1, trace_id=2)]
        assert len(build_trees(recs)) == 2

    def test_self_time_subtracts_children(self):
        (root,) = build_trees(records_from_tracer(_sample_tracer()))
        assert root.dur == pytest.approx(4.0)
        assert root.self_time == pytest.approx(0.0)  # 4 - (3 + 1)
        route = root.children[0]
        assert route.self_time == pytest.approx(2.0)  # 3 - 1 (peel)

    def test_walk_visits_all(self):
        (root,) = build_trees(records_from_tracer(_sample_tracer()))
        assert len(list(root.walk())) == 4


class TestCriticalPath:
    def test_descends_latest_ending_child(self):
        (root,) = build_trees(records_from_tracer(_sample_tracer()))
        chain = critical_path(root)
        # the probe ends at 4.0, later than the route's 3.0
        assert [s.name for s in chain] == ["tap.forward", "hint.probe"]

    def test_tie_broken_by_duration(self):
        a = _rec("short", 2, 1, span_id=2, parent_id=1)
        b = _rec("long", 0, 3, span_id=3, parent_id=1)
        (root,) = build_trees([_rec("root", 0, 3, span_id=1), a, b])
        assert critical_path(root)[1].name == "long"

    def test_render_contains_chain(self):
        (root,) = build_trees(records_from_tracer(_sample_tracer()))
        text = render_critical_path(root)
        assert "critical path of trace" in text
        assert "tap.forward" in text and "hint.probe" in text


class TestPhaseBreakdown:
    def test_self_time_sums_to_end_to_end(self):
        roots = build_trees(records_from_tracer(_sample_tracer()))
        rows = phase_breakdown(roots)
        total = sum(r["time_s"] for r in rows)
        assert total == pytest.approx(sum(r.dur for r in roots))
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_phase_attribution(self):
        rows = {r["phase"]: r for r in
                phase_breakdown(build_trees(records_from_tracer(_sample_tracer())))}
        assert rows["routing"]["time_s"] == pytest.approx(2.0)
        assert rows["crypto"]["time_s"] == pytest.approx(1.0)
        assert rows["hint-probe"]["time_s"] == pytest.approx(1.0)
        assert rows["other"]["time_s"] == pytest.approx(0.0)
        assert rows["routing"]["links"] == 3
        assert rows["hint-probe"]["links"] == 1

    def test_empty_forest(self):
        rows = phase_breakdown([])
        assert all(r["time_s"] == 0.0 and r["share"] == 0.0 for r in rows)


class TestFileRoundTrip:
    def test_load_and_summarize(self, tmp_path):
        path = tmp_path / "t.json"
        _sample_tracer().dump(path)
        recs = load_trace_file(path)
        assert len(recs) == 4
        summary = summarize_trace_file(path)
        assert summary["spans"] == 4
        assert summary["traces"] == 1
        assert summary["end_to_end_s"] == pytest.approx(4.0)
        assert summary["slowest"].name == "tap.forward"

    def test_bare_event_array_accepted(self, tmp_path):
        path = tmp_path / "bare.json"
        import json

        path.write_text(json.dumps(_sample_tracer().chrome_events()))
        assert len(load_trace_file(path)) == 4
