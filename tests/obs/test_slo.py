"""Tests for the consolidated report and the declarative SLO gate."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.manifest import (
    artifact_entry,
    build_manifest,
    write_manifest,
)
from repro.obs.report import build_report, render_report, scan_results_dir
from repro.obs.slo import (
    GATE_EXIT_VIOLATION,
    SLOError,
    evaluate_slos,
    load_slos,
    render_slo_results,
    slo_violations,
)


def _chaos_doc(availability=0.95, policy="resilient"):
    return {
        "plan": "lossy",
        "seed": 2004,
        "policy": policy,
        "digest": "c" * 64,
        "summary": {
            "availability": availability,
            "effective_availability": availability - 0.05,
            "mttr_rounds": 1.5,
            "worst_outage_rounds": 3,
        },
    }


def _results_dir(tmp_path):
    """A results tree: one manifest + metrics + chaos report."""
    run = tmp_path / "run"
    run.mkdir()
    metrics = MetricsRegistry()
    metrics.counter("obs.audit.runs").inc(2)
    metrics.counter("obs.audit.violations").inc(0)
    metrics.histogram("fig6.link_latency_s").observe(0.12)
    (run / "metrics.json").write_text(metrics.to_json())
    chaos = tmp_path / "chaos"
    chaos.mkdir()
    (chaos / "report.json").write_text(json.dumps(_chaos_doc()))
    manifest = build_manifest(
        "run scale-churn",
        configs={"scale-churn": {"num_nodes": 2000}},
        results={"scale-churn": {
            "rows": 8,
            "digest": "a" * 64,
            "summary": {"scale.survivor_fraction": 0.99,
                        "scale.route_agreement": 1.0},
        }},
        seed=2004,
        artifacts=[artifact_entry(run / "metrics.json", "metrics",
                                  base=run)],
        volatile={"wall_time_s": 0.5},
    )
    write_manifest(manifest, run / "manifest.json")
    return tmp_path


class TestScan:
    def test_finds_everything(self, tmp_path):
        found = scan_results_dir(_results_dir(tmp_path))
        assert len(found["manifests"]) == 1
        assert len(found["metrics"]) == 1
        assert len(found["chaos"]) == 1

    def test_loose_metrics_sniffed(self, tmp_path):
        m = MetricsRegistry()
        m.counter("x").inc()
        (tmp_path / "loose.json").write_text(m.to_json())
        found = scan_results_dir(tmp_path)
        assert len(found["metrics"]) == 1

    def test_garbage_json_ignored(self, tmp_path):
        (tmp_path / "junk.json").write_text("not json at all")
        (tmp_path / "other.json").write_text('{"hello": 1}')
        found = scan_results_dir(tmp_path)
        assert found == {"manifests": [], "metrics": [],
                         "chaos": [], "traces": []}


class TestBuildReport:
    def test_indicators(self, tmp_path):
        report = build_report(_results_dir(tmp_path))
        ind = report["indicators"]
        assert ind["audit.violations"] == 0
        assert ind["audit.runs"] == 2
        assert ind["chaos.availability"] == 0.95
        assert ind["scale.survivor_fraction"] == 0.99
        assert ind["metrics.fig6.link_latency_s.p99"] == 0.12
        assert ind["runs.count"] == 1

    def test_baseline_chaos_excluded_from_indicators(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(_chaos_doc(0.9)))
        (tmp_path / "b.json").write_text(
            json.dumps(_chaos_doc(0.2, policy="baseline"))
        )
        ind = build_report(tmp_path)["indicators"]
        assert ind["chaos.availability"] == 0.9
        assert ind["chaos.count"] == 2

    def test_worst_case_across_chaos_reports(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(_chaos_doc(0.99)))
        (tmp_path / "b.json").write_text(json.dumps(_chaos_doc(0.80)))
        ind = build_report(tmp_path)["indicators"]
        assert ind["chaos.availability"] == 0.80

    def test_render_markdown(self, tmp_path):
        report = build_report(_results_dir(tmp_path))
        md = render_report(report)
        assert "# Run report" in md
        assert "run scale-churn" in md
        assert "`scale.survivor_fraction`" in md
        assert "| lossy | resilient |" in md

    def test_report_is_json_serialisable(self, tmp_path):
        json.dumps(build_report(_results_dir(tmp_path)))


SLO_TOML = """
[slo.audit]
indicator = "audit.violations"
max = 0

[slo.availability]
indicator = "chaos.availability"
min = 0.9

[slo.optional-latency]
indicator = "metrics.nope.p99"
max = 1.0
required = false
"""


class TestLoadSlos:
    def test_parses_tables(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(SLO_TOML)
        slos = load_slos(path)
        assert [s["name"] for s in slos] == [
            "audit", "availability", "optional-latency"
        ]
        assert slos[0]["max"] == 0 and slos[0]["required"] is True
        assert slos[2]["required"] is False

    def test_repo_slo_toml_parses(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        slos = load_slos(repo / "slo.toml")
        assert any(s["indicator"] == "audit.violations" for s in slos)

    def test_rejects_no_tables(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("x = 1\n")
        with pytest.raises(SLOError, match="no .slo"):
            load_slos(path)

    def test_rejects_missing_bounds(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[slo.x]\nindicator = "a"\n')
        with pytest.raises(SLOError, match="min.*max"):
            load_slos(path)

    def test_rejects_non_numeric_bound(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[slo.x]\nindicator = "a"\nmax = "zero"\n')
        with pytest.raises(SLOError, match="must be a number"):
            load_slos(path)


class TestEvaluate:
    def _slos(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(SLO_TOML)
        return load_slos(path)

    def test_all_pass(self, tmp_path):
        results = evaluate_slos(
            self._slos(tmp_path),
            {"audit.violations": 0, "chaos.availability": 0.95},
        )
        assert [r["status"] for r in results] == ["pass", "pass", "missing"]
        assert slo_violations(results) == []

    def test_fail_on_bound(self, tmp_path):
        results = evaluate_slos(
            self._slos(tmp_path),
            {"audit.violations": 2, "chaos.availability": 0.95},
        )
        assert results[0]["status"] == "fail"
        assert len(slo_violations(results)) == 1

    def test_required_missing_is_violation(self, tmp_path):
        results = evaluate_slos(self._slos(tmp_path), {})
        bad = slo_violations(results)
        assert {r["name"] for r in bad} == {"audit", "availability"}

    def test_optional_missing_not_violation(self, tmp_path):
        results = evaluate_slos(
            self._slos(tmp_path),
            {"audit.violations": 0, "chaos.availability": 1.0},
        )
        assert not slo_violations(results)

    def test_render_table(self, tmp_path):
        results = evaluate_slos(
            self._slos(tmp_path),
            {"audit.violations": 0, "chaos.availability": 0.5},
        )
        text = render_slo_results(results)
        assert "FAIL" in text and "PASS" in text
        assert "MISSING (optional)" in text

    def test_gate_exit_code_value(self):
        assert GATE_EXIT_VIOLATION == 2
