"""Tests for the OpenMetrics / JSONL metrics export formats."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.export import (
    METRICS_FORMATS,
    metrics_jsonl_lines,
    openmetrics_name,
    to_metrics_jsonl,
    to_openmetrics,
    write_metrics,
)


def _registry() -> MetricsRegistry:
    m = MetricsRegistry()
    m.counter("pastry.route.count").inc(7)
    m.gauge("compact.alive_fraction").set(0.97)
    h = m.histogram("pastry.route.hops")
    for v in (1, 2, 2, 3):
        h.observe(v)
    return m


class TestOpenMetricsName:
    def test_dots_become_underscores(self):
        assert openmetrics_name("pastry.route.hops") == "pastry_route_hops"

    def test_leading_digit_prefixed(self):
        assert openmetrics_name("9lives")[0] == "_"

    def test_legal_name_untouched(self):
        assert openmetrics_name("already_fine:yes") == "already_fine:yes"


class TestToOpenMetrics:
    def test_ends_with_eof(self):
        assert to_openmetrics(_registry()).endswith("# EOF\n")

    def test_counter_exposition(self):
        text = to_openmetrics(_registry())
        assert "# TYPE tap_pastry_route_count counter" in text
        assert "tap_pastry_route_count_total 7" in text

    def test_gauge_exposition(self):
        text = to_openmetrics(_registry())
        assert "tap_compact_alive_fraction 0.97" in text

    def test_histogram_as_summary(self):
        text = to_openmetrics(_registry())
        assert "# TYPE tap_pastry_route_hops summary" in text
        assert 'tap_pastry_route_hops{quantile="0.5"} 2' in text
        assert "tap_pastry_route_hops_sum 8" in text
        assert "tap_pastry_route_hops_count 4" in text
        assert "tap_pastry_route_hops_min 1" in text
        assert "tap_pastry_route_hops_max 3" in text

    def test_quantile_values_match_snapshot(self):
        m = _registry()
        snap = m.snapshot()["pastry.route.hops"]
        for line in to_openmetrics(m).splitlines():
            if line.startswith('tap_pastry_route_hops{quantile="0.99"}'):
                assert float(line.split()[-1]) == snap["p99"]
                break
        else:
            raise AssertionError("no p99 quantile line")

    def test_empty_histogram_zero_count(self):
        m = MetricsRegistry()
        m.histogram("never.observed")
        text = to_openmetrics(m)
        assert "tap_never_observed_count 0" in text
        assert "quantile" not in text

    def test_custom_prefix(self):
        assert "acme_pastry_route_count_total" in to_openmetrics(
            _registry(), prefix="acme_"
        )

    def test_deterministic(self):
        assert to_openmetrics(_registry()) == to_openmetrics(_registry())


class TestJsonl:
    def test_one_line_per_instrument_sorted(self):
        lines = list(metrics_jsonl_lines(_registry()))
        names = [json.loads(line)["metric"] for line in lines]
        assert names == sorted(names)
        assert len(names) == 3

    def test_lines_carry_snapshot(self):
        doc = {
            json.loads(line)["metric"]: json.loads(line)
            for line in metrics_jsonl_lines(_registry())
        }
        assert doc["pastry.route.count"]["value"] == 7
        assert doc["pastry.route.hops"]["count"] == 4

    def test_to_metrics_jsonl_trailing_newline(self):
        assert to_metrics_jsonl(_registry()).endswith("\n")

    def test_empty_registry_empty_string(self):
        assert to_metrics_jsonl(MetricsRegistry()) == ""


class TestWriteMetrics:
    def test_json_writes_csv_sibling(self, tmp_path):
        paths = write_metrics(_registry(), tmp_path / "m.json", "json")
        assert [p.name for p in paths] == ["m.json", "m.csv"]
        assert "pastry.route.hops" in (tmp_path / "m.csv").read_text()
        json.loads((tmp_path / "m.json").read_text())

    def test_openmetrics_single_file(self, tmp_path):
        paths = write_metrics(_registry(), tmp_path / "m.om", "openmetrics")
        assert len(paths) == 1
        assert paths[0].read_text().endswith("# EOF\n")

    def test_jsonl_single_file(self, tmp_path):
        (path,) = write_metrics(_registry(), tmp_path / "m.jsonl", "jsonl")
        assert len(path.read_text().splitlines()) == 3

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown metrics format"):
            write_metrics(_registry(), tmp_path / "m.x", "xml")

    def test_formats_registry_complete(self):
        assert set(METRICS_FORMATS) == {"json", "jsonl", "openmetrics"}
