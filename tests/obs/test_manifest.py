"""Tests for the run-ledger manifest (repro.obs.manifest)."""

import json

import pytest

from repro.experiments.config import ScaleChurnConfig
from repro.obs.manifest import (
    SCHEMA,
    artifact_entry,
    build_manifest,
    canonical_manifest,
    config_dict,
    file_sha256,
    git_sha,
    is_manifest,
    load_manifest,
    manifest_core,
    manifest_digest,
    write_manifest,
)


def _manifest(tmp_path, volatile=None, extra_artifacts=()):
    art = tmp_path / "rows.csv"
    art.write_text("a,b\n1,2\n")
    return build_manifest(
        "run fig2",
        configs={"fig2": {"num_nodes": 100, "seed": 7}},
        results={"fig2": {"rows": 2, "digest": "d" * 64, "summary": {}}},
        seed=7,
        artifacts=[
            artifact_entry(art, "csv", base=tmp_path),
            *extra_artifacts,
        ],
        volatile=volatile or {"wall_time_s": 1.23, "workers": 4},
    )


class TestBuild:
    def test_schema_and_command(self, tmp_path):
        m = _manifest(tmp_path)
        assert m["schema"] == SCHEMA
        assert m["command"] == "run fig2"
        assert m["seed"] == 7

    def test_environment_recorded(self, tmp_path):
        env = _manifest(tmp_path)["environment"]
        assert env["python"].count(".") == 2
        assert env["cpus"] >= 1

    def test_git_sha_present(self, tmp_path):
        sha = _manifest(tmp_path)["git_sha"]
        assert sha == "unknown" or len(sha) == 40

    def test_config_dict_strips_workers(self):
        d = config_dict(ScaleChurnConfig(num_nodes=500, workers=8))
        assert "workers" not in d
        assert d["num_nodes"] == 500

    def test_artifact_relative_path_and_hash(self, tmp_path):
        m = _manifest(tmp_path)
        entry = m["artifacts"][0]
        assert entry["path"] == "rows.csv"
        assert entry["sha256"] == file_sha256(tmp_path / "rows.csv")
        assert entry["volatile"] is False

    def test_artifact_outside_base_kept_by_name(self, tmp_path):
        other = tmp_path / "deep"
        other.mkdir()
        f = other / "x.json"
        f.write_text("{}")
        entry = artifact_entry(f, "metrics", base=tmp_path / "elsewhere")
        assert entry["path"] == "x.json"


class TestDeterminism:
    def test_volatile_excluded_from_core(self, tmp_path):
        a = _manifest(tmp_path, volatile={"wall_time_s": 1.0})
        b = _manifest(tmp_path, volatile={"wall_time_s": 99.0})
        assert canonical_manifest(a) == canonical_manifest(b)
        assert manifest_digest(a) == manifest_digest(b)

    def test_volatile_artifact_hash_nulled_in_core(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('{"wall": 1}')
        entry = artifact_entry(trace, "trace", volatile=True, base=tmp_path)
        m = _manifest(tmp_path, extra_artifacts=[entry])
        core = manifest_core(m)
        assert core["artifacts"][1]["sha256"] is None
        # ...but the real hash is still in the manifest itself
        assert m["artifacts"][1]["sha256"] == file_sha256(trace)

    def test_digest_changes_with_results(self, tmp_path):
        a = _manifest(tmp_path)
        b = _manifest(tmp_path)
        b["results"] = {"fig2": {"rows": 3, "digest": "e" * 64}}
        assert manifest_digest(a) != manifest_digest(b)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        m = _manifest(tmp_path)
        written = write_manifest(m, tmp_path / "manifest.json")
        loaded = load_manifest(tmp_path / "manifest.json")
        assert loaded == written
        assert loaded["digest"] == manifest_digest(m)

    def test_written_file_is_stable_json(self, tmp_path):
        write_manifest(_manifest(tmp_path), tmp_path / "m1.json")
        write_manifest(_manifest(tmp_path), tmp_path / "m2.json")
        a = json.loads((tmp_path / "m1.json").read_text())
        b = json.loads((tmp_path / "m2.json").read_text())
        a.pop("volatile"), b.pop("volatile")
        assert a == b

    def test_load_rejects_wrong_schema(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            load_manifest(tmp_path / "bad.json")

    def test_is_manifest(self, tmp_path):
        m = _manifest(tmp_path)
        assert is_manifest(m)
        assert not is_manifest({"schema": SCHEMA})
        assert not is_manifest([1, 2])

    def test_numpy_scalars_coerced(self, tmp_path):
        import numpy as np

        m = _manifest(tmp_path)
        m["extra"] = {"alive": np.int64(42)}
        written = write_manifest(m, tmp_path / "np.json")
        assert json.loads(
            (tmp_path / "np.json").read_text()
        )["extra"]["alive"] == 42
        assert written["digest"]

    def test_git_sha_unknown_outside_repo(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"
