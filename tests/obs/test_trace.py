"""Tests for the bounded structured event trace."""

import json

import pytest

from repro.obs import EventTrace


class TestRecording:
    def test_sequence_numbers_are_monotone(self):
        trace = EventTrace()
        events = [trace.record("route", hops=i) for i in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert all(e.kind == "route" for e in events)
        assert events[3].fields == {"hops": 3}

    def test_kind_filter(self):
        trace = EventTrace()
        trace.record("a", x=1)
        trace.record("b", x=2)
        trace.record("a", x=3)
        assert [e.fields["x"] for e in trace.events("a")] == [1, 3]
        assert len(list(trace.events())) == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)


class TestRingBound:
    def test_oldest_events_evicted(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.record("e", i=i)
        assert len(trace) == 4
        assert trace.recorded == 10
        assert trace.dropped == 6
        # the survivors are the most recent four, seq intact
        assert [e.seq for e in trace] == [6, 7, 8, 9]


class TestWrapAround:
    """Behaviour after the ring exceeds capacity (beyond the clear()
    accounting already pinned below): eviction order, accounting, and
    JSONL export of a wrapped buffer."""

    def test_recorded_vs_len_after_wrap(self):
        trace = EventTrace(capacity=3)
        for i in range(8):
            trace.record("e", i=i)
        assert trace.recorded == 8
        assert len(trace) == 3
        assert trace.dropped == 5

    def test_eviction_is_oldest_first(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.record("e", i=i)
        # survivors are exactly the newest three, in record order,
        # with their original sequence numbers intact
        assert [(e.seq, e.fields["i"]) for e in trace] == [
            (2, 2), (3, 3), (4, 4),
        ]
        trace.record("e", i=5)
        assert [e.seq for e in trace] == [3, 4, 5]

    def test_jsonl_export_of_wrapped_buffer(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.record("e", i=i)
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 4  # only the survivors are exported
        rows = [json.loads(line) for line in lines]
        assert [row["seq"] for row in rows] == [6, 7, 8, 9]
        assert [row["i"] for row in rows] == [6, 7, 8, 9]
        assert trace.to_jsonl().endswith("\n")

    def test_dump_of_wrapped_buffer_counts_survivors(self, tmp_path):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.record("e", i=i)
        path = tmp_path / "wrapped.jsonl"
        assert trace.dump(path) == 4
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["i"] for row in rows] == [6, 7, 8, 9]

    def test_kind_filter_sees_only_survivors(self):
        trace = EventTrace(capacity=4)
        trace.record("a", i=0)
        for i in range(1, 6):
            trace.record("b", i=i)
        # the single "a" event was evicted by the wrap
        assert list(trace.events("a")) == []
        assert [e.fields["i"] for e in trace.events("b")] == [2, 3, 4, 5]

    def test_absorb_re_sequences_a_wrapped_trace(self):
        worker = EventTrace(capacity=3)
        for i in range(7):
            worker.record("e", i=i)
        parent = EventTrace()
        parent.record("parent")
        assert parent.absorb(list(worker)) == 3
        # only the survivors crossed over, renumbered under the
        # parent's monotone counter
        assert [(e.seq, e.kind) for e in parent] == [
            (0, "parent"), (1, "e"), (2, "e"), (3, "e"),
        ]
        assert [e.fields["i"] for e in parent.events("e")] == [4, 5, 6]
        assert parent.dropped == 0


class TestExport:
    def test_jsonl_round_trips(self):
        trace = EventTrace()
        trace.record("route", hops=2, ok=True)
        trace.record("repair", node=7)
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"seq": 0, "kind": "route", "hops": 2, "ok": True}

    def test_empty_trace_exports_empty(self):
        assert EventTrace().to_jsonl() == ""

    def test_dump_writes_file(self, tmp_path):
        trace = EventTrace()
        trace.record("e", i=1)
        trace.record("e", i=2)
        path = tmp_path / "trace.jsonl"
        assert trace.dump(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["i"] for row in rows] == [1, 2]

    def test_clear_resets_eviction_accounting(self):
        """Regression: clear() used to leave ``recorded`` untouched, so
        every pre-clear event was reported as evicted by the ring."""
        trace = EventTrace(capacity=4)
        for i in range(6):
            trace.record("e", i=i)
        assert trace.dropped == 2
        trace.clear()
        assert len(trace) == 0
        assert trace.recorded == 0
        assert trace.dropped == 0

    def test_clear_keeps_seq_monotone(self):
        trace = EventTrace(capacity=4)
        for _ in range(3):
            trace.record("e")
        trace.clear()
        event = trace.record("e")
        # ids never repeat across clears ...
        assert event.seq == 3
        # ... and post-clear accounting only reflects post-clear events
        assert trace.recorded == 1
        assert trace.dropped == 0
