"""Tests for the k-closest replication manager."""

import random

import pytest

from repro.crypto.hashing import hash_password
from repro.past.replication import ReplicatedStore, ReplicationError
from repro.past.storage import Storage, StorageError
from repro.pastry.network import PastryNetwork
from repro.util.ids import random_id
from tests.conftest import build_network


@pytest.fixture()
def store():
    net = build_network(80, seed=13)
    return ReplicatedStore(net, replication_factor=3)


def _insert_many(store, count, seed=1):
    rng = random.Random(seed)
    keys = []
    for _ in range(count):
        key = random_id(rng)
        store.insert(key, f"v{key}".encode())
        keys.append(key)
    return keys


class TestInsertFetch:
    def test_insert_places_on_k_closest(self, store):
        key = random_id(random.Random(2))
        store.insert(key, b"v")
        assert store.holders(key) == set(store.replica_set(key))
        assert len(store.holders(key)) == 3

    def test_replicas_are_real_node_local_objects(self, store):
        key = random_id(random.Random(2))
        store.insert(key, b"v")
        for nid in store.holders(key):
            assert store.storage_of(nid).lookup(key).value == b"v"

    def test_fetch_returns_value(self, store):
        key = random_id(random.Random(2))
        store.insert(key, b"v")
        assert store.fetch(key).value == b"v"

    def test_duplicate_insert_rejected(self, store):
        key = random_id(random.Random(2))
        store.insert(key, b"v")
        with pytest.raises(ReplicationError):
            store.insert(key, b"w")

    def test_fetch_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.fetch(12345)

    def test_root_is_closest(self, store):
        key = random_id(random.Random(2))
        assert store.root(key) == store.network.closest_alive(key)

    def test_invalid_k_rejected(self):
        net = build_network(10, seed=1)
        with pytest.raises(ValueError):
            ReplicatedStore(net, replication_factor=0)

    def test_access_control_outside_replica_set(self, store):
        """§3.1: only replica-set nodes may read a THA via the overlay."""
        key = random_id(random.Random(2))
        store.insert(key, b"v")
        outsider = next(
            nid for nid in store.network.alive_ids
            if nid not in store.replica_set(key)
        )
        with pytest.raises(ReplicationError):
            store.fetch(key, requester_id=outsider)

    def test_access_control_inside_replica_set(self, store):
        key = random_id(random.Random(2))
        store.insert(key, b"v")
        member = store.replica_set(key)[1]
        assert store.fetch(key, requester_id=member).value == b"v"


class TestDelete:
    def test_delete_with_pw(self, store):
        key = random_id(random.Random(3))
        store.insert(key, b"v", delete_proof_hash=hash_password(b"pw"))
        assert store.delete(key, b"pw")
        assert not store.exists(key)
        for nid in store.network.alive_ids:
            assert not store.storage_of(nid).contains(key)

    def test_delete_wrong_pw_fails_everywhere(self, store):
        key = random_id(random.Random(3))
        store.insert(key, b"v", delete_proof_hash=hash_password(b"pw"))
        assert not store.delete(key, b"bad")
        assert store.exists(key)

    def test_delete_missing_key(self, store):
        assert not store.delete(999, b"pw")


class TestFailureRepair:
    def test_root_failure_promotes_candidate(self, store):
        key = random_id(random.Random(4))
        store.insert(key, b"v")
        old_root = store.root(key)
        store.network.fail(old_root)
        store.on_fail(old_root)
        new_root = store.root(key)
        assert new_root != old_root
        assert store.storage_of(new_root).contains(key)
        assert store.fetch(key).value == b"v"

    def test_invariant_restored_after_each_failure(self, store):
        keys = _insert_many(store, 30)
        rng = random.Random(5)
        for _ in range(15):
            victim = rng.choice(store.network.alive_ids)
            store.network.fail(victim)
            store.on_fail(victim)
        assert store.verify_invariants() == []
        for key in keys:
            assert store.fetch(key).value == f"v{key}".encode()

    def test_simultaneous_failure_of_all_replicas_loses_object(self, store):
        key = random_id(random.Random(6))
        store.insert(key, b"v")
        holders = list(store.holders(key))
        for nid in holders:  # all fail before any repair
            store.network.fail(nid)
        for nid in holders:
            store.on_fail(nid)
        assert not store.exists(key)
        with pytest.raises(StorageError):
            store.fetch(key)

    def test_partial_replica_failure_keeps_object(self, store):
        key = random_id(random.Random(7))
        store.insert(key, b"v")
        holders = list(store.holders(key))
        for nid in holders[:-1]:  # leave one survivor
            store.network.fail(nid)
        for nid in holders[:-1]:
            store.on_fail(nid)
        assert store.exists(key)
        assert store.fetch(key).value == b"v"
        assert store.verify_invariants() == []


class TestJoinHandoff:
    def test_join_inside_replica_arc_receives_copy(self, store):
        key = random_id(random.Random(8))
        store.insert(key, b"v")
        # Craft a newcomer id right next to the key: it must become root.
        new_id = key + 1 if key + 1 not in store.network.nodes else key + 2
        store.network.join(new_id)
        store.on_join(new_id)
        assert store.root(key) == new_id
        assert store.storage_of(new_id).contains(key)
        assert store.verify_invariants() == []

    def test_join_far_away_changes_nothing(self, store):
        keys = _insert_many(store, 10, seed=9)
        before = {k: store.holders(k) for k in keys}
        # Pick an id maximally far from every key (just a random one
        # that lands in no replica set).
        rng = random.Random(10)
        while True:
            new_id = random_id(rng)
            if all(
                new_id not in store.replica_set(k) for k in keys
            ) and new_id not in store.network.nodes:
                break
        store.network.join(new_id)
        store.on_join(new_id)
        after = {k: store.holders(k) for k in keys}
        assert before == after

    def test_displaced_holder_dropped(self, store):
        key = random_id(random.Random(11))
        store.insert(key, b"v")
        displaced = store.replica_set(key)[-1]
        new_id = key + 1 if key + 1 not in store.network.nodes else key + 2
        store.network.join(new_id)
        store.on_join(new_id)
        assert displaced not in store.holders(key)
        assert not store.storage_of(displaced).contains(key)

    def test_on_fail_copies_from_closest_live_holder(self, monkeypatch):
        """Regression: the repair source must be the live holder
        numerically closest to the key, not whichever node set
        iteration happens to yield first.

        The overlay is crafted so the two orders disagree: CPython
        iterates the small-int set ``{1, 8}`` as ``[8, 1]`` (hash(x)
        == x, table size 8), so an order-dependent choice copies from
        node 8 while the closest live holder of key 2 is node 1.
        """
        net = PastryNetwork.build({1, 3, 8, 1000})
        store = ReplicatedStore(net, replication_factor=3)
        key = 2
        store.insert(key, b"v")
        assert store.holders(key) == {1, 3, 8}

        lookups = []
        orig_lookup = Storage.lookup

        def spying_lookup(self, k):
            lookups.append((self.node_id, k))
            return orig_lookup(self, k)

        monkeypatch.setattr(Storage, "lookup", spying_lookup)
        net.fail(3)
        store.on_fail(3)
        sources = [nid for nid, k in lookups if k == key]
        assert sources == [1]
        assert store.holders(key) == {1, 8, 1000}
        assert store.verify_invariants() == []
        assert store.storage_of(1000).lookup(key).value == b"v"

    def test_churn_sequence_preserves_invariants(self, store):
        keys = _insert_many(store, 25, seed=12)
        # NB: seed must differ from the network-build seed (13) or the
        # id stream regenerates existing node ids.
        rng = random.Random(777)
        for step in range(10):
            victim = rng.choice(store.network.alive_ids)
            store.network.fail(victim)
            store.on_fail(victim)
            new_id = random_id(rng)
            store.network.join(new_id)
            store.on_join(new_id)
        assert store.verify_invariants() == []
        for key in keys:
            assert store.fetch(key).value == f"v{key}".encode()


class TestReviveReconciliation:
    def test_revived_holder_does_not_resurrect_deleted_object(self, store):
        """Regression: ``delete`` only purges *indexed* holders, so a
        dead holder keeps its local copy; reviving it must not bring a
        deleted object back from the grave."""
        key = random_id(random.Random(21))
        store.insert(key, b"v", delete_proof_hash=hash_password(b"pw"))
        victim = store.replica_set(key)[-1]
        store.network.fail(victim)
        store.on_fail(victim)
        assert store.delete(key, b"pw")
        # the dead node still holds the stale copy...
        assert store.storage_of(victim).contains(key)
        store.network.revive(victim)
        store.on_revive(victim)
        # ...which revival reconciles away instead of resurrecting
        assert not store.storage_of(victim).contains(key)
        assert not store.exists(key)
        assert store.verify_invariants() == []

    def test_revived_displaced_holder_purges_stale_copy(self, store):
        """A holder whose replica was handed off while it was dead must
        drop its stale copy on revival (it is no longer in the
        k-closest set, so a §5 hint probe must not find the object)."""
        key = random_id(random.Random(23))
        store.insert(key, b"v")
        victim = store.replica_set(key)[-1]
        store.network.fail(victim)
        store.on_fail(victim)
        # While the victim is away, closer nodes join: on return it is
        # no longer one of the k closest.
        new_id = key
        for _ in range(store.k):
            new_id += 1
            while new_id in store.network.nodes:
                new_id += 1
            store.network.join(new_id)
            store.on_join(new_id)
        store.network.revive(victim)
        store.on_revive(victim)
        assert victim not in store.replica_set(key)
        assert victim not in store.holders(key)
        assert not store.storage_of(victim).contains(key)
        assert store.verify_invariants() == []

    def test_revived_intended_holder_readopts(self, store):
        """A revived node that is *still* in the k-closest set gets a
        fresh copy back and displaces whoever covered for it."""
        key = random_id(random.Random(25))
        store.insert(key, b"v")
        victim = store.replica_set(key)[-1]
        store.network.fail(victim)
        store.on_fail(victim)
        covered_by = store.holders(key) - {victim}
        assert len(covered_by) == store.k
        store.network.revive(victim)
        store.on_revive(victim)
        assert victim in store.holders(key)
        assert store.storage_of(victim).lookup(key).value == b"v"
        assert store.holders(key) == set(store.replica_set(key))
        assert store.verify_invariants() == []


class TestEpochMemoisation:
    """replica_set/root are cached per membership epoch (perf path);
    any alive-set change must invalidate them."""

    def test_cached_replica_set_matches_network(self, store):
        key = random_id(random.Random(31))
        first = store.replica_set(key)
        assert first == store.network.replica_candidates(key, store.k)
        assert store.replica_set(key) == first
        assert store.replica_membership(key) == frozenset(first)

    def test_cached_copy_is_not_aliased(self, store):
        key = random_id(random.Random(31))
        stolen = store.replica_set(key)
        stolen.clear()
        assert store.replica_set(key) == store.network.replica_candidates(
            key, store.k
        )

    def test_fail_invalidates_cache(self, store):
        key = random_id(random.Random(31))
        store.insert(key, b"v")
        before = store.replica_set(key)
        root_before = store.root(key)
        victim = before[0]
        store.network.fail(victim)
        store.on_fail(victim)
        after = store.replica_set(key)
        assert victim not in after
        assert after == store.network.replica_candidates(key, store.k)
        assert store.root(key) == store.network.closest_alive(key)
        if victim == root_before:
            assert store.root(key) != root_before

    def test_join_invalidates_cache(self, store):
        key = random_id(random.Random(33))
        store.insert(key, b"v")
        assert store.replica_set(key)  # populate the cache
        new_id = key + 1
        while new_id in store.network.nodes:
            new_id += 1
        store.network.join(new_id)
        store.on_join(new_id)
        assert store.replica_set(key) == store.network.replica_candidates(
            key, store.k
        )
        assert new_id in store.replica_set(key)

    def test_fetch_access_rule_tracks_epoch(self, store):
        """fetch()'s membership test uses the cached frozenset; after
        churn it must reflect the *current* replica set."""
        key = random_id(random.Random(35))
        store.insert(key, b"v")
        members = store.replica_set(key)
        assert store.fetch(key, requester_id=members[0]).value == b"v"
        outsider = next(
            nid for nid in store.network.alive_ids if nid not in members
        )
        with pytest.raises(ReplicationError):
            store.fetch(key, requester_id=outsider)
        # Promote the outsider into the set by killing enough members.
        while outsider not in store.replica_set(key):
            victim = store.replica_set(key)[-1]
            store.network.fail(victim)
            store.on_fail(victim)
        assert store.fetch(key, requester_id=outsider).value == b"v"
