"""Tests for the per-object Merkle hash tree over coded shares."""

import pytest

from repro.past.hashtree import (
    HashTree,
    fold_path,
    leaf_digest,
    verify_share,
)


def _shares(count: int) -> list[bytes]:
    return [bytes([i]) * (i + 3) for i in range(count)]


class TestRootAndPaths:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 9])
    def test_every_share_verifies(self, count):
        shares = _shares(count)
        tree = HashTree.from_shares(shares)
        for i, data in enumerate(shares):
            path = tree.path(i)
            assert verify_share(data, path, tree.root)
            assert fold_path(leaf_digest(data), path) == tree.root

    def test_root_is_deterministic(self):
        shares = _shares(4)
        assert HashTree.from_shares(shares).root == \
            HashTree.from_shares(shares).root

    def test_root_depends_on_every_share(self):
        shares = _shares(4)
        root = HashTree.from_shares(shares).root
        for i in range(4):
            mutated = list(shares)
            mutated[i] = b"\xff" + mutated[i][1:]
            assert HashTree.from_shares(mutated).root != root

    def test_root_depends_on_order(self):
        shares = _shares(4)
        swapped = [shares[1], shares[0]] + shares[2:]
        assert HashTree.from_shares(swapped).root != \
            HashTree.from_shares(shares).root


class TestVerifyNegative:
    def test_tampered_data_fails(self):
        shares = _shares(5)
        tree = HashTree.from_shares(shares)
        rotten = bytes([shares[2][0] ^ 0x01]) + shares[2][1:]
        assert not verify_share(rotten, tree.path(2), tree.root)

    def test_wrong_root_fails(self):
        shares = _shares(4)
        tree = HashTree.from_shares(shares)
        other = HashTree.from_shares(_shares(5))
        assert not verify_share(shares[0], tree.path(0), other.root)

    def test_path_from_sibling_fails(self):
        shares = _shares(4)
        tree = HashTree.from_shares(shares)
        assert not verify_share(shares[0], tree.path(1), tree.root)

    def test_tampered_path_fails(self):
        shares = _shares(6)
        tree = HashTree.from_shares(shares)
        digest, is_right = tree.path(3)[0]
        bad = ((bytes([digest[0] ^ 0x01]) + digest[1:], is_right),) + \
            tuple(tree.path(3)[1:])
        assert not verify_share(shares[3], bad, tree.root)


class TestDomainSeparation:
    def test_leaf_digest_is_not_plain_data(self):
        """A leaf digest must not collide with an interior node built
        from the same bytes (second-preimage resistance of the tree)."""
        data = b"payload"
        assert leaf_digest(data) != data
        # a single-leaf tree's root is the leaf digest, not raw sha256
        tree = HashTree.from_shares([data])
        assert tree.root == leaf_digest(data)
        assert tree.path(0) == ()
