"""Tests for per-node storage and the H(PW) delete guard."""

import pytest

from repro.crypto.hashing import hash_password
from repro.past.storage import Storage, StorageError, StoredObject


@pytest.fixture()
def storage() -> Storage:
    return Storage(node_id=0xABC)


class TestInsertLookup:
    def test_roundtrip(self, storage):
        obj = StoredObject(key=1, value=b"v")
        storage.insert(obj)
        assert storage.lookup(1) is obj
        assert storage.contains(1)

    def test_missing_key_raises(self, storage):
        with pytest.raises(StorageError):
            storage.lookup(99)

    def test_reinsert_identical_is_idempotent(self, storage):
        obj = StoredObject(key=1, value=b"v")
        storage.insert(obj)
        storage.insert(StoredObject(key=1, value=b"v"))
        assert len(storage) == 1

    def test_conflicting_insert_rejected(self, storage):
        storage.insert(StoredObject(key=1, value=b"v"))
        with pytest.raises(StorageError):
            storage.insert(StoredObject(key=1, value=b"other"))

    def test_overwrite_flag(self, storage):
        storage.insert(StoredObject(key=1, value=b"v"))
        storage.insert(StoredObject(key=1, value=b"new"), overwrite=True)
        assert storage.lookup(1).value == b"new"

    def test_keys_and_iter(self, storage):
        storage.insert(StoredObject(key=1, value=b"a"))
        storage.insert(StoredObject(key=2, value=b"b"))
        assert sorted(storage.keys()) == [1, 2]
        assert {o.value for o in storage} == {b"a", b"b"}


class TestDeleteGuard:
    def test_delete_with_correct_pw(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        assert storage.delete(1, b"pw")
        assert not storage.contains(1)

    def test_delete_with_wrong_pw_rejected(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        assert not storage.delete(1, b"nope")
        assert storage.contains(1)

    def test_delete_with_hash_instead_of_preimage_rejected(self, storage):
        """Knowing H(PW) (which every replica holder does) must not
        allow deletion — that's the whole point of storing the hash
        (§3.4)."""
        h = hash_password(b"pw")
        storage.insert(StoredObject(1, b"v", h))
        assert not storage.delete(1, h)

    def test_undeletable_object(self, storage):
        storage.insert(StoredObject(1, b"v", delete_proof_hash=None))
        assert not storage.delete(1, b"anything")

    def test_delete_missing_key(self, storage):
        assert not storage.delete(42, b"pw")

    def test_none_proof_rejected(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        assert not storage.delete(1, None)

    def test_drop_is_unconditional(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        storage.drop(1)
        assert not storage.contains(1)

    def test_drop_missing_is_noop(self, storage):
        storage.drop(5)


class TestMayDeleteFailsClosed:
    """A corrupted replica must never turn the §3.4 delete check into
    a crash (or an accept): every malformed guard/proof denies."""

    def test_bitrotted_proof_hash_denies(self, storage):
        h = hash_password(b"pw")
        rotted = bytes([h[0] ^ 0x01]) + h[1:]
        storage.insert(StoredObject(1, b"v", rotted))
        assert not storage.delete(1, b"pw")
        assert storage.contains(1)

    def test_truncated_proof_hash_denies(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")[:-5]))
        assert not storage.delete(1, b"pw")

    def test_empty_proof_hash_denies(self, storage):
        storage.insert(StoredObject(1, b"v", b""))
        assert not storage.delete(1, b"pw")

    def test_non_bytes_proof_hash_denies(self, storage):
        for garbage in ("stringified", 12345, ["list"]):
            obj = StoredObject(1, b"v", garbage)  # type: ignore[arg-type]
            assert not obj.may_delete(b"pw")

    def test_empty_proof_denies_without_raising(self, storage):
        """hash_password rejects empty passwords with ValueError; the
        guard must swallow that, not propagate it."""
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        assert not storage.delete(1, b"")

    def test_non_bytes_proof_denies(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        obj = storage.lookup(1)
        assert not obj.may_delete("pw")  # type: ignore[arg-type]
        assert not obj.may_delete(42)  # type: ignore[arg-type]

    def test_bytearray_proof_accepted(self, storage):
        storage.insert(StoredObject(1, b"v", hash_password(b"pw")))
        assert storage.delete(1, bytearray(b"pw"))


class TestStoredObject:
    def test_pw_hash_validation(self):
        obj = StoredObject(1, b"v", hash_password(b"x"))
        assert obj.may_delete(b"x")
        assert not obj.may_delete(b"y")
        assert not obj.may_delete(None)

    def test_frozen(self):
        obj = StoredObject(1, b"v")
        with pytest.raises(AttributeError):
            obj.value = b"mutated"  # type: ignore[misc]
